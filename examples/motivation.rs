//! The paper's motivational example (Section III, Fig. 1): three runtime
//! resource-management strategies on the same two-request scenario.
//!
//! ```sh
//! cargo run --example motivation
//! ```

use amrm::baselines::FixedMapper;
use amrm::core::{MmkpMdf, ReactivationPolicy};
use amrm::sim::run_scenario;
use amrm::workload::scenarios;

fn main() {
    let platform = scenarios::platform();
    println!("Scenario S1: σ1 = ⟨λ1, arrival 0, deadline 9⟩, σ2 = ⟨λ2, arrival 1, deadline 5⟩");
    println!("Platform: 2 little + 2 big cores\n");

    let fixed_a = run_scenario(
        platform.clone(),
        FixedMapper::new(),
        ReactivationPolicy::OnArrival,
        &scenarios::scenario_s1(),
    );
    println!(
        "(a) fixed mapper, remap @ application start      energy = {:.2} J (paper: 16.96 J)",
        fixed_a.total_energy
    );
    print!("{}", fixed_a.gantt(&platform));

    let fixed_b = run_scenario(
        platform.clone(),
        FixedMapper::new(),
        ReactivationPolicy::OnArrivalAndCompletion,
        &scenarios::scenario_s1(),
    );
    println!(
        "\n(b) fixed mapper, remap @ start and finish       energy = {:.2} J (paper: 15.49 J)",
        fixed_b.total_energy
    );
    print!("{}", fixed_b.gantt(&platform));

    let adaptive = run_scenario(
        platform.clone(),
        MmkpMdf::new(),
        ReactivationPolicy::OnArrival,
        &scenarios::scenario_s1(),
    );
    println!(
        "\n(c) adaptive mapper (MMKP-MDF)                   energy = {:.2} J (paper: 14.63 J)",
        adaptive.total_energy
    );
    print!("{}", adaptive.gantt(&platform));

    // Scenario S2: the tighter deadline makes fixed mapping infeasible.
    println!("\nScenario S2 (σ2 deadline = 4):");
    let fixed = run_scenario(
        platform.clone(),
        FixedMapper::new(),
        ReactivationPolicy::OnArrival,
        &scenarios::scenario_s2(),
    );
    let adaptive = run_scenario(
        platform.clone(),
        MmkpMdf::new(),
        ReactivationPolicy::OnArrival,
        &scenarios::scenario_s2(),
    );
    println!(
        "  fixed mapper admits {}/2 requests; adaptive mapper admits {}/2 (energy {:.2} J)",
        fixed.accepted(),
        adaptive.accepted(),
        adaptive.total_energy
    );
}
