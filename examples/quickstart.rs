//! Quickstart: characterize an application, run the adaptive runtime
//! manager, and print the resulting schedule.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use amrm::core::{MmkpMdf, RuntimeManager};
use amrm::dataflow::{apps, characterize, CharacterizeConfig};
use amrm::model::{render_gantt, GanttOptions};
use amrm::platform::Platform;

fn main() {
    // 1. A heterogeneous platform: the Odroid XU4 of the paper.
    let platform = Platform::odroid_xu4();
    println!(
        "platform: {} ({} little + {} big cores)\n",
        platform.name(),
        platform.counts()[0],
        platform.counts()[1]
    );

    // 2. Design time: characterize applications into Pareto-optimal
    //    operating points (resources, execution time, energy).
    let audio = characterize(
        &apps::audio_filter(),
        &platform,
        &CharacterizeConfig::default(),
    );
    let pedestrian = characterize(
        &apps::pedestrian_recognition(),
        &platform,
        &CharacterizeConfig::default(),
    );
    for app in [&audio, &pedestrian] {
        println!(
            "{} — {} Pareto operating points:",
            app.name(),
            app.num_points()
        );
        for p in app.points() {
            println!("  {p}");
        }
        println!();
    }

    // 3. Runtime: an adaptive manager with the paper's MMKP-MDF heuristic.
    let mut rm = RuntimeManager::new(platform.clone(), MmkpMdf::new());

    // t = 0: an audio-filter request with a 20 s deadline.
    let first = rm.submit(audio.clone(), 20.0);
    println!("t=0.0  submit {:<28} -> {:?}", audio.name(), first);

    // t = 2: a pedestrian-recognition request with a tight deadline.
    rm.advance_to(2.0);
    let second = rm.submit(pedestrian.clone(), 8.0);
    println!("t=2.0  submit {:<28} -> {:?}", pedestrian.name(), second);

    // 4. Execute everything and inspect the outcome.
    let energy = rm.run_to_completion();
    println!(
        "\nall jobs completed at t={:.2}s, total energy {:.2} J, {} deadline misses",
        rm.now(),
        energy,
        rm.stats().deadline_misses
    );

    let trace = rm.executed_trace();
    let jobs: amrm::model::JobSet = [
        amrm::model::Job::new(first.job(), audio, 0.0, 20.0, 1.0),
        amrm::model::Job::new(second.job(), pedestrian, 2.0, 8.0, 1.0),
    ]
    .into_iter()
    .collect();
    println!("\nexecuted schedule:");
    print!(
        "{}",
        render_gantt(&trace, &jobs, &platform, &GanttOptions::default())
    );
}
