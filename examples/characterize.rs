//! Design-time characterization walkthrough: simulate the paper's three
//! dataflow applications on every core allocation of the Odroid XU4 and
//! print the Pareto-filtered operating-point tables.
//!
//! ```sh
//! cargo run --example characterize
//! ```

use amrm::dataflow::{all_allocations, apps, simulate, CharacterizeConfig, SimConfig};
use amrm::model::pareto_filter;
use amrm::model::OperatingPoint;
use amrm::platform::Platform;

fn main() {
    let platform = Platform::odroid_xu4();
    let config = SimConfig::default();

    for graph in apps::all_graphs() {
        println!(
            "== {} ({} processes, {:.1e} cycles/iteration)",
            graph.name(),
            graph.num_processes(),
            graph.total_work()
        );

        // Raw sweep: every allocation, dominated points included.
        let mut raw = Vec::new();
        for alloc in all_allocations(&platform) {
            if alloc.total() as usize > graph.num_processes() {
                continue;
            }
            let r = simulate(&graph, &platform, &alloc, &config);
            raw.push(OperatingPoint::new(alloc, r.makespan, r.energy));
        }
        let kept = pareto_filter(raw.clone());
        println!(
            "   swept {} allocations -> {} Pareto-optimal points",
            raw.len(),
            kept.len()
        );
        println!(
            "   {:<10} {:>8} {:>9} {:>8}",
            "alloc", "τ [s]", "ξ [J]", "P [W]"
        );
        let mut sorted = kept.clone();
        sorted.sort_by(|a, b| a.energy().total_cmp(&b.energy()));
        for p in &sorted {
            println!(
                "   {:<10} {:>8.2} {:>9.2} {:>8.2}",
                p.resources().to_string(),
                p.time(),
                p.energy(),
                p.power()
            );
        }
        println!();
    }

    // Input-size variants, as used by the evaluation workload.
    println!("benchmark suite (3 apps × 3 input sizes):");
    let suite = apps::benchmark_suite(&platform);
    for app in &suite {
        println!(
            "  {:<28} {:>2} points, fastest {:>5.1} s, frugal {:>5.1} J",
            app.name(),
            app.num_points(),
            app.min_time(),
            app.points()
                .iter()
                .map(|p| p.energy())
                .fold(f64::INFINITY, f64::min),
        );
    }
    let _ = CharacterizeConfig::default(); // see amrm_dataflow::characterize
}
