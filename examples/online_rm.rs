//! Online resource management beyond the paper: a random request stream
//! served by four different schedulers, comparing acceptance rate and
//! energy.
//!
//! ```sh
//! cargo run --release --example online_rm [seed]
//! ```

use amrm::baselines::{FixedMapper, MmkpLr};
use amrm::core::{MmkpMdf, ReactivationPolicy, Scheduler};
use amrm::dataflow::apps;
use amrm::platform::Platform;
use amrm::sim::run_scenario;
use amrm::workload::ScenarioRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random request stream: exponential inter-arrival times with
/// the given mean, uniform application choice, and deadlines at 1.2–3× the
/// application's fastest execution.
fn request_stream(
    apps: &[amrm::model::AppRef],
    n: usize,
    mean_interarrival: f64,
    seed: u64,
) -> Vec<ScenarioRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            // Inverse-CDF exponential sampling.
            let u: f64 = rng.gen_range(1e-9..1.0);
            t += -mean_interarrival * u.ln();
            let app = amrm::model::AppRef::clone(&apps[rng.gen_range(0..apps.len())]);
            let slack: f64 = rng.gen_range(1.2..3.0);
            let deadline = t + app.min_time() * slack;
            ScenarioRequest {
                app,
                arrival: t,
                deadline,
            }
        })
        .collect()
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2020);

    let platform = Platform::odroid_xu4();
    eprintln!("characterizing application library ...");
    let library = apps::benchmark_suite(&platform);
    let stream = request_stream(&library, 40, 6.0, seed);
    println!(
        "{} requests over {:.0} s on {} (seed {seed})\n",
        stream.len(),
        stream.last().map(|r| r.arrival).unwrap_or(0.0),
        platform.name()
    );

    let runs: Vec<(&str, Box<dyn Scheduler>, ReactivationPolicy)> = vec![
        ("MMKP-MDF", Box::new(MmkpMdf::new()), ReactivationPolicy::OnArrival),
        ("MMKP-LR", Box::new(MmkpLr::new()), ReactivationPolicy::OnArrival),
        (
            "FIXED (arrival)",
            Box::new(FixedMapper::new()),
            ReactivationPolicy::OnArrival,
        ),
        (
            "FIXED (arrival+completion)",
            Box::new(FixedMapper::new()),
            ReactivationPolicy::OnArrivalAndCompletion,
        ),
    ];

    println!(
        "{:<28} {:>9} {:>12} {:>14} {:>8}",
        "scheduler", "accepted", "energy [J]", "J/accepted", "misses"
    );
    for (name, scheduler, policy) in runs {
        let outcome = run_scenario(platform.clone(), scheduler, policy, &stream);
        println!(
            "{:<28} {:>6}/{:<2} {:>12.1} {:>14.2} {:>8}",
            name,
            outcome.accepted(),
            stream.len(),
            outcome.total_energy,
            outcome.total_energy / outcome.accepted().max(1) as f64,
            outcome.stats.deadline_misses
        );
    }
    println!("\nAdaptive mapping admits more requests (reconfiguration absorbs load spikes)\nand spends less energy per admitted job.");
}
