//! Online resource management beyond the paper: a Poisson request stream
//! served by every scheduler in the standard registry, comparing
//! acceptance rate and energy.
//!
//! ```sh
//! cargo run --release --example online_rm [seed]
//! ```

use amrm::baselines::{standard_registry, EXMEM_NAME, FIXED_NAME, MDF_NAME};
use amrm::core::{
    AdaptiveBatch, AdmissionPolicy, BatchK, Immediate, ReactivationPolicy, SlackAware, WindowTau,
};
use amrm::dataflow::apps;
use amrm::platform::Platform;
use amrm::sim::{run_scenario, Simulation};
use amrm::workload::{poisson_stream, StreamSpec};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2020);

    let platform = Platform::odroid_xu4();
    eprintln!("characterizing application library ...");
    let library = apps::benchmark_suite(&platform);
    let spec = StreamSpec {
        requests: 30,
        slack_range: (1.2, 3.0),
    };
    let stream = poisson_stream(&library, 7.0, &spec, seed);
    println!(
        "{} requests over {:.0} s on {} (seed {seed})\n",
        stream.len(),
        stream.last().map(|r| r.arrival).unwrap_or(0.0),
        platform.name()
    );

    // Every registered scheduler — including the FIXED and INCREMENTAL
    // baselines and the (slow, optimal) EX-MEM reference — runs the same
    // stream. The fixed mapper additionally gets its Fig. 1(b) best case:
    // re-mapping at completions as well as arrivals.
    let registry = standard_registry();
    println!(
        "{:<28} {:>9} {:>12} {:>14} {:>8}",
        "scheduler", "accepted", "energy [J]", "J/accepted", "misses"
    );
    for (name, scheduler) in registry.instantiate_all() {
        if name == EXMEM_NAME {
            eprintln!("(running {name} — the exhaustive reference; this is the slow row)");
        }
        let policies: &[(&str, ReactivationPolicy)] = if name == FIXED_NAME {
            &[
                ("", ReactivationPolicy::OnArrival),
                (" (+completion)", ReactivationPolicy::OnArrivalAndCompletion),
            ]
        } else {
            &[("", ReactivationPolicy::OnArrival)]
        };
        let mut first_instance = Some(scheduler);
        for (suffix, policy) in policies {
            let s = first_instance
                .take()
                .unwrap_or_else(|| registry.create(name).expect("registered"));
            let outcome = run_scenario(platform.clone(), s, *policy, &stream);
            println!(
                "{:<28} {:>6}/{:<2} {:>12.1} {:>14.2} {:>8}",
                format!("{name}{suffix}"),
                outcome.accepted(),
                stream.len(),
                outcome.total_energy,
                outcome.energy_per_job(),
                outcome.stats.deadline_misses
            );
        }
    }
    println!(
        "\nAdaptive mapping admits more requests (reconfiguration absorbs load spikes)\n\
         and spends less energy per admitted job."
    );

    // Batched admission: a denser stream (a size-4 batch must fill inside
    // a request's deadline slack), with requests reaching MMKP-MDF in
    // groups — one scheduler activation decides a whole batch atomically
    // (with greedy rollback if the joint schedule is infeasible). The two
    // telemetry-driven policies size their batches from the observed
    // arrival rate, rolling acceptance and queued slack instead of a
    // fixed knob.
    let dense_spec = StreamSpec {
        requests: 40,
        slack_range: (1.5, 3.0),
    };
    let dense = poisson_stream(&library, 2.0, &dense_spec, seed);
    println!(
        "\nbatched admission (MMKP-MDF, mean inter-arrival 2 s)\n\
         {:<16} {:>9} {:>12} {:>12} {:>12} {:>14}",
        "policy", "accepted", "energy [J]", "activations", "queue drops", "wait p95 [s]"
    );
    let policies: Vec<Box<dyn AdmissionPolicy>> = vec![
        Box::new(Immediate),
        Box::new(BatchK(4)),
        Box::new(WindowTau(2.0)),
        Box::new(AdaptiveBatch::default()),
        Box::new(SlackAware::default()),
    ];
    for policy in policies {
        let label = policy.label();
        let outcome = Simulation::new(
            platform.clone(),
            registry.create(MDF_NAME).expect("registered"),
            ReactivationPolicy::OnArrival,
            policy,
            &dense,
        )
        .run();
        println!(
            "{:<16} {:>6}/{:<2} {:>12.1} {:>12} {:>12} {:>14.2}",
            label,
            outcome.accepted(),
            dense.len(),
            outcome.total_energy,
            outcome.stats.activations,
            outcome.queue_deadline_drops,
            outcome.telemetry.queue_wait_p95
        );
    }
    println!(
        "\nBatching cuts scheduler activations (runtime overhead); under tight\n\
         slack it can cost acceptance — the A/B lever `repro admission` sweeps\n\
         across Poisson and bursty streams, with the adaptive policies closing\n\
         the loop from the kernel's telemetry."
    );
}
