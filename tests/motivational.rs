//! End-to-end integration tests on the paper's motivational example
//! (Section III, Tables I–II, Figure 1), exercised through the facade.

use amrm::baselines::{ExMem, FixedMapper, MmkpLr};
use amrm::core::{MmkpMdf, ReactivationPolicy, Scheduler};
use amrm::sim::run_scenario;
use amrm::workload::scenarios;

#[test]
fn fig1_all_three_strategies_match_paper_energies() {
    let platform = scenarios::platform();
    let s1 = scenarios::scenario_s1();

    let fixed_a = run_scenario(
        platform.clone(),
        FixedMapper::new(),
        ReactivationPolicy::OnArrival,
        &s1,
    );
    assert!((fixed_a.total_energy - 16.96).abs() < 5e-3);

    let fixed_b = run_scenario(
        platform.clone(),
        FixedMapper::new(),
        ReactivationPolicy::OnArrivalAndCompletion,
        &s1,
    );
    assert!((fixed_b.total_energy - 15.49).abs() < 5e-3);

    let adaptive = run_scenario(platform, MmkpMdf::new(), ReactivationPolicy::OnArrival, &s1);
    assert!((adaptive.total_energy - 14.63).abs() < 5e-3);
}

#[test]
fn s2_separates_fixed_from_adaptive_mappers() {
    let platform = scenarios::platform();
    let s2 = scenarios::scenario_s2();

    let fixed = run_scenario(
        platform.clone(),
        FixedMapper::new(),
        ReactivationPolicy::OnArrival,
        &s2,
    );
    assert_eq!(fixed.accepted(), 1, "fixed mapper must reject σ2");

    for scheduler in [
        Box::new(MmkpMdf::new()) as Box<dyn Scheduler>,
        Box::new(ExMem::new()),
    ] {
        let outcome = run_scenario(
            platform.clone(),
            scheduler,
            ReactivationPolicy::OnArrival,
            &s2,
        );
        assert_eq!(outcome.accepted(), 2, "adaptive mappers must admit σ2");
        assert_eq!(outcome.stats.deadline_misses, 0);
    }
}

#[test]
fn adaptive_schedule_is_provably_optimal_here() {
    // EX-MEM agrees with MMKP-MDF on the motivational example: 14.63 J is
    // not just better, it is optimal (for completion-cut segments).
    let platform = scenarios::platform();
    let opt = run_scenario(
        platform,
        ExMem::new(),
        ReactivationPolicy::OnArrival,
        &scenarios::scenario_s1(),
    );
    assert!((opt.total_energy - 14.63).abs() < 5e-3);
}

#[test]
fn lr_is_feasible_but_costlier_on_s1() {
    let platform = scenarios::platform();
    let lr = run_scenario(
        platform,
        MmkpLr::new(),
        ReactivationPolicy::OnArrival,
        &scenarios::scenario_s1(),
    );
    assert_eq!(lr.accepted(), 2);
    assert_eq!(lr.stats.deadline_misses, 0);
    // Single-segment scope costs energy against the adaptive optimum.
    assert!(lr.total_energy >= 14.63 - 5e-3);
}

#[test]
fn gantt_traces_render_for_every_strategy() {
    let platform = scenarios::platform();
    for scheduler in [
        Box::new(MmkpMdf::new()) as Box<dyn Scheduler>,
        Box::new(FixedMapper::new()),
        Box::new(MmkpLr::new()),
        Box::new(ExMem::new()),
    ] {
        let outcome = run_scenario(
            platform.clone(),
            scheduler,
            ReactivationPolicy::OnArrival,
            &scenarios::scenario_s1(),
        );
        let chart = outcome.gantt(&platform);
        assert!(chart.contains("L1") && chart.contains("B2"));
    }
}
