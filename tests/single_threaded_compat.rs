//! Backward compatibility with the single-threaded formulation.
//!
//! The paper notes MMKP-MDF "is backward-compatible with the
//! single-threaded version of the algorithm (without predictions)
//! [Niknafs et al.]": when every operating point uses exactly one core,
//! the MDF/EDF machinery reduces to the original single-threaded scheduler.

use amrm::baselines::ExMem;
use amrm::core::{MmkpMdf, Scheduler};
use amrm::model::{Application, Job, JobId, JobSet, OperatingPoint};
use amrm::platform::Platform;
use amrm::platform::ResourceVec;

/// A single-threaded app with three DVFS-like speed levels on one core.
fn single_threaded_app(name: &str, base_time: f64) -> amrm::model::AppRef {
    Application::shared(
        name,
        vec![
            // slow & frugal, medium, fast & hungry — Pareto by construction
            OperatingPoint::new(ResourceVec::from_slice(&[1]), base_time, base_time * 0.4),
            OperatingPoint::new(
                ResourceVec::from_slice(&[1]),
                base_time * 0.66,
                base_time * 0.55,
            ),
            OperatingPoint::new(
                ResourceVec::from_slice(&[1]),
                base_time * 0.5,
                base_time * 0.8,
            ),
        ],
    )
}

#[test]
fn single_threaded_jobs_occupy_one_core_each() {
    let platform = Platform::homogeneous(4);
    let jobs = JobSet::new(vec![
        Job::new(JobId(1), single_threaded_app("a", 10.0), 0.0, 12.0, 1.0),
        Job::new(JobId(2), single_threaded_app("b", 8.0), 0.0, 9.0, 1.0),
        Job::new(JobId(3), single_threaded_app("c", 6.0), 0.0, 20.0, 0.5),
    ]);
    let schedule = MmkpMdf::new().schedule_at(&jobs, &platform, 0.0).unwrap();
    schedule.validate(&jobs, &platform, 0.0).unwrap();
    for seg in schedule.segments() {
        let demand = seg.demand(&jobs, 1);
        assert_eq!(
            demand[0] as usize,
            seg.mappings().len(),
            "every single-threaded job uses exactly one core"
        );
    }
}

#[test]
fn contention_forces_edf_suspension() {
    // Four single-threaded jobs on a 2-core machine: the two most urgent
    // run first (EDF), the others are suspended — exactly the Niknafs
    // behaviour the segment model generalizes.
    let platform = Platform::homogeneous(2);
    let jobs = JobSet::new(vec![
        Job::new(JobId(1), single_threaded_app("a", 4.0), 0.0, 30.0, 1.0),
        Job::new(JobId(2), single_threaded_app("b", 4.0), 0.0, 5.0, 1.0),
        Job::new(JobId(3), single_threaded_app("c", 4.0), 0.0, 6.0, 1.0),
        Job::new(JobId(4), single_threaded_app("d", 4.0), 0.0, 31.0, 1.0),
    ]);
    let schedule = MmkpMdf::new().schedule_at(&jobs, &platform, 0.0).unwrap();
    schedule.validate(&jobs, &platform, 0.0).unwrap();
    // The first segment hosts the two earliest deadlines.
    let first = &schedule.segments()[0];
    assert!(first.contains_job(JobId(2)));
    assert!(first.contains_job(JobId(3)));
    assert!(!first.contains_job(JobId(1)) || !first.contains_job(JobId(4)));
}

#[test]
fn single_threaded_matches_exhaustive_optimum_on_small_cases() {
    let platform = Platform::homogeneous(2);
    for (d1, d2) in [(12.0, 9.0), (20.0, 6.0), (10.0, 10.0)] {
        let jobs = JobSet::new(vec![
            Job::new(JobId(1), single_threaded_app("a", 10.0), 0.0, d1, 1.0),
            Job::new(JobId(2), single_threaded_app("b", 8.0), 0.0, d2, 1.0),
        ]);
        let mdf = MmkpMdf::new().schedule_at(&jobs, &platform, 0.0);
        let opt = ExMem::new().schedule_at(&jobs, &platform, 0.0);
        match (mdf, opt) {
            (Some(h), Some(o)) => {
                // With one-core points and ≤ #cores jobs, MDF picks each
                // job's cheapest deadline-feasible level — optimal.
                assert!(
                    (h.energy(&jobs) - o.energy(&jobs)).abs() < 1e-6,
                    "({d1},{d2}): mdf {} vs opt {}",
                    h.energy(&jobs),
                    o.energy(&jobs)
                );
            }
            (None, None) => {}
            (h, o) => panic!(
                "feasibility mismatch: mdf={:?} opt={:?}",
                h.is_some(),
                o.is_some()
            ),
        }
    }
}

#[test]
fn homogeneous_platform_is_a_degenerate_heterogeneous_one() {
    // m = 1 resource type flows through the whole stack unchanged.
    let platform = Platform::homogeneous(8);
    assert_eq!(platform.num_types(), 1);
    let jobs = JobSet::new(vec![Job::new(
        JobId(1),
        single_threaded_app("solo", 5.0),
        0.0,
        10.0,
        1.0,
    )]);
    let schedule = MmkpMdf::new().schedule_at(&jobs, &platform, 0.0).unwrap();
    schedule.validate(&jobs, &platform, 0.0).unwrap();
    // Cheapest level that meets the deadline: the slow one (5 s ≤ 10 s).
    assert!((schedule.energy(&jobs) - 2.0).abs() < 1e-9);
}
