//! Determinism and non-perturbation gates for the event journal.
//!
//! Two properties, both over every scheduler in the standard registry:
//!
//! 1. **Reproducibility** — two runs at the same seed produce *identical*
//!    journals, event for event (the journal records sim-time quantities
//!    only, so nothing wall-clock can leak in).
//! 2. **Observation-only** — enabling the journal (sampling off) leaves
//!    admissions, accumulated energy bits, counters and telemetry
//!    bit-identical to the journal-free run; the journal is a pure
//!    observer of the hot path.

use amrm::baselines::standard_registry;
use amrm::core::{AdmissionPolicy, BatchK, ReactivationPolicy, SearchBudget};
use amrm::metrics::journal::JournalConfig;
use amrm::sim::{SimOutcome, Simulation};
use amrm::workload::{poisson_stream, scenarios, ScenarioRequest, StreamSpec};
use proptest::prelude::*;

fn library() -> Vec<amrm::model::AppRef> {
    vec![scenarios::lambda1(), scenarios::lambda2()]
}

fn run_outcome(
    name: &str,
    stream: &[ScenarioRequest],
    admission: impl AdmissionPolicy,
    journal: Option<JournalConfig>,
) -> SimOutcome {
    let sim = Simulation::new(
        scenarios::platform(),
        standard_registry().create(name).unwrap(),
        ReactivationPolicy::OnArrival,
        admission,
        stream,
    )
    .with_search_budget(SearchBudget::online());
    match journal {
        Some(config) => sim.with_journal(config),
        None => sim,
    }
    .run()
}

/// Equality modulo the wall-clock `decision_seconds_*` telemetry.
fn assert_bit_identical(name: &str, seed: u64, journaled: &SimOutcome, plain: &SimOutcome) {
    assert_eq!(
        journaled.admissions, plain.admissions,
        "{name}/seed {seed}: admissions diverged"
    );
    assert_eq!(
        journaled.total_energy.to_bits(),
        plain.total_energy.to_bits(),
        "{name}/seed {seed}: energy diverged"
    );
    assert_eq!(
        journaled.end_time.to_bits(),
        plain.end_time.to_bits(),
        "{name}/seed {seed}: end time diverged"
    );
    assert_eq!(
        journaled.stats, plain.stats,
        "{name}/seed {seed}: counters diverged"
    );
    assert_eq!(
        journaled.queue_deadline_drops, plain.queue_deadline_drops,
        "{name}/seed {seed}: drops diverged"
    );
    let mut a = journaled.telemetry.clone();
    let mut b = plain.telemetry.clone();
    a.decision_seconds_p50 = 0.0;
    a.decision_seconds_p95 = 0.0;
    a.decision_seconds_p99 = 0.0;
    a.decision_seconds_hist = Default::default();
    b.decision_seconds_p50 = 0.0;
    b.decision_seconds_p95 = 0.0;
    b.decision_seconds_p99 = 0.0;
    b.decision_seconds_hist = Default::default();
    assert_eq!(a, b, "{name}/seed {seed}: telemetry diverged");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Same seed, same journal — event for event, for every scheduler.
    #[test]
    fn journals_are_identical_across_runs_at_one_seed(
        seed in 0u64..1000,
        mean in 1.5f64..6.0,
        requests in 6usize..14,
    ) {
        let spec = StreamSpec { requests, slack_range: (1.2, 2.5) };
        let stream = poisson_stream(&library(), mean, &spec, seed);
        for (name, _) in standard_registry().iter() {
            let a = run_outcome(name, &stream, BatchK(2), Some(JournalConfig::default()));
            let b = run_outcome(name, &stream, BatchK(2), Some(JournalConfig::default()));
            let (ja, jb) = (a.journal.unwrap(), b.journal.unwrap());
            prop_assert_eq!(
                ja.events(), jb.events(),
                "{}/seed {}: journals diverged", name, seed
            );
            prop_assert_eq!(ja.counts(), jb.counts());
            prop_assert_eq!(ja.reject_reasons(), jb.reject_reasons());
        }
    }

    /// Journal on (sampling off) vs journal-free: the simulation itself
    /// is bit-identical — the journal only observes.
    #[test]
    fn enabling_the_journal_perturbs_nothing(
        seed in 0u64..1000,
        mean in 1.5f64..6.0,
        requests in 6usize..14,
    ) {
        let spec = StreamSpec { requests, slack_range: (1.2, 2.5) };
        let stream = poisson_stream(&library(), mean, &spec, seed);
        for (name, _) in standard_registry().iter() {
            let journaled = run_outcome(name, &stream, BatchK(2), Some(JournalConfig::default()));
            let plain = run_outcome(name, &stream, BatchK(2), None);
            assert_bit_identical(name, seed, &journaled, &plain);
            prop_assert!(plain.journal.is_none());
            prop_assert!(journaled.journal.is_some());
        }
    }
}

/// Deterministic 1-in-N sampling also reproduces exactly and also
/// perturbs nothing — it thins the lifecycle events by arrival ordinal,
/// never by RNG.
#[test]
fn sampled_journals_reproduce_and_do_not_perturb() {
    let spec = StreamSpec {
        requests: 12,
        slack_range: (1.2, 2.5),
    };
    let stream = poisson_stream(&library(), 2.0, &spec, 42);
    for (name, _) in standard_registry().iter() {
        let config = JournalConfig::sampled(4);
        let a = run_outcome(name, &stream, BatchK(3), Some(config));
        let b = run_outcome(name, &stream, BatchK(3), Some(config));
        assert_eq!(
            a.journal.as_ref().unwrap().events(),
            b.journal.as_ref().unwrap().events(),
            "{name}: sampled journals diverged"
        );
        let plain = run_outcome(name, &stream, BatchK(3), None);
        assert_bit_identical(name, 42, &a, &plain);
    }
}
