//! Determinism and hysteresis gates for the telemetry-driven META
//! scheduler.
//!
//! Everything META observes — the context's telemetry snapshot, the job
//! set, the clock — is simulated state, so repeated runs at a fixed seed
//! must reproduce admissions, energy (bit for bit) *and the regime switch
//! count* exactly, on both bursty and diurnal stream shapes and under
//! both per-request and adaptive batched admission. A separate gate pins
//! the hysteresis: an arrival rate oscillating around the heavy-enter
//! threshold must not flap the algorithm every activation.

use amrm::baselines::{BudgetRegime, MetaConfig, MetaScheduler, Regime};
use amrm::core::{
    AdaptiveBatch, AdmissionPolicy, BatchK, Immediate, ReactivationPolicy, Scheduler,
    SchedulingContext, SearchBudget, TelemetrySnapshot,
};
use amrm::model::{AppRef, Job, JobId, JobSet};
use amrm::sim::Simulation;
use amrm::workload::{bursty_window_stream, diurnal_stream, scenarios, StreamSpec};
use proptest::prelude::*;

fn library() -> Vec<AppRef> {
    vec![scenarios::lambda1(), scenarios::lambda2()]
}

fn run_meta<A: AdmissionPolicy>(
    stream: &[amrm::workload::ScenarioRequest],
    admission: A,
) -> (amrm::sim::SimOutcome, MetaScheduler) {
    run_meta_with(stream, admission, MetaScheduler::new())
}

fn run_meta_with<A: AdmissionPolicy>(
    stream: &[amrm::workload::ScenarioRequest],
    admission: A,
    meta: MetaScheduler,
) -> (amrm::sim::SimOutcome, MetaScheduler) {
    Simulation::new(
        scenarios::platform(),
        meta,
        ReactivationPolicy::OnArrival,
        admission,
        stream,
    )
    .with_search_budget(SearchBudget::online())
    .run_with_scheduler()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Identical seeds reproduce identical admissions, energy bits and
    /// switch counts on bursty and diurnal streams, under per-request
    /// and adaptive batched admission.
    #[test]
    fn meta_runs_are_deterministic_per_seed(
        seed in 0u64..1000,
        requests in 10usize..24,
    ) {
        let spec = StreamSpec { requests, slack_range: (1.3, 2.6) };
        let streams = [
            bursty_window_stream(&library(), 0.8, 6.0, 12.0, &spec, seed),
            diurnal_stream(&library(), 2.5, 3.0, 40.0, &spec, seed),
        ];
        for stream in &streams {
            let (first, meta_a) = run_meta(stream, Immediate);
            let (second, meta_b) = run_meta(stream, Immediate);
            assert_eq!(first.admissions, second.admissions, "admissions diverged");
            assert_eq!(
                first.total_energy.to_bits(),
                second.total_energy.to_bits(),
                "energy diverged"
            );
            assert_eq!(first.stats, second.stats, "counters diverged");
            assert_eq!(
                meta_a.switches(),
                meta_b.switches(),
                "regime switch counts diverged across identical runs"
            );

            let (third, meta_c) = run_meta(stream, AdaptiveBatch::default());
            let (fourth, meta_d) = run_meta(stream, AdaptiveBatch::default());
            assert_eq!(third.admissions, fourth.admissions);
            assert_eq!(third.total_energy.to_bits(), fourth.total_energy.to_bits());
            assert_eq!(third.queue_deadline_drops, fourth.queue_deadline_drops);
            assert_eq!(meta_c.switches(), meta_d.switches());
        }
    }

    /// Budget-adaptive META is deterministic per seed — admissions,
    /// energy bits, algorithm *and* budget switch counts — and, under the
    /// degenerate per-request disciplines (`Immediate`, `BatchK(1)`,
    /// whose prompt pipelines keep the decision-latency signal at zero),
    /// bit-identical to the fixed-budget configuration.
    #[test]
    fn budget_adaptive_meta_is_deterministic_and_degenerates_cleanly(
        seed in 0u64..1000,
        requests in 10usize..24,
    ) {
        let spec = StreamSpec { requests, slack_range: (1.3, 2.6) };
        let streams = [
            bursty_window_stream(&library(), 0.8, 6.0, 12.0, &spec, seed),
            diurnal_stream(&library(), 2.5, 3.0, 40.0, &spec, seed),
        ];
        for stream in &streams {
            // Determinism of the adaptive-budget path itself (BatchK(4)
            // produces non-zero queue waits, so the budget regime has a
            // real signal to react to).
            let (first, meta_a) = run_meta(stream, BatchK(4));
            let (second, meta_b) = run_meta(stream, BatchK(4));
            assert_eq!(first.admissions, second.admissions);
            assert_eq!(first.total_energy.to_bits(), second.total_energy.to_bits());
            assert_eq!(meta_a.switches(), meta_b.switches());
            assert_eq!(
                meta_a.budget_switches(),
                meta_b.budget_switches(),
                "budget regime switch counts diverged across identical runs"
            );

            // Degenerate disciplines: adaptive ≡ fixed, bit for bit.
            let (ai, _) = run_meta(stream, Immediate);
            let (fi, fixed_meta) =
                run_meta_with(stream, Immediate, MetaScheduler::with_fixed_budget());
            assert_eq!(ai.admissions, fi.admissions);
            assert_eq!(ai.total_energy.to_bits(), fi.total_energy.to_bits());
            assert_eq!(ai.stats, fi.stats);
            assert_eq!(fixed_meta.budget_switches(), 0);
            let (ab, adaptive_meta) = run_meta(stream, BatchK(1));
            let (fb, _) = run_meta_with(stream, BatchK(1), MetaScheduler::with_fixed_budget());
            assert_eq!(ab.admissions, fb.admissions);
            assert_eq!(ab.total_energy.to_bits(), fb.total_energy.to_bits());
            assert_eq!(
                adaptive_meta.budget_switches(),
                0,
                "a prompt per-request pipeline must never tighten the budget"
            );
        }
    }

    /// META never produces a schedule that misses an admitted deadline,
    /// whatever regime it lands in.
    #[test]
    fn meta_never_misses_admitted_deadlines(
        seed in 0u64..1000,
        requests in 8usize..20,
    ) {
        let spec = StreamSpec { requests, slack_range: (1.2, 3.0) };
        let stream = bursty_window_stream(&library(), 0.5, 5.0, 10.0, &spec, seed);
        let (outcome, _) = run_meta(&stream, Immediate);
        assert_eq!(outcome.stats.deadline_misses, 0);
        assert_eq!(outcome.stats.completed, outcome.accepted());
    }
}

/// The hysteresis gate: a rate oscillating around the heavy-enter
/// threshold — with the platform hot, so the utilization signal holds —
/// causes exactly one switch into the heavy regime, not one per
/// activation.
#[test]
fn oscillating_rate_does_not_switch_every_activation() {
    let mut meta = MetaScheduler::new();
    let platform = scenarios::platform();
    let jobs = JobSet::new(vec![
        Job::new(JobId(1), scenarios::lambda1(), 0.0, 25.0, 1.0),
        Job::new(JobId(2), scenarios::lambda2(), 0.0, 20.0, 1.0),
    ]);
    let enter = meta.config().heavy_enter_rate;
    let activations = 24;
    for i in 0..activations {
        let rate = if i % 2 == 0 { enter + 0.1 } else { enter - 0.1 };
        let ctx = SchedulingContext::at(0.0).with_telemetry(TelemetrySnapshot {
            arrival_rate: rate,
            utilization: 0.95,
            ..TelemetrySnapshot::default()
        });
        let schedule = meta.schedule(&jobs, &platform, &ctx);
        assert!(schedule.is_some(), "activation {i} rejected a feasible set");
    }
    assert_eq!(meta.regime(), Regime::Heavy);
    assert_eq!(
        meta.switches(),
        1,
        "an oscillation inside the hysteresis band must cause exactly one \
         switch, not {} over {activations} activations",
        meta.switches()
    );
}

/// Dropping clean out of the band (both signals below the exit
/// thresholds) does leave the heavy regime — hysteresis delays exits, it
/// does not latch them forever.
#[test]
fn calm_signals_leave_the_heavy_regime() {
    let mut meta = MetaScheduler::new();
    let platform = scenarios::platform();
    let jobs = JobSet::new(vec![Job::new(
        JobId(1),
        scenarios::lambda1(),
        0.0,
        30.0,
        1.0,
    )]);
    let hot = SchedulingContext::at(0.0).with_telemetry(TelemetrySnapshot {
        arrival_rate: 3.0,
        utilization: 0.95,
        ..TelemetrySnapshot::default()
    });
    meta.schedule(&jobs, &platform, &hot);
    assert_eq!(meta.regime(), Regime::Heavy);
    let calm = SchedulingContext::at(0.0).with_telemetry(TelemetrySnapshot {
        arrival_rate: 0.1,
        utilization: 0.05,
        ..TelemetrySnapshot::default()
    });
    meta.schedule(&jobs, &platform, &calm);
    assert_ne!(meta.regime(), Regime::Heavy);
}

/// The budget regime is not vacuous: a slow gathering pipeline (BatchK(4)
/// on a bursty stream holds requests well past the 1.5 s enter threshold)
/// must actually tighten the EX-MEM budget, and the tightened budget must
/// reach the exact regime's activations.
#[test]
fn slow_pipeline_engages_the_tight_budget_regime() {
    let spec = StreamSpec {
        requests: 40,
        slack_range: (1.5, 3.0),
    };
    let stream = bursty_window_stream(&library(), 1.0, 8.0, 15.0, &spec, 2020);
    let (_, meta) = run_meta(&stream, BatchK(4));
    assert!(
        meta.budget_switches() >= 1,
        "the decision-latency signal never engaged the budget regime"
    );
    assert_eq!(meta.budget_regime(), BudgetRegime::Tight);
    assert_eq!(
        meta.last_exact_budget(),
        meta.config().exmem_tight_budget,
        "the tight budget never reached an exact-regime activation"
    );
    // The same stream under a prompt pipeline stays generous.
    let (_, prompt) = run_meta(&stream, Immediate);
    assert_eq!(prompt.budget_regime(), BudgetRegime::Generous);
    assert_eq!(prompt.budget_switches(), 0);
}

/// Tighter custom thresholds flow through `with_config` and still
/// validate.
#[test]
fn custom_config_drives_the_switch() {
    let config = MetaConfig {
        heavy_enter_rate: 0.5,
        heavy_exit_rate: 0.25,
        heavy_enter_util: 0.3,
        heavy_exit_util: 0.2,
        ..MetaConfig::default()
    };
    let mut meta = MetaScheduler::with_config(config);
    let platform = scenarios::platform();
    let jobs = JobSet::new(vec![Job::new(
        JobId(1),
        scenarios::lambda2(),
        0.0,
        30.0,
        1.0,
    )]);
    let ctx = SchedulingContext::at(0.0).with_telemetry(TelemetrySnapshot {
        arrival_rate: 0.6,
        utilization: 0.4,
        ..TelemetrySnapshot::default()
    });
    meta.schedule(&jobs, &platform, &ctx);
    assert_eq!(meta.regime(), Regime::Heavy);
}
