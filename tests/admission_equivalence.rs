//! The equivalence gate for the event-driven admission refactor.
//!
//! The kernel in `amrm-sim` replaced the hand-rolled per-arrival loop, so
//! the degenerate batched policies must reproduce the old driver *bit for
//! bit*: `Immediate`, `BatchK(1)` and `WindowTau(0)` runs are compared
//! against the retained sequential reference
//! (`run_scenario_sequential`) on seeded Poisson streams, for **every**
//! scheduler in the standard registry — admissions, total energy (as raw
//! f64 bits), end time, counters and the executed trace.
//!
//! A second group pins the atomic-batch semantics: partially-infeasible
//! batches roll back and re-admit greedily, fully-infeasible batches
//! leave the engine untouched.

use amrm::baselines::standard_registry;
use amrm::core::{
    AdaptiveBatch, AdmissionPolicy, BatchK, Immediate, MmkpMdf, ReactivationPolicy, RuntimeManager,
    SlackAware, WindowTau,
};
use amrm::model::AppRef;
use amrm::sim::{run_scenario_sequential, SimOutcome, Simulation};
use amrm::workload::{
    bursty_window_stream, diurnal_stream, poisson_stream, scenarios, ScenarioRequest, StreamSpec,
};
use proptest::prelude::*;

fn library() -> Vec<AppRef> {
    vec![scenarios::lambda1(), scenarios::lambda2()]
}

/// The degenerate policies that must reproduce the sequential driver,
/// as boxed factories (the trait migration made policies stateful in
/// general, so each run gets a fresh instance).
fn degenerate_policies() -> Vec<Box<dyn Fn() -> Box<dyn AdmissionPolicy>>> {
    vec![
        Box::new(|| Box::new(Immediate)),
        Box::new(|| Box::new(BatchK(1))),
        Box::new(|| Box::new(WindowTau(0.0))),
    ]
}

fn kernel_outcome(
    scheduler: Box<dyn amrm::core::Scheduler>,
    admission: Box<dyn AdmissionPolicy>,
    stream: &[ScenarioRequest],
) -> SimOutcome {
    Simulation::new(
        scenarios::platform(),
        scheduler,
        ReactivationPolicy::OnArrival,
        admission,
        stream,
    )
    .run()
}

/// Asserts the strongest equivalence we claim: identical admission
/// decisions and bit-identical accumulated floats.
fn assert_byte_identical(name: &str, policy: &str, kernel: &SimOutcome, reference: &SimOutcome) {
    assert_eq!(
        kernel.admissions, reference.admissions,
        "{name}/{policy}: admissions diverged"
    );
    assert_eq!(
        kernel.total_energy.to_bits(),
        reference.total_energy.to_bits(),
        "{name}/{policy}: energy diverged ({} vs {})",
        kernel.total_energy,
        reference.total_energy
    );
    assert_eq!(
        kernel.end_time.to_bits(),
        reference.end_time.to_bits(),
        "{name}/{policy}: end time diverged"
    );
    assert_eq!(
        kernel.stats, reference.stats,
        "{name}/{policy}: counters diverged"
    );
    assert_eq!(
        kernel.trace, reference.trace,
        "{name}/{policy}: executed trace diverged"
    );
    assert_eq!(kernel.queue_deadline_drops, 0, "{name}/{policy}: drops");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// `BatchK(1)` and `WindowTau(0)` are the per-request discipline on
    /// Poisson streams, for every registry scheduler.
    ///
    /// One scoping exception: the *context-aware* META scheduler is
    /// compared under `Immediate` and `BatchK(1)` only. `WindowTau(0)`
    /// makes the same admission decisions but through extra window-expiry
    /// events, each of which feeds another utilization sample into the
    /// telemetry EWMAs — a different observation process that a
    /// telemetry-reactive scheduler may legitimately answer differently
    /// at a regime boundary. Context-blind schedulers cannot see the
    /// difference, so for them all three disciplines stay bit-identical.
    #[test]
    fn degenerate_batching_equals_per_request_path(
        seed in 0u64..1000,
        mean in 1.5f64..8.0,
        requests in 6usize..14,
    ) {
        let spec = StreamSpec { requests, slack_range: (1.2, 2.5) };
        let stream = poisson_stream(&library(), mean, &spec, seed);
        let registry = standard_registry();
        for (name, _) in registry.iter() {
            let reference = run_scenario_sequential(
                scenarios::platform(),
                registry.create(name).unwrap(),
                ReactivationPolicy::OnArrival,
                &stream,
            );
            for make_policy in degenerate_policies() {
                let policy = make_policy();
                let label = policy.label();
                if name == amrm::baselines::META_NAME && label.starts_with("WindowTau") {
                    continue; // different telemetry history (see above)
                }
                let kernel = kernel_outcome(registry.create(name).unwrap(), policy, &stream);
                assert_byte_identical(name, &label, &kernel, &reference);
            }
        }
    }

    /// The re-activation policy does not disturb the equivalence (the
    /// kernel's completion events must consume at the exact instants the
    /// sequential driver does).
    #[test]
    fn equivalence_holds_under_completion_reactivation(
        seed in 0u64..1000,
        requests in 6usize..12,
    ) {
        let spec = StreamSpec { requests, slack_range: (1.3, 2.2) };
        let stream = poisson_stream(&library(), 3.0, &spec, seed);
        let reference = run_scenario_sequential(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrivalAndCompletion,
            &stream,
        );
        let kernel = Simulation::new(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrivalAndCompletion,
            BatchK(1),
            &stream,
        )
        .run();
        assert_byte_identical("MMKP-MDF", "BatchK(1)+completion", &kernel, &reference);
    }

    /// The stateful adaptive policies are deterministic: repeated runs at
    /// a fixed seed produce identical admissions and bit-identical energy
    /// — everything they observe through the telemetry snapshot is
    /// simulated time and state, never wall clocks. Checked on both
    /// bursty and diurnal stream shapes.
    #[test]
    fn adaptive_policies_are_deterministic_per_seed(
        seed in 0u64..1000,
        requests in 10usize..24,
    ) {
        let spec = StreamSpec { requests, slack_range: (1.3, 2.6) };
        let streams = [
            bursty_window_stream(&library(), 0.8, 6.0, 12.0, &spec, seed),
            diurnal_stream(&library(), 2.5, 3.0, 40.0, &spec, seed),
        ];
        let policies: Vec<Box<dyn Fn() -> Box<dyn AdmissionPolicy>>> = vec![
            Box::new(|| Box::new(AdaptiveBatch::default())),
            Box::new(|| Box::new(SlackAware::default())),
        ];
        for stream in &streams {
            for make_policy in &policies {
                let first = kernel_outcome(Box::new(MmkpMdf::new()), make_policy(), stream);
                let second = kernel_outcome(Box::new(MmkpMdf::new()), make_policy(), stream);
                let label = make_policy().label();
                assert_eq!(
                    first.admissions, second.admissions,
                    "{label}: admissions diverged across identical runs"
                );
                assert_eq!(
                    first.total_energy.to_bits(),
                    second.total_energy.to_bits(),
                    "{label}: energy diverged across identical runs"
                );
                assert_eq!(first.stats, second.stats, "{label}: counters diverged");
                assert_eq!(
                    first.queue_deadline_drops, second.queue_deadline_drops,
                    "{label}: drops diverged"
                );
            }
        }
    }
}

#[test]
fn partially_infeasible_batch_rolls_back_for_every_scheduler() {
    // S1's λ2 next to a poisoned twin with an impossible deadline: the
    // joint batch must fail, the rollback must admit exactly what the
    // per-request sequence would.
    let registry = standard_registry();
    for (name, _) in registry.iter() {
        let mut rm = RuntimeManager::new(scenarios::platform(), registry.create(name).unwrap());
        assert!(
            rm.submit(scenarios::lambda1(), 30.0).is_accepted(),
            "{name}: σ1 rejected"
        );
        let batch = rm.submit_batch(&[
            (scenarios::lambda2(), rm.now() + 30.0),
            (scenarios::lambda2(), rm.now() + 1.5), // fastest point needs 2 s
        ]);
        assert!(batch[0].is_accepted(), "{name}: viable candidate rejected");
        assert!(
            !batch[1].is_accepted(),
            "{name}: impossible candidate admitted"
        );
        let stats = rm.stats();
        assert_eq!(stats.accepted, 2, "{name}");
        assert_eq!(stats.rejected, 1, "{name}");
        rm.run_to_completion();
        assert_eq!(rm.stats().completed, 2, "{name}");
        assert_eq!(rm.stats().deadline_misses, 0, "{name}");
    }
}

#[test]
fn fully_infeasible_batch_preserves_prior_state_for_every_scheduler() {
    let registry = standard_registry();
    for (name, _) in registry.iter() {
        let mut rm = RuntimeManager::new(scenarios::platform(), registry.create(name).unwrap());
        assert!(rm.submit(scenarios::lambda1(), 30.0).is_accepted());
        rm.advance_to(1.0);
        let energy_before = rm.total_energy();
        let schedule_before = rm.current_schedule().clone();
        let batch = rm.submit_batch(&[
            (scenarios::lambda2(), 2.0), // 1 s of slack, needs 2 s
            (scenarios::lambda2(), 2.5),
        ]);
        assert!(
            batch.iter().all(|a| !a.is_accepted()),
            "{name}: impossible batch admitted"
        );
        assert_eq!(
            rm.current_schedule(),
            &schedule_before,
            "{name}: schedule disturbed by rejected batch"
        );
        assert_eq!(rm.engine().jobs().len(), 1, "{name}");
        assert_eq!(rm.total_energy().to_bits(), energy_before.to_bits());
        rm.run_to_completion();
        assert_eq!(rm.stats().completed, 1, "{name}");
        assert_eq!(rm.stats().deadline_misses, 0, "{name}");
    }
}

#[test]
fn batched_admission_still_beats_nothing_on_fig1() {
    // Sanity: a BatchK(2) run over S1 defers σ1 until σ2 arrives at
    // t = 1, then admits both in one joint activation.
    let outcome = Simulation::new(
        scenarios::platform(),
        MmkpMdf::new(),
        ReactivationPolicy::OnArrival,
        BatchK(2),
        &scenarios::scenario_s1(),
    )
    .run();
    assert_eq!(outcome.accepted(), 2);
    assert_eq!(outcome.stats.activations, 1);
    assert_eq!(outcome.stats.deadline_misses, 0);
}
