//! Trace replay: a recorded request stream saved with
//! `workload::save_stream` and loaded back with `load_stream` must drive
//! the event kernel *identically* to the original — admissions, energy
//! bits, counters — including under the stateful adaptive policies.

use amrm::core::{AdaptiveBatch, BatchK, MmkpMdf, ReactivationPolicy};
use amrm::model::AppRef;
use amrm::sim::Simulation;
use amrm::workload::{
    diurnal_stream, load_stream, save_stream, scenarios, ScenarioRequest, StreamSpec,
};

fn library() -> Vec<AppRef> {
    vec![scenarios::lambda1(), scenarios::lambda2()]
}

fn replay_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(name)
}

fn simulate<A: amrm::core::AdmissionPolicy>(
    admission: A,
    stream: &[ScenarioRequest],
) -> amrm::sim::SimOutcome {
    Simulation::new(
        scenarios::platform(),
        MmkpMdf::new(),
        ReactivationPolicy::OnArrival,
        admission,
        stream,
    )
    .run()
}

#[test]
fn replayed_trace_reproduces_the_recorded_run_bit_for_bit() {
    let lib = library();
    let spec = StreamSpec {
        requests: 40,
        slack_range: (1.3, 2.6),
    };
    let recorded = diurnal_stream(&lib, 2.5, 3.0, 50.0, &spec, 99);
    let path = replay_path("amrm_replay_diurnal.json");
    save_stream(&path, &recorded).unwrap();
    let replayed = load_stream(&path, &lib).unwrap();
    let _ = std::fs::remove_file(&path);

    for (label, live, replay) in [
        (
            "BatchK(3)",
            simulate(BatchK(3), &recorded),
            simulate(BatchK(3), &replayed),
        ),
        (
            "AdaptiveBatch",
            simulate(AdaptiveBatch::default(), &recorded),
            simulate(AdaptiveBatch::default(), &replayed),
        ),
    ] {
        assert_eq!(live.admissions, replay.admissions, "{label}: admissions");
        assert_eq!(
            live.total_energy.to_bits(),
            replay.total_energy.to_bits(),
            "{label}: energy"
        );
        assert_eq!(live.stats, replay.stats, "{label}: counters");
        assert_eq!(
            live.queue_deadline_drops, replay.queue_deadline_drops,
            "{label}: drops"
        );
    }
}

#[test]
fn replay_works_across_a_reordered_library() {
    // Resolution is by name, so the library's ordering must not matter.
    let spec = StreamSpec {
        requests: 10,
        slack_range: (1.5, 2.5),
    };
    let recorded = amrm::workload::poisson_stream(&library(), 3.0, &spec, 7);
    let path = replay_path("amrm_replay_reordered.json");
    save_stream(&path, &recorded).unwrap();
    let reversed: Vec<AppRef> = library().into_iter().rev().collect();
    let replayed = load_stream(&path, &reversed).unwrap();
    let _ = std::fs::remove_file(&path);
    for (a, b) in recorded.iter().zip(&replayed) {
        assert_eq!(a.app.name(), b.app.name());
        assert_eq!(a.deadline.to_bits(), b.deadline.to_bits());
    }
}
