//! The equivalence and soundness gates for EX-MEM's capped candidate
//! ranking and persistent warm-start mapping cache.
//!
//! Three claims are pinned:
//!
//! 1. **An infinite rank cap changes nothing.** `rank_cap = usize::MAX`
//!    normalizes to "no cap" at the [`SearchBudget`] layer, so whole
//!    online runs under `nodes(L).with_rank_cap(usize::MAX)` are
//!    bit-identical to `nodes(L)` — the budget shape every pre-cap run
//!    used — for *every* standard admission policy.
//! 2. **Warm replay is bit-identical to cold.** Saving the cold run's
//!    mapping cache and replaying the same recorded trace warm must
//!    reproduce admissions and energy bits exactly, while actually
//!    serving warm hits. (The guarded precondition — journal-checked —
//!    is that the cold run never truncated: then every persisted entry
//!    is an exact proof and replaying proofs cannot diverge.)
//! 3. **A finite cap is truncation-equivalent.** Capped runs degrade to
//!    the MDF fallback, never below it, and never miss an admitted
//!    deadline.

use amrm::baselines::{ExMem, MappingCache};
use amrm::core::{
    AdaptiveBatch, AdmissionPolicy, BatchK, Immediate, ReactivationPolicy, SearchBudget,
    SlackAware, TraceSink, WindowTau,
};
use amrm::metrics::journal::{EventKind, JournalConfig};
use amrm::model::AppRef;
use amrm::sim::{SimOutcome, Simulation};
use amrm::workload::{
    bursty_window_stream, poisson_stream, scenarios, ScenarioRequest, StreamSpec,
};
use proptest::prelude::*;

fn library() -> Vec<AppRef> {
    vec![scenarios::lambda1(), scenarios::lambda2()]
}

fn assert_bit_identical(label: &str, a: &SimOutcome, b: &SimOutcome) {
    assert_eq!(a.admissions, b.admissions, "{label}: admissions diverged");
    assert_eq!(
        a.total_energy.to_bits(),
        b.total_energy.to_bits(),
        "{label}: energy diverged ({} vs {})",
        a.total_energy,
        b.total_energy
    );
    assert_eq!(
        a.end_time.to_bits(),
        b.end_time.to_bits(),
        "{label}: end time diverged"
    );
    assert_eq!(a.stats, b.stats, "{label}: counters diverged");
    assert_eq!(a.trace, b.trace, "{label}: executed trace diverged");
}

/// Runs EX-MEM over `stream` under `budget` with the `policy_idx`-th
/// standard admission policy (the same five the admission grid sweeps).
fn run_exmem(stream: &[ScenarioRequest], budget: SearchBudget, policy_idx: usize) -> SimOutcome {
    fn go<A: AdmissionPolicy>(
        stream: &[ScenarioRequest],
        budget: SearchBudget,
        policy: A,
    ) -> SimOutcome {
        Simulation::new(
            scenarios::platform(),
            ExMem::new(),
            ReactivationPolicy::OnArrival,
            policy,
            stream,
        )
        .with_search_budget(budget)
        .run()
    }
    match policy_idx {
        0 => go(stream, budget, Immediate),
        1 => go(stream, budget, BatchK(4)),
        2 => go(stream, budget, WindowTau(2.0)),
        3 => go(stream, budget, AdaptiveBatch::default()),
        _ => go(stream, budget, SlackAware::default()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// `rank_cap = usize::MAX` ≡ the pre-cap enumeration, bit for bit
    /// over whole runs, for every standard admission policy.
    #[test]
    fn max_rank_cap_runs_are_bit_identical_to_uncapped(
        seed in 0u64..1000,
        requests in 8usize..14,
        policy_idx in 0usize..5,
    ) {
        let spec = StreamSpec { requests, slack_range: (1.3, 2.6) };
        let stream = bursty_window_stream(&library(), 0.8, 6.0, 12.0, &spec, seed);
        let uncapped = run_exmem(
            &stream,
            SearchBudget::nodes(SearchBudget::ONLINE_WORK_UNITS),
            policy_idx,
        );
        let max_capped = run_exmem(
            &stream,
            SearchBudget::nodes(SearchBudget::ONLINE_WORK_UNITS).with_rank_cap(usize::MAX),
            policy_idx,
        );
        assert_bit_identical("max rank cap", &uncapped, &max_capped);
    }

    /// A finite rank cap is deterministic and safe: same seed, same cap
    /// → same bits, and no admitted deadline is ever missed.
    #[test]
    fn finite_rank_cap_runs_are_deterministic_and_safe(
        seed in 0u64..1000,
        cap in 1usize..64,
        policy_idx in 0usize..5,
    ) {
        let spec = StreamSpec { requests: 12, slack_range: (1.3, 2.6) };
        let stream = bursty_window_stream(&library(), 0.8, 6.0, 12.0, &spec, seed);
        let budget = SearchBudget::nodes(SearchBudget::ONLINE_WORK_UNITS).with_rank_cap(cap);
        let first = run_exmem(&stream, budget, policy_idx);
        let second = run_exmem(&stream, budget, policy_idx);
        assert_bit_identical("finite rank cap determinism", &first, &second);
        assert_eq!(first.stats.deadline_misses, 0);
    }
}

/// One journal-instrumented EX-MEM run over `stream`, warm-started from
/// `cache` when given.
fn run_journaled(stream: &[ScenarioRequest], cache: Option<MappingCache>) -> (SimOutcome, ExMem) {
    let scheduler = match cache {
        Some(cache) => ExMem::new().with_cache(cache),
        None => ExMem::new(),
    };
    let config = JournalConfig::default();
    let mut sim = Simulation::new(
        scenarios::platform(),
        scheduler,
        ReactivationPolicy::OnArrival,
        Immediate,
        stream,
    )
    // The replay pair runs uncapped (plain online work units): warm
    // replay is the *exact* path served from proofs, and the
    // zero-truncation precondition below is what makes cold-vs-warm
    // bit-identity a theorem instead of a coincidence.
    .with_search_budget(SearchBudget::nodes(SearchBudget::ONLINE_WORK_UNITS));
    sim.install_journal(TraceSink::enabled(config), config.sample);
    sim.run_with_scheduler()
}

#[test]
fn warm_cache_replay_is_bit_identical_to_the_cold_run() {
    let spec = StreamSpec {
        requests: 30,
        slack_range: (1.4, 2.8),
    };
    let stream = poisson_stream(&library(), 5.0, &spec, 2020);

    let (cold, cold_ex) = run_journaled(&stream, None);
    let cold_journal = cold.journal.as_ref().expect("journal installed");
    // Precondition that makes bit-identity a theorem rather than luck:
    // the calm stream solves every activation exactly under the online
    // budget, so everything persisted is a proof.
    assert_eq!(
        cold_journal.count_of(EventKind::Truncation),
        0,
        "pick a calmer pinned stream: the cold run truncated"
    );
    assert_eq!(cold_journal.count_of(EventKind::RankPrune), 0);
    assert_eq!(cold_journal.count_of(EventKind::CacheWarmHit), 0);
    assert!(cold_ex.cache().proof_count() > 0);

    // Roundtrip the cache through disk, exactly as `repro exact` does.
    let dir = std::env::temp_dir().join("amrm_rank_cache_gate");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("poisson2020.cache.json");
    cold_ex.cache().save(&path).unwrap();
    let loaded = MappingCache::load(&path).unwrap();
    assert_eq!(loaded.warm_len(), cold_ex.cache().proof_count());

    let (warm, warm_ex) = run_journaled(&stream, Some(loaded));
    assert_bit_identical("warm replay", &cold, &warm);
    let warm_journal = warm.journal.as_ref().expect("journal installed");
    assert!(
        warm_journal.count_of(EventKind::CacheWarmHit) > 0,
        "the warm run never served a disk-loaded proof"
    );
    assert!(
        warm_ex.last_warm_hits() > 0 || warm_journal.count_of(EventKind::CacheWarmHit) > 0,
        "warm-hit accounting lost"
    );
}

#[test]
fn saved_cache_files_are_deterministic() {
    // Equal cache states must serialize to equal bytes (sorted key
    // order), so committed artifacts and CI comparisons are stable.
    let spec = StreamSpec {
        requests: 12,
        slack_range: (1.4, 2.8),
    };
    let stream = poisson_stream(&library(), 2.0, &spec, 7);
    let run = || {
        let (_, ex) = run_journaled(&stream, None);
        serde_json::to_string(ex.cache()).unwrap()
    };
    assert_eq!(run(), run());
}
