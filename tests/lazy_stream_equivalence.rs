//! Property tests pinning the lazy [`ArrivalStream`] generators against
//! *frozen* reference implementations of the original one-shot (eager)
//! generators, bit for bit over random specs and seeds.
//!
//! The `Vec`-returning functions in `amrm::workload` are now thin
//! `collect()` wrappers over the iterators, so comparing wrapper to
//! iterator would be vacuous — the references below replicate the old
//! closed-form algorithms (draw order: gap, app, slack) independently,
//! so any accidental change to the RNG draw sequence fails here.

use amrm::model::AppRef;
use amrm::workload::{scenarios, ArrivalStream, ScenarioRequest, StreamSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn library() -> Vec<AppRef> {
    vec![scenarios::lambda1(), scenarios::lambda2()]
}

/// Frozen copy of the original per-request draw: app index first, then
/// an inclusive slack draw.
fn ref_request_at(apps: &[AppRef], t: f64, spec: &StreamSpec, rng: &mut StdRng) -> ScenarioRequest {
    let app = AppRef::clone(&apps[rng.gen_range(0..apps.len())]);
    let slack = rng.gen_range(spec.slack_range.0..=spec.slack_range.1);
    let deadline = t + app.min_time() * slack;
    ScenarioRequest {
        app,
        arrival: t,
        deadline,
    }
}

/// Frozen copy of the original modulated-Poisson loop: exponential gap
/// from the local mean (which consumes no randomness), then the request
/// draws.
fn ref_modulated(
    apps: &[AppRef],
    spec: &StreamSpec,
    seed: u64,
    mean_at: impl Fn(f64) -> f64,
) -> Vec<ScenarioRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..spec.requests)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -mean_at(t) * u.ln();
            ref_request_at(apps, t, spec, &mut rng)
        })
        .collect()
}

fn ref_periodic(
    apps: &[AppRef],
    period: f64,
    spec: &StreamSpec,
    seed: u64,
) -> Vec<ScenarioRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..spec.requests)
        .map(|i| ref_request_at(apps, i as f64 * period, spec, &mut rng))
        .collect()
}

fn ref_bursty(
    apps: &[AppRef],
    burst_len: usize,
    intra_gap: f64,
    inter_gap: f64,
    spec: &StreamSpec,
    seed: u64,
) -> Vec<ScenarioRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    let mut in_burst = 0;
    (0..spec.requests)
        .map(|_| {
            let req = ref_request_at(apps, t, spec, &mut rng);
            in_burst += 1;
            if in_burst == burst_len {
                in_burst = 0;
                t += inter_gap;
            } else {
                t += intra_gap;
            }
            req
        })
        .collect()
}

fn assert_bit_identical(lazy: ArrivalStream, reference: &[ScenarioRequest]) {
    let collected: Vec<_> = lazy.collect();
    assert_eq!(collected.len(), reference.len());
    for (a, b) in collected.iter().zip(reference) {
        assert_eq!(a.app.name(), b.app.name());
        assert_eq!(a.arrival.to_bits(), b.arrival.to_bits());
        assert_eq!(a.deadline.to_bits(), b.deadline.to_bits());
    }
}

/// Strategy for a valid spec: 1–60 requests, slack lower bound in
/// [0.5, 2.5], and a width in [0, 2] — width 0 pins the slack.
fn spec_strategy() -> impl Strategy<Value = StreamSpec> {
    (1usize..=60, 0.5f64..=2.5, 0.0f64..=2.0).prop_map(|(requests, lo, width)| StreamSpec {
        requests,
        slack_range: (lo, lo + width),
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn lazy_poisson_matches_the_frozen_reference(
        spec in spec_strategy(),
        mean in 0.1f64..=10.0,
        seed in 0u64..1000,
    ) {
        assert_bit_identical(
            ArrivalStream::poisson(&library(), mean, &spec, seed),
            &ref_modulated(&library(), &spec, seed, |_| mean),
        );
    }

    #[test]
    fn lazy_periodic_matches_the_frozen_reference(
        spec in spec_strategy(),
        period in 0.1f64..=10.0,
        seed in 0u64..1000,
    ) {
        assert_bit_identical(
            ArrivalStream::periodic(&library(), period, &spec, seed),
            &ref_periodic(&library(), period, &spec, seed),
        );
    }

    #[test]
    fn lazy_bursty_matches_the_frozen_reference(
        spec in spec_strategy(),
        burst_len in 1usize..=5,
        intra in 0.0f64..=1.0,
        inter in 0.0f64..=20.0,
        seed in 0u64..1000,
    ) {
        assert_bit_identical(
            ArrivalStream::bursty(&library(), burst_len, intra, inter, &spec, seed),
            &ref_bursty(&library(), burst_len, intra, inter, &spec, seed),
        );
    }

    #[test]
    fn lazy_diurnal_matches_the_frozen_reference(
        spec in spec_strategy(),
        mean in 0.1f64..=10.0,
        peak in 1.0f64..=5.0,
        period in 10.0f64..=200.0,
        seed in 0u64..1000,
    ) {
        let reference = ref_modulated(&library(), &spec, seed, |t| {
            let phase = (2.0 * std::f64::consts::PI * t / period).sin();
            mean * peak.powf(-phase)
        });
        assert_bit_identical(
            ArrivalStream::diurnal(&library(), mean, peak, period, &spec, seed),
            &reference,
        );
    }

    #[test]
    fn lazy_bursty_window_matches_the_frozen_reference(
        spec in spec_strategy(),
        on in 0.1f64..=2.0,
        off in 2.0f64..=20.0,
        window in 5.0f64..=60.0,
        seed in 0u64..1000,
    ) {
        let reference = ref_modulated(&library(), &spec, seed, |t| {
            if ((t / window) as u64).is_multiple_of(2) {
                on
            } else {
                off
            }
        });
        assert_bit_identical(
            ArrivalStream::bursty_window(&library(), on, off, window, &spec, seed),
            &reference,
        );
    }
}
