//! The degenerate-federation equivalence gate.
//!
//! A [`Federation`] with a single shard and round-robin routing is just a
//! `Simulation` with extra bookkeeping: every request routes to shard 0
//! and the lockstep epochs merely chop the stream into arbitrary-sized
//! injection batches.  That degenerate case must be *bit-identical* to
//! the plain batch kernel — admissions, accumulated energy (raw f64
//! bits), end time, counters, drops and the executed trace — for
//! **every** scheduler in the standard registry, at every epoch length.
//! Anything less means the dispatcher tier itself distorts results, and
//! no cross-policy comparison it produces can be trusted.
//!
//! The second gate is determinism: the dispatcher fans shards out over a
//! worker pool, so the merged outcome must not depend on the pool width.

use amrm::baselines::standard_registry;
use amrm::core::{
    EnergyAware, HashAffinity, Immediate, JoinShortestQueue, ReactivationPolicy, RoundRobin,
    RoutingPolicy, Scheduler, SearchBudget,
};
use amrm::model::AppRef;
use amrm::sim::{Federation, FederationConfig, FederationOutcome, SimOutcome, Simulation};
use amrm::workload::{scenarios, ArrivalStream, ScenarioRequest, StreamSpec};
use proptest::prelude::*;

fn library() -> Vec<AppRef> {
    vec![scenarios::lambda1(), scenarios::lambda2()]
}

fn diurnal(requests: usize, seed: u64) -> ArrivalStream {
    let spec = StreamSpec {
        requests,
        slack_range: (1.2, 2.5),
    };
    ArrivalStream::diurnal(&library(), 2.0, 3.0, 60.0, &spec, seed)
}

fn plain_outcome(name: &str, stream: &[ScenarioRequest]) -> SimOutcome {
    let registry = standard_registry();
    Simulation::new(
        scenarios::platform(),
        registry.create(name).unwrap(),
        ReactivationPolicy::OnArrival,
        Immediate,
        stream,
    )
    .with_search_budget(SearchBudget::online())
    .run()
}

fn one_shard_federation(
    name: &str,
    stream: impl Iterator<Item = ScenarioRequest>,
    epoch: usize,
    threads: usize,
) -> FederationOutcome {
    let registry = standard_registry();
    let shard: Simulation<Box<dyn Scheduler + Send>, Immediate> = Simulation::open(
        scenarios::platform(),
        registry.create(name).unwrap(),
        ReactivationPolicy::OnArrival,
        Immediate,
    )
    .with_search_budget(SearchBudget::online());
    Federation::new(vec![shard], Box::new(RoundRobin::new()))
        .with_config(FederationConfig {
            threads,
            epoch,
            steal_threshold: None,
        })
        .run(stream)
}

/// Full-outcome equality modulo the `decision_seconds_*` telemetry
/// percentiles, which sample real wall-clock scheduler time.
fn assert_bit_identical(label: &str, federated: &SimOutcome, reference: &SimOutcome) {
    assert_eq!(
        federated.admissions, reference.admissions,
        "{label}: admissions diverged"
    );
    assert_eq!(
        federated.total_energy.to_bits(),
        reference.total_energy.to_bits(),
        "{label}: energy diverged ({} vs {})",
        federated.total_energy,
        reference.total_energy
    );
    assert_eq!(
        federated.end_time.to_bits(),
        reference.end_time.to_bits(),
        "{label}: end time diverged"
    );
    assert_eq!(
        federated.stats, reference.stats,
        "{label}: counters diverged"
    );
    assert_eq!(
        federated.queue_deadline_drops, reference.queue_deadline_drops,
        "{label}: drops diverged"
    );
    assert_eq!(federated.trace, reference.trace, "{label}: trace diverged");
    let mut a = federated.telemetry.clone();
    let mut b = reference.telemetry.clone();
    a.decision_seconds_p50 = 0.0;
    a.decision_seconds_p95 = 0.0;
    a.decision_seconds_p99 = 0.0;
    a.decision_seconds_hist = Default::default();
    b.decision_seconds_p50 = 0.0;
    b.decision_seconds_p95 = 0.0;
    b.decision_seconds_p99 = 0.0;
    b.decision_seconds_hist = Default::default();
    assert_eq!(a, b, "{label}: telemetry diverged");
}

#[test]
fn one_shard_federation_is_bit_identical_for_every_registry_scheduler() {
    let registry = standard_registry();
    for seed in [7u64, 23, 404] {
        let stream: Vec<ScenarioRequest> = diurnal(50, seed).collect();
        for (name, _) in registry.iter() {
            let reference = plain_outcome(name, &stream);
            let federated = one_shard_federation(name, diurnal(50, seed), 64, 1);
            assert_eq!(federated.offered(), 50);
            assert_eq!(federated.routed, vec![50]);
            assert_bit_identical(
                &format!("{name}/seed {seed}"),
                &federated.shards[0],
                &reference,
            );
        }
    }
}

#[test]
fn merged_outcome_does_not_depend_on_dispatcher_pool_width() {
    let registry = standard_registry();
    let policies: Vec<fn() -> Box<dyn RoutingPolicy + Send>> = vec![
        || Box::new(RoundRobin::new()),
        || Box::new(JoinShortestQueue::new()),
        || Box::new(EnergyAware::new()),
        || Box::new(HashAffinity::new()),
    ];
    for make_policy in policies {
        let run = |threads: usize| {
            let shards: Vec<Simulation<Box<dyn Scheduler + Send>, Immediate>> = (0..4)
                .map(|_| {
                    Simulation::open(
                        scenarios::platform(),
                        registry.create(amrm::baselines::MDF_NAME).unwrap(),
                        ReactivationPolicy::OnArrival,
                        Immediate,
                    )
                    .with_search_budget(SearchBudget::online())
                })
                .collect();
            Federation::new(shards, make_policy())
                .with_config(FederationConfig {
                    threads,
                    ..FederationConfig::default()
                })
                .run(diurnal(80, 23))
        };
        let serial = run(1);
        let pooled = run(4);
        assert_eq!(serial.routed, pooled.routed, "{}", serial.routing);
        assert_eq!(serial.stolen, pooled.stolen, "{}", serial.routing);
        for (idx, (a, b)) in serial.shards.iter().zip(&pooled.shards).enumerate() {
            assert_bit_identical(&format!("{} shard {idx}", serial.routing), a, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random stream length × epoch × seed: the dispatcher's epoch
    /// chopping must never leak into the single shard's results.
    #[test]
    fn one_shard_equivalence_holds_for_random_streams_and_epochs(
        requests in 1usize..=40,
        epoch in 1usize..=16,
        seed in 0u64..500,
    ) {
        let stream: Vec<ScenarioRequest> = diurnal(requests, seed).collect();
        let reference = plain_outcome(amrm::baselines::MDF_NAME, &stream);
        let federated = one_shard_federation(
            amrm::baselines::MDF_NAME,
            stream.iter().cloned(),
            epoch,
            1,
        );
        assert_eq!(federated.offered(), requests);
        assert_bit_identical(
            &format!("MDF/seed {seed}/epoch {epoch}"),
            &federated.shards[0],
            &reference,
        );
    }
}
