//! Determinism gates for the `repro tune` parameter-fitting subsystem:
//! the same seed and grid must produce a bit-identical [`TuneReport`]
//! whether the candidate fan-out runs on one thread or many — the same
//! guarantee every other grid-shaped evaluation in the workspace gives.
//!
//! The full `repro tune` path runs over the characterized benchmark
//! library; these gates use the cheap two-application scenario library so
//! they stay fast enough for every `cargo test`, and compare reports both
//! structurally (params, scores down to the f64 bit) and through their
//! serialized JSON (what the committed artifact pins).

use amrm::bench::tune::{tune_grid, TuneOptions, TuneReport};
use amrm::model::AppRef;
use amrm::workload::scenarios;

fn library() -> Vec<AppRef> {
    vec![scenarios::lambda1(), scenarios::lambda2()]
}

fn run(seed: u64, threads: usize) -> TuneReport {
    tune_grid(
        &scenarios::platform(),
        &library(),
        &TuneOptions {
            seed,
            quick: true,
            threads,
        },
    )
}

fn assert_reports_bit_identical(a: &TuneReport, b: &TuneReport) {
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.streams, b.streams);
    assert_eq!(a.adaptive_batch.evaluated, b.adaptive_batch.evaluated);
    assert_eq!(
        a.adaptive_batch.winner.params,
        b.adaptive_batch.winner.params
    );
    assert_eq!(
        a.adaptive_batch.winner.score.acceptance.to_bits(),
        b.adaptive_batch.winner.score.acceptance.to_bits()
    );
    assert_eq!(
        a.adaptive_batch.winner.score.energy_per_job.to_bits(),
        b.adaptive_batch.winner.score.energy_per_job.to_bits()
    );
    assert_eq!(a.slack_aware.winner.params, b.slack_aware.winner.params);
    assert_eq!(
        a.slack_aware.winner.score.acceptance.to_bits(),
        b.slack_aware.winner.score.acceptance.to_bits()
    );
    assert_eq!(a.meta.winner.params, b.meta.winner.params);
    assert_eq!(
        a.meta.winner.score.acceptance.to_bits(),
        b.meta.winner.score.acceptance.to_bits()
    );
    assert_eq!(
        a.meta.shipped.score.energy_per_job.to_bits(),
        b.meta.shipped.score.energy_per_job.to_bits()
    );
    assert_eq!(a.exmem.winner.params, b.exmem.winner.params);
    assert_eq!(
        a.exmem.winner.score.acceptance.to_bits(),
        b.exmem.winner.score.acceptance.to_bits()
    );
    assert_eq!(
        a.exmem.shipped.score.energy_per_job.to_bits(),
        b.exmem.shipped.score.energy_per_job.to_bits()
    );
    // The serialized artifacts — what `repro tune --json` commits — must
    // match byte for byte.
    let ja = serde_json::to_string(a).expect("report serializes");
    let jb = serde_json::to_string(b).expect("report serializes");
    assert_eq!(ja, jb, "serialized TuneReports diverged");
}

#[test]
fn same_seed_same_grid_is_bit_identical_across_thread_counts() {
    let serial = run(2020, 1);
    for threads in [2, 4, 7] {
        let parallel = run(2020, threads);
        assert_reports_bit_identical(&serial, &parallel);
    }
}

#[test]
fn different_seeds_explore_different_random_tails() {
    // The grid part of the candidate lists is fixed, but the seeded
    // random samples (and the scored streams) must differ — otherwise
    // the search is not actually seeded.
    let a = run(1, 2);
    let b = run(2, 2);
    let same_scores = a.adaptive_batch.shipped.score.acceptance.to_bits()
        == b.adaptive_batch.shipped.score.acceptance.to_bits()
        && a.meta.shipped.score.acceptance.to_bits() == b.meta.shipped.score.acceptance.to_bits()
        && a.slack_aware.shipped.score.acceptance.to_bits()
            == b.slack_aware.shipped.score.acceptance.to_bits();
    assert!(
        !same_scores,
        "seeds 1 and 2 scored identically on every family — the streams \
         are not seeded"
    );
}

#[test]
fn winners_never_score_below_the_shipped_defaults() {
    // The shipped default is candidate 0 of every family, so the winner
    // is at least as good by construction; a regression here means the
    // reduction order broke.
    let report = run(7, 2);
    for (shipped, winner) in [
        (
            &report.adaptive_batch.shipped.score,
            &report.adaptive_batch.winner.score,
        ),
        (
            &report.slack_aware.shipped.score,
            &report.slack_aware.winner.score,
        ),
        (&report.meta.shipped.score, &report.meta.winner.score),
        (&report.exmem.shipped.score, &report.exmem.winner.score),
    ] {
        assert!(
            !shipped.beats(winner),
            "shipped {shipped:?} beats winner {winner:?}"
        );
    }
}
