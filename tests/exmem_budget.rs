//! The equivalence gate for the anytime EX-MEM refactor.
//!
//! Two claims are pinned:
//!
//! 1. **Unbounded is exact and unchanged.** With an unbounded
//!    [`SearchBudget`] the memo-reusing EX-MEM is bit-identical — across
//!    whole online runs — to the pre-refactor per-activation search
//!    (reproduced by `ExMem::without_memo_reuse()`): the memo only ever
//!    replays *exact* optima, so reuse is behaviour-preserving, and the
//!    seed-scenario optima still come out to the paper's values.
//! 2. **Bounded is deterministic and feasible.** A budgeted run completes
//!    streams whose bursts stack more concurrent jobs than the
//!    exhaustive search can finish online, is reproducible bit for bit,
//!    never misses a deadline, and never does worse than the MMKP-MDF
//!    incumbent it degrades to.

use amrm::baselines::ExMem;
use amrm::core::{
    Immediate, MmkpMdf, ReactivationPolicy, Scheduler, SchedulingContext, SearchBudget,
};
use amrm::model::AppRef;
use amrm::sim::{run_scenario, SimOutcome, Simulation};
use amrm::workload::{bursty_window_stream, poisson_stream, scenarios, StreamSpec};
use proptest::prelude::*;

fn library() -> Vec<AppRef> {
    vec![scenarios::lambda1(), scenarios::lambda2()]
}

fn assert_bit_identical(label: &str, a: &SimOutcome, b: &SimOutcome) {
    assert_eq!(a.admissions, b.admissions, "{label}: admissions diverged");
    assert_eq!(
        a.total_energy.to_bits(),
        b.total_energy.to_bits(),
        "{label}: energy diverged ({} vs {})",
        a.total_energy,
        b.total_energy
    );
    assert_eq!(
        a.end_time.to_bits(),
        b.end_time.to_bits(),
        "{label}: end time diverged"
    );
    assert_eq!(a.stats, b.stats, "{label}: counters diverged");
    assert_eq!(a.trace, b.trace, "{label}: executed trace diverged");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Memo reuse across activations changes nothing under an unbounded
    /// budget: every memo hit replays an exact optimum, so a whole online
    /// run is bit-identical to the fresh-table-per-activation search the
    /// pre-refactor EX-MEM performed.
    #[test]
    fn unbounded_memo_reuse_is_bit_identical_to_fresh_search(
        seed in 0u64..1000,
        mean in 2.0f64..8.0,
        requests in 6usize..12,
    ) {
        let spec = StreamSpec { requests, slack_range: (1.2, 2.5) };
        let stream = poisson_stream(&library(), mean, &spec, seed);
        let reusing = run_scenario(
            scenarios::platform(),
            ExMem::new(),
            ReactivationPolicy::OnArrival,
            &stream,
        );
        let fresh = run_scenario(
            scenarios::platform(),
            ExMem::new().without_memo_reuse(),
            ReactivationPolicy::OnArrival,
            &stream,
        );
        assert_bit_identical("memo reuse", &reusing, &fresh);
    }

    /// A budgeted online run is deterministic: identical budgets on
    /// identical seeds reproduce admissions, energy bits and traces —
    /// the budget counts search work, never wall-clock.
    #[test]
    fn budgeted_runs_are_deterministic_per_seed(
        seed in 0u64..1000,
        requests in 8usize..16,
        limit in 200u64..5000,
    ) {
        let spec = StreamSpec { requests, slack_range: (1.3, 2.6) };
        let stream = bursty_window_stream(&library(), 0.8, 6.0, 12.0, &spec, seed);
        let run = || {
            Simulation::new(
                scenarios::platform(),
                ExMem::new(),
                ReactivationPolicy::OnArrival,
                Immediate,
                &stream,
            )
            .with_search_budget(SearchBudget::nodes(limit))
            .run()
        };
        let first = run();
        let second = run();
        assert_bit_identical("budgeted determinism", &first, &second);
        assert_eq!(first.stats.deadline_misses, 0);
    }

    /// Under any budget the anytime EX-MEM admits at least as much as
    /// MMKP-MDF at the same decision points would never be guaranteed —
    /// but each individual activation never returns a schedule *worse*
    /// than the MDF incumbent, so total energy per accepted job stays
    /// bounded and no admitted deadline is ever missed.
    #[test]
    fn budgeted_runs_never_miss_deadlines(
        seed in 0u64..1000,
        limit in 50u64..2000,
    ) {
        let spec = StreamSpec { requests: 12, slack_range: (1.3, 2.8) };
        let stream = poisson_stream(&library(), 1.5, &spec, seed);
        let outcome = Simulation::new(
            scenarios::platform(),
            ExMem::new(),
            ReactivationPolicy::OnArrival,
            Immediate,
            &stream,
        )
        .with_search_budget(SearchBudget::nodes(limit))
        .run();
        assert_eq!(outcome.stats.deadline_misses, 0);
        assert_eq!(outcome.stats.completed, outcome.accepted());
    }
}

#[test]
fn unbounded_budget_reproduces_the_seed_scenario_optima() {
    // The paper's motivational optima, unchanged by the anytime refactor.
    let platform = scenarios::platform();
    let rho1 = 1.0 - 1.0 / 5.3;
    for jobs in [scenarios::s1_jobs_at_t1(), scenarios::s2_jobs_at_t1()] {
        let mut ex = ExMem::new();
        let schedule = ex.schedule_at(&jobs, &platform, 1.0).expect("feasible");
        schedule.validate(&jobs, &platform, 1.0).unwrap();
        assert!(
            (schedule.energy(&jobs) - (5.73 + 8.9 * rho1)).abs() < 1e-6,
            "seed-scenario optimum changed: {}",
            schedule.energy(&jobs)
        );
        assert!(!ex.last_degraded());
    }
    let mut ex = ExMem::new();
    let jobs = scenarios::s1_jobs_at_t1();
    let ctx = SchedulingContext::at(1.0).with_budget(SearchBudget::unbounded());
    let via_ctx = ex.schedule(&jobs, &platform, &ctx).unwrap();
    let via_at = ExMem::new().schedule_at(&jobs, &platform, 1.0).unwrap();
    assert_eq!(via_ctx, via_at);
}

#[test]
fn online_budget_completes_a_burst_the_exhaustive_search_cannot() {
    // A dense burst stacks far more concurrent jobs than EX-MEM's
    // exponential joint enumeration finishes online — the reason the old
    // grid excluded it from the bursty stream. The online budget caps
    // every activation, the search degrades to best-found-so-far (or the
    // MDF incumbent) and the whole stream completes in bounded work.
    let lib = library();
    let spec = StreamSpec {
        requests: 20,
        slack_range: (2.0, 3.5),
    };
    let stream = bursty_window_stream(&lib, 0.4, 6.0, 8.0, &spec, 2020);
    let (outcome, ex) = Simulation::new(
        scenarios::platform(),
        ExMem::new(),
        ReactivationPolicy::OnArrival,
        Immediate,
        &stream,
    )
    .with_search_budget(SearchBudget::online())
    .run_with_scheduler();
    assert_eq!(outcome.admissions.len(), 20);
    assert_eq!(outcome.stats.deadline_misses, 0);
    assert!(outcome.accepted() > 0, "budgeted EX-MEM admitted nothing");
    // The budget must actually have bitten somewhere in the bursts.
    assert!(
        ex.nodes_explored() <= SearchBudget::ONLINE_WORK_UNITS,
        "an activation exceeded the online budget: {}",
        ex.nodes_explored()
    );
}

#[test]
fn budgeted_exmem_matches_mdf_acceptance_or_better_on_a_seeded_stream() {
    // The MDF fallback guarantees a budgeted activation never *rejects*
    // a request MDF would admit: acceptance can only match or beat the
    // heuristic run at the same decision points.
    let lib = library();
    let spec = StreamSpec {
        requests: 25,
        slack_range: (1.4, 2.8),
    };
    let stream = poisson_stream(&lib, 2.0, &spec, 2020);
    let mdf = run_scenario(
        scenarios::platform(),
        MmkpMdf::new(),
        ReactivationPolicy::OnArrival,
        &stream,
    );
    let budgeted = Simulation::new(
        scenarios::platform(),
        ExMem::new(),
        ReactivationPolicy::OnArrival,
        Immediate,
        &stream,
    )
    .with_search_budget(SearchBudget::online())
    .run();
    assert!(
        budgeted.accepted() >= mdf.accepted(),
        "budgeted EX-MEM ({}) fell below its MDF fallback ({})",
        budgeted.accepted(),
        mdf.accepted()
    );
}
