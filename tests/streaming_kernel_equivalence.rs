//! The equivalence gate for the streaming (lazy-arrival) kernel path.
//!
//! `Simulation::from_stream` pulls arrivals one ahead of the clock from a
//! lazy iterator instead of materializing the whole request vector. That
//! path must be *bit-identical* to `Simulation::new` over the collected
//! stream — admissions, accumulated energy (raw f64 bits), end time,
//! counters, drops and the executed trace — for **every** scheduler in
//! the standard registry, under the online search budget the profile
//! harness uses. The lean (`without_trace`) builder must change only the
//! bulk outcome fields, never a decision.

use amrm::baselines::standard_registry;
use amrm::core::{Immediate, ReactivationPolicy, SearchBudget};
use amrm::model::AppRef;
use amrm::sim::{SimOutcome, Simulation};
use amrm::workload::{scenarios, ArrivalStream, ScenarioRequest, StreamSpec};

fn library() -> Vec<AppRef> {
    vec![scenarios::lambda1(), scenarios::lambda2()]
}

fn spec() -> StreamSpec {
    StreamSpec {
        requests: 50,
        slack_range: (1.2, 2.5),
    }
}

fn diurnal(seed: u64) -> ArrivalStream {
    ArrivalStream::diurnal(&library(), 2.0, 3.0, 60.0, &spec(), seed)
}

fn materialized_outcome(name: &str, stream: &[ScenarioRequest]) -> SimOutcome {
    let registry = standard_registry();
    Simulation::new(
        scenarios::platform(),
        registry.create(name).unwrap(),
        ReactivationPolicy::OnArrival,
        Immediate,
        stream,
    )
    .with_search_budget(SearchBudget::online())
    .run()
}

fn streamed_outcome(name: &str, seed: u64, lean: bool) -> SimOutcome {
    let registry = standard_registry();
    let sim = Simulation::from_stream(
        scenarios::platform(),
        registry.create(name).unwrap(),
        ReactivationPolicy::OnArrival,
        Immediate,
        diurnal(seed),
    )
    .with_search_budget(SearchBudget::online());
    if lean { sim.without_trace() } else { sim }.run()
}

/// Full-outcome equality modulo the `decision_seconds_*` telemetry
/// percentiles, which sample real wall-clock scheduler time.
fn assert_bit_identical(name: &str, seed: u64, streamed: &SimOutcome, reference: &SimOutcome) {
    assert_eq!(
        streamed.admissions, reference.admissions,
        "{name}/seed {seed}: admissions diverged"
    );
    assert_eq!(
        streamed.total_energy.to_bits(),
        reference.total_energy.to_bits(),
        "{name}/seed {seed}: energy diverged ({} vs {})",
        streamed.total_energy,
        reference.total_energy
    );
    assert_eq!(
        streamed.end_time.to_bits(),
        reference.end_time.to_bits(),
        "{name}/seed {seed}: end time diverged"
    );
    assert_eq!(
        streamed.stats, reference.stats,
        "{name}/seed {seed}: counters diverged"
    );
    assert_eq!(
        streamed.queue_deadline_drops, reference.queue_deadline_drops,
        "{name}/seed {seed}: drops diverged"
    );
    let mut a = streamed.telemetry.clone();
    let mut b = reference.telemetry.clone();
    a.decision_seconds_p50 = 0.0;
    a.decision_seconds_p95 = 0.0;
    a.decision_seconds_p99 = 0.0;
    a.decision_seconds_hist = Default::default();
    b.decision_seconds_p50 = 0.0;
    b.decision_seconds_p95 = 0.0;
    b.decision_seconds_p99 = 0.0;
    b.decision_seconds_hist = Default::default();
    assert_eq!(a, b, "{name}/seed {seed}: telemetry diverged");
}

#[test]
fn lazy_kernel_is_bit_identical_for_every_registry_scheduler() {
    let registry = standard_registry();
    for seed in [7u64, 23, 404] {
        let stream: Vec<ScenarioRequest> = diurnal(seed).collect();
        for (name, _) in registry.iter() {
            let reference = materialized_outcome(name, &stream);
            let streamed = streamed_outcome(name, seed, false);
            assert_bit_identical(name, seed, &streamed, &reference);
            assert_eq!(
                streamed.trace, reference.trace,
                "{name}/seed {seed}: executed trace diverged"
            );
        }
    }
}

#[test]
fn lean_mode_preserves_every_decision() {
    let registry = standard_registry();
    let seed = 23u64;
    let stream: Vec<ScenarioRequest> = diurnal(seed).collect();
    for (name, _) in registry.iter() {
        let reference = materialized_outcome(name, &stream);
        let lean = streamed_outcome(name, seed, true);
        assert_bit_identical(name, seed, &lean, &reference);
        // Lean mode skips only the bulk per-job outcome state.
        assert!(lean.admitted_jobs.is_empty());
    }
}
