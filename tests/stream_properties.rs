//! Property tests for the request-stream generators: arrival monotonicity,
//! the deadline-slack contract, and per-seed determinism — including the
//! degenerate slack range (`lo == hi`) that used to panic.

use amrm::model::AppRef;
use amrm::workload::{bursty_stream, periodic_stream, poisson_stream, scenarios, StreamSpec};
use proptest::prelude::*;

fn library() -> Vec<AppRef> {
    vec![scenarios::lambda1(), scenarios::lambda2()]
}

/// Strategy for a valid spec: 1–40 requests, slack lower bound in
/// [0.5, 2.5], and a width in [0, 2] — width 0 pins the slack.
fn spec_strategy() -> impl Strategy<Value = StreamSpec> {
    (1usize..=40, 0.5f64..=2.5, 0.0f64..=2.0).prop_map(|(requests, lo, width)| StreamSpec {
        requests,
        slack_range: (lo, lo + width),
    })
}

fn assert_stream_contract(stream: &[amrm::workload::ScenarioRequest], spec: &StreamSpec) {
    assert_eq!(stream.len(), spec.requests);
    // Arrivals are non-decreasing.
    for w in stream.windows(2) {
        assert!(
            w[0].arrival <= w[1].arrival + 1e-12,
            "arrivals regressed: {} then {}",
            w[0].arrival,
            w[1].arrival
        );
    }
    // Every deadline honours the minimum slack over the fastest point.
    let (lo, hi) = spec.slack_range;
    for r in stream {
        let min_gap = r.app.min_time() * lo;
        let max_gap = r.app.min_time() * hi;
        let gap = r.deadline - r.arrival;
        assert!(
            gap >= min_gap - 1e-9,
            "deadline gap {gap} below minimum {min_gap}"
        );
        assert!(
            gap <= max_gap + 1e-9,
            "deadline gap {gap} above maximum {max_gap}"
        );
    }
}

fn assert_same_stream(
    a: &[amrm::workload::ScenarioRequest],
    b: &[amrm::workload::ScenarioRequest],
) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.app.name(), y.app.name());
        assert!((x.arrival - y.arrival).abs() < 1e-12);
        assert!((x.deadline - y.deadline).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn poisson_streams_honour_the_contract(
        spec in spec_strategy(),
        mean in 0.1f64..=10.0,
        seed in 0u64..1000,
    ) {
        let stream = poisson_stream(&library(), mean, &spec, seed);
        assert_stream_contract(&stream, &spec);
        assert_same_stream(&stream, &poisson_stream(&library(), mean, &spec, seed));
    }

    #[test]
    fn periodic_streams_honour_the_contract(
        spec in spec_strategy(),
        period in 0.1f64..=10.0,
        seed in 0u64..1000,
    ) {
        let stream = periodic_stream(&library(), period, &spec, seed);
        assert_stream_contract(&stream, &spec);
        // Periodic arrivals are exactly i × period.
        for (i, r) in stream.iter().enumerate() {
            prop_assert!((r.arrival - i as f64 * period).abs() < 1e-9);
        }
        assert_same_stream(&stream, &periodic_stream(&library(), period, &spec, seed));
    }

    #[test]
    fn bursty_streams_honour_the_contract(
        spec in spec_strategy(),
        burst_len in 1usize..=5,
        intra in 0.0f64..=1.0,
        inter in 0.0f64..=20.0,
    ) {
        let stream = bursty_stream(&library(), burst_len, intra, inter, &spec, 7);
        assert_stream_contract(&stream, &spec);
        assert_same_stream(
            &stream,
            &bursty_stream(&library(), burst_len, intra, inter, &spec, 7),
        );
    }

    #[test]
    fn different_seeds_usually_differ(spec in spec_strategy(), seed in 0u64..1000) {
        // Not a hard guarantee for 1-request streams of a pinned-slack
        // spec, so only check when there is room for variation.
        if spec.requests >= 5 {
            let a = poisson_stream(&library(), 2.0, &spec, seed);
            let b = poisson_stream(&library(), 2.0, &spec, seed.wrapping_add(1));
            let differs = a
                .iter()
                .zip(&b)
                .any(|(x, y)| (x.arrival - y.arrival).abs() > 1e-12);
            prop_assert!(differs, "seeds {seed} and {} collided", seed.wrapping_add(1));
        }
    }
}
