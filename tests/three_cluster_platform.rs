//! The system model is parametric in the number of resource types `m`;
//! nothing in the stack may assume the big.LITTLE m = 2. These tests run
//! the full pipeline on a three-cluster platform.

use amrm::baselines::{ExMem, MmkpLr};
use amrm::core::{MmkpMdf, Scheduler};
use amrm::dataflow::{apps, characterize, CharacterizeConfig};
use amrm::model::{Job, JobId, JobSet};
use amrm::platform::{CoreType, PlatformBuilder};

fn three_cluster() -> amrm::platform::Platform {
    PlatformBuilder::new("tri-cluster")
        .cluster(CoreType::new("eff", 1.0e9, 1.0, 0.15, 0.02), 4)
        .cluster(CoreType::new("mid", 1.8e9, 1.2, 0.70, 0.07), 3)
        .cluster(CoreType::new("perf", 2.6e9, 1.5, 2.20, 0.20), 1)
        .build()
}

#[test]
fn characterization_produces_m3_tables() {
    let platform = three_cluster();
    let app = characterize(
        &apps::pedestrian_recognition(),
        &platform,
        &CharacterizeConfig::default(),
    );
    assert!(app.is_pareto_filtered());
    assert!(app.num_points() >= 4);
    for p in app.points() {
        assert_eq!(p.resources().num_types(), 3);
    }
}

#[test]
fn schedulers_handle_three_resource_types() {
    let platform = three_cluster();
    let cfg = CharacterizeConfig::default();
    let a = characterize(&apps::audio_filter(), &platform, &cfg);
    let b = characterize(&apps::speaker_recognition(), &platform, &cfg);

    // Weak deadlines (factor ≥ 2 on the *slowest* point would be the
    // paper's "weak" class; ×5/×4 of the fastest is comfortably feasible).
    let jobs = JobSet::new(vec![
        Job::new(JobId(1), a.clone(), 0.0, a.min_time() * 5.0, 1.0),
        Job::new(JobId(2), b.clone(), 0.0, b.min_time() * 4.0, 1.0),
    ]);

    for mut s in [
        Box::new(MmkpMdf::new()) as Box<dyn Scheduler>,
        Box::new(MmkpLr::new()),
        Box::new(ExMem::new()),
    ] {
        let schedule = s
            .schedule_at(&jobs, &platform, 0.0)
            .unwrap_or_else(|| panic!("{} failed on m=3", s.name()));
        schedule
            .validate(&jobs, &platform, 0.0)
            .unwrap_or_else(|e| panic!("{} invalid on m=3: {e}", s.name()));
    }
}

#[test]
fn exmem_still_dominates_on_m3() {
    let platform = three_cluster();
    let cfg = CharacterizeConfig::default();
    let a = characterize(&apps::pedestrian_recognition(), &platform, &cfg);
    let jobs = JobSet::new(vec![
        Job::new(JobId(1), a.clone(), 0.0, a.min_time() * 4.0, 1.0),
        Job::new(JobId(2), a.clone(), 0.0, a.min_time() * 2.5, 0.7),
    ]);
    let opt = ExMem::new().schedule_at(&jobs, &platform, 0.0).unwrap();
    let heur = MmkpMdf::new().schedule_at(&jobs, &platform, 0.0).unwrap();
    assert!(opt.energy(&jobs) <= heur.energy(&jobs) + 1e-6);
}
