//! Property-based tests: every scheduler must emit schedules satisfying
//! the paper's constraints (2b)–(2e) on arbitrary instances, EX-MEM must
//! never be beaten, and it must schedule whatever the heuristics schedule.

use amrm::baselines::{ExMem, FixedMapper, MmkpLr};
use amrm::core::{MmkpMdf, Scheduler};
use amrm::model::{Job, JobId, JobSet};
use amrm::workload::scenarios;
use proptest::prelude::*;

/// Strategy: a job over λ1/λ2 with arbitrary progress and a deadline set
/// like the paper's generator (remaining time of a random point × factor).
fn job_strategy(id: u64) -> impl Strategy<Value = Job> {
    (prop::bool::ANY, 0.1f64..=1.0, 0usize..8, 0.6f64..4.0).prop_map(
        move |(first_app, remaining, cfg, factor)| {
            let app = if first_app {
                scenarios::lambda1()
            } else {
                scenarios::lambda2()
            };
            let deadline = app.point(cfg).time() * remaining * factor;
            Job::new(JobId(id), app, 0.0, deadline, remaining)
        },
    )
}

fn jobset_strategy() -> impl Strategy<Value = JobSet> {
    prop::collection::vec(prop::bool::ANY, 1..=3).prop_flat_map(|picks| {
        let strategies: Vec<_> = picks
            .iter()
            .enumerate()
            .map(|(i, _)| job_strategy(i as u64 + 1))
            .collect();
        strategies.prop_map(JobSet::new)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn schedules_always_satisfy_constraints(jobs in jobset_strategy()) {
        let platform = scenarios::platform();
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(MmkpMdf::new()),
            Box::new(MmkpLr::new()),
            Box::new(FixedMapper::new()),
            Box::new(ExMem::new()),
        ];
        for mut s in schedulers {
            if let Some(schedule) = s.schedule_at(&jobs, &platform, 0.0) {
                prop_assert!(
                    schedule.validate(&jobs, &platform, 0.0).is_ok(),
                    "{} violated constraints: {:?}",
                    s.name(),
                    schedule.validate(&jobs, &platform, 0.0)
                );
            }
        }
    }

    #[test]
    fn exmem_dominates_heuristics(jobs in jobset_strategy()) {
        let platform = scenarios::platform();
        let optimal = ExMem::new().schedule_at(&jobs, &platform, 0.0);
        for mut s in [
            Box::new(MmkpMdf::new()) as Box<dyn Scheduler>,
            Box::new(MmkpLr::new()),
            Box::new(FixedMapper::new()),
        ] {
            if let Some(schedule) = s.schedule_at(&jobs, &platform, 0.0) {
                // (a) EX-MEM schedules whatever any heuristic schedules.
                let opt = optimal.as_ref();
                prop_assert!(opt.is_some(), "EX-MEM missed a case {} solved", s.name());
                // (b) and never with more energy.
                prop_assert!(
                    opt.unwrap().energy(&jobs) <= schedule.energy(&jobs) + 1e-6,
                    "{} beat EX-MEM: {} < {}",
                    s.name(),
                    schedule.energy(&jobs),
                    opt.unwrap().energy(&jobs)
                );
            }
        }
    }

    #[test]
    fn mdf_energy_is_deterministic(jobs in jobset_strategy()) {
        let platform = scenarios::platform();
        let a = MmkpMdf::new().schedule_at(&jobs, &platform, 0.0);
        let b = MmkpMdf::new().schedule_at(&jobs, &platform, 0.0);
        match (a, b) {
            (Some(x), Some(y)) => {
                prop_assert!((x.energy(&jobs) - y.energy(&jobs)).abs() < 1e-12);
            }
            (None, None) => {}
            _ => prop_assert!(false, "feasibility must be deterministic"),
        }
    }

    #[test]
    fn fixed_never_beats_adaptive(jobs in jobset_strategy()) {
        // The fixed mapper explores a strict subset of the adaptive search
        // space, so MDF admitting less energy is impossible to violate by
        // more than the heuristic gap; what MUST hold is that EX-MEM ≤
        // fixed on every instance both solve (checked above) and that a
        // fixed-feasible case is adaptive-feasible.
        let platform = scenarios::platform();
        if FixedMapper::new().schedule_at(&jobs, &platform, 0.0).is_some() {
            prop_assert!(
                ExMem::new().schedule_at(&jobs, &platform, 0.0).is_some(),
                "fixed-feasible instance must be adaptively feasible"
            );
        }
    }
}

#[test]
fn progress_accounting_respects_2d_on_reconfigured_jobs() {
    // A job that gets different points across segments still sums its
    // progress to exactly ρ (validated by constraint 2d inside validate).
    let platform = scenarios::platform();
    let jobs = JobSet::new(vec![
        Job::new(JobId(1), scenarios::lambda1(), 0.0, 9.0, 1.0 - 1.0 / 5.3),
        Job::new(JobId(2), scenarios::lambda2(), 0.0, 4.0, 1.0),
    ]);
    let schedule = ExMem::new().schedule_at(&jobs, &platform, 1.0).unwrap();
    schedule.validate(&jobs, &platform, 1.0).unwrap();
    for job in jobs.iter() {
        let p = schedule.progress_of(job.id(), &jobs);
        assert!((p - job.remaining()).abs() < 1e-6);
    }
}
