//! Integration of the full design-time → workload → runtime pipeline:
//! dataflow characterization feeds the Table III generator, whose cases are
//! scheduled, validated, and round-tripped through JSON.

use amrm::baselines::MmkpLr;
use amrm::core::{MmkpMdf, Scheduler};
use amrm::dataflow::apps;
use amrm::platform::Platform;
use amrm::workload::{generate_suite, load_suite, save_suite, tabulate, SuiteSpec};

fn small_spec() -> SuiteSpec {
    SuiteSpec {
        weak_counts: [2, 6, 6, 4],
        tight_counts: [2, 8, 8, 4],
        ..SuiteSpec::default()
    }
}

#[test]
fn characterized_library_feeds_valid_schedulable_cases() {
    let platform = Platform::odroid_xu4();
    let library = apps::benchmark_suite(&platform);
    assert_eq!(library.len(), 9);
    let suite = generate_suite(&library, &small_spec(), 11);

    let mut scheduled = 0;
    for case in &suite {
        let jobs = case.to_job_set();
        for mut s in [
            Box::new(MmkpMdf::new()) as Box<dyn Scheduler>,
            Box::new(MmkpLr::new()),
        ] {
            if let Some(schedule) = s.schedule_at(&jobs, &platform, 0.0) {
                schedule
                    .validate(&jobs, &platform, 0.0)
                    .unwrap_or_else(|e| panic!("{} invalid on case {}: {e}", s.name(), case.id));
                scheduled += 1;
            }
        }
    }
    // Weak-deadline cases are overwhelmingly schedulable; something must
    // succeed or the pipeline is broken.
    assert!(scheduled > suite.len() / 2, "only {scheduled} schedules");
}

#[test]
fn weak_deadline_cases_are_all_mdf_schedulable() {
    // The paper: "all algorithms scheduled 100% of the test cases with
    // weak deadlines" — MDF must reproduce that on the real library.
    let platform = Platform::odroid_xu4();
    let library = apps::benchmark_suite(&platform);
    let spec = SuiteSpec {
        weak_counts: [3, 10, 10, 8],
        tight_counts: [0, 0, 0, 0],
        ..SuiteSpec::default()
    };
    let suite = generate_suite(&library, &spec, 4);
    for case in &suite {
        let jobs = case.to_job_set();
        assert!(
            MmkpMdf::new().schedule_at(&jobs, &platform, 0.0).is_some(),
            "weak case {} rejected",
            case.id
        );
    }
}

#[test]
fn suite_roundtrips_through_json_with_schedulable_outcomes() {
    let platform = Platform::odroid_xu4();
    let library = apps::benchmark_suite(&platform);
    let suite = generate_suite(&library, &small_spec(), 23);

    let path = std::env::temp_dir().join("amrm_pipeline_suite.json");
    save_suite(&path, &suite).unwrap();
    let restored = load_suite(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    assert_eq!(tabulate(&suite), tabulate(&restored));
    for (a, b) in suite.iter().zip(&restored) {
        let ja = a.to_job_set();
        let jb = b.to_job_set();
        let sa = MmkpMdf::new().schedule_at(&ja, &platform, 0.0);
        let sb = MmkpMdf::new().schedule_at(&jb, &platform, 0.0);
        match (sa, sb) {
            (Some(x), Some(y)) => {
                assert!((x.energy(&ja) - y.energy(&jb)).abs() < 1e-9);
            }
            (None, None) => {}
            _ => panic!("restored case {} changed feasibility", a.id),
        }
    }
}

#[test]
fn generator_respects_paper_counts_at_full_scale() {
    let platform = Platform::odroid_xu4();
    let library = apps::benchmark_suite(&platform);
    let suite = generate_suite(&library, &SuiteSpec::default(), 2020);
    assert_eq!(suite.len(), 1676);
    let tab = tabulate(&suite);
    assert_eq!(tab[0].1, [15, 255, 255, 230]);
    assert_eq!(tab[1].1, [35, 340, 340, 206]);
    // Fractions land near the paper's 31.9% / 22.6%.
    let singles = suite.iter().filter(|c| c.is_single_app()).count() as f64 / 1676.0;
    let initials = suite.iter().filter(|c| c.is_all_initial()).count() as f64 / 1676.0;
    assert!(
        (singles - 0.319).abs() < 0.08,
        "single-app fraction {singles}"
    );
    assert!(
        (initials - 0.226).abs() < 0.08,
        "all-initial fraction {initials}"
    );
}
