//! Integration of the executed-trace recording with schedule analysis:
//! the mechanics of Fig. 1(c) — one suspension, no reconfiguration — are
//! recovered from a live RuntimeManager run.

use amrm::core::{MmkpMdf, ReactivationPolicy};
use amrm::model::analyze_schedule;
use amrm::sim::run_scenario;
use amrm::workload::scenarios;

#[test]
fn adaptive_trace_shows_one_suspension_and_no_reconfiguration() {
    let platform = scenarios::platform();
    let outcome = run_scenario(
        platform.clone(),
        MmkpMdf::new(),
        ReactivationPolicy::OnArrival,
        &scenarios::scenario_s1(),
    );
    let stats = analyze_schedule(&outcome.trace, &outcome.admitted_jobs, &platform);

    // σ1 runs [0,1), is suspended during [1,4), resumes [4,8.3).
    let sigma1 = &stats.jobs[0];
    assert_eq!(sigma1.suspensions, 1);
    assert_eq!(sigma1.reconfigurations, 0);
    assert!((sigma1.running_time - 5.3).abs() < 1e-6);

    // σ2 runs once, uninterrupted.
    let sigma2 = &stats.jobs[1];
    assert_eq!(sigma2.suspensions, 0);
    assert_eq!(sigma2.segments, 1);
}

#[test]
fn fixed_trace_has_no_suspensions_but_wastes_energy() {
    let platform = scenarios::platform();
    let fixed = run_scenario(
        platform.clone(),
        amrm::baselines::FixedMapper::new(),
        ReactivationPolicy::OnArrival,
        &scenarios::scenario_s1(),
    );
    let stats = analyze_schedule(&fixed.trace, &fixed.admitted_jobs, &platform);
    assert_eq!(stats.total_suspensions(), 0);
    // The fixed mapping reconfigures σ1 once: at σ2's arrival the RM
    // re-activates and moves σ1 from 2L1B to 1L1B.
    assert_eq!(stats.jobs[0].reconfigurations, 1);
    assert!(fixed.total_energy > 16.9);
}

#[test]
fn utilization_is_higher_for_the_adaptive_schedule_while_running() {
    let platform = scenarios::platform();
    let adaptive = run_scenario(
        platform.clone(),
        MmkpMdf::new(),
        ReactivationPolicy::OnArrival,
        &scenarios::scenario_s1(),
    );
    let stats = analyze_schedule(&adaptive.trace, &adaptive.admitted_jobs, &platform);
    // 2L1B throughout: both little cores always busy.
    assert!(stats.utilization[0] > 0.99);
    assert_eq!(stats.peak_busy_cores, 3);
}
