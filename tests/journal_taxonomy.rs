//! Reject-reason taxonomy coverage: one scenario per [`RejectReason`],
//! each asserting that the journal's per-reason tallies match the
//! [`SimOutcome`] accounting bit for bit — same rejects, same admits,
//! same queue-deadline drops, with the reason attributed to the right
//! taxonomy bucket.

use amrm::core::{AdmissionPolicy, BatchK, Immediate, MmkpMdf, ReactivationPolicy, WindowTau};
use amrm::metrics::journal::{EventKind, JournalConfig, RejectReason};
use amrm::metrics::Journal;
use amrm::sim::{SimOutcome, Simulation};
use amrm::workload::{scenarios, ScenarioRequest};

fn journaled<A: AdmissionPolicy>(admission: A, requests: Vec<ScenarioRequest>) -> SimOutcome {
    Simulation::new(
        scenarios::platform(),
        MmkpMdf::new(),
        ReactivationPolicy::OnArrival,
        admission,
        &requests,
    )
    .with_journal(JournalConfig::default())
    .run()
}

/// The journal's decision tallies must mirror the outcome's accounting
/// exactly: every admit and reject journaled, reasons summing to the
/// reject count.
fn assert_accounting_matches(outcome: &SimOutcome) -> Journal {
    let journal = outcome.journal.clone().expect("journal enabled");
    assert_eq!(
        journal.count_of(EventKind::Admit),
        outcome.accepted() as u64
    );
    assert_eq!(
        journal.count_of(EventKind::Reject),
        outcome.rejected() as u64
    );
    assert_eq!(
        journal.reject_reasons().iter().sum::<u64>(),
        outcome.rejected() as u64
    );
    assert_eq!(
        journal.rejects_for(RejectReason::QueueDeadline),
        outcome.queue_deadline_drops as u64
    );
    journal.validate_lifecycles().expect("complete lifecycles");
    journal
}

#[test]
fn queue_deadline_drops_journal_as_queue_deadline() {
    // A 50-second gathering window outlives both S1 deadlines: the
    // kernel drops each request from the queue at its deadline through
    // the pseudo-flush, and no scheduler activation ever runs.
    let outcome = journaled(WindowTau(50.0), scenarios::scenario_s1());
    assert_eq!(outcome.accepted(), 0);
    assert_eq!(outcome.rejected(), 2);
    assert_eq!(outcome.queue_deadline_drops, 2);
    let journal = assert_accounting_matches(&outcome);
    assert_eq!(journal.rejects_for(RejectReason::QueueDeadline), 2);
    // The pseudo-flush never reaches the scheduler: no flush or decision
    // events, only the lifecycle bookends.
    assert_eq!(journal.count_of(EventKind::Flush), 0);
    assert_eq!(journal.count_of(EventKind::ScheduleDecision), 0);
}

#[test]
fn expired_in_batch_journals_as_expired_before_flush() {
    // The second arrival lands exactly at the first request's deadline
    // and completes the size-2 batch. Arrival events outrank
    // queue-deadline events at the same instant, so the flush — not the
    // deadline drop — consumes the first request, and the manager
    // rejects its zero-slack deadline without an activation.
    let requests = vec![
        ScenarioRequest {
            app: scenarios::lambda2(),
            arrival: 0.0,
            deadline: 3.0,
        },
        ScenarioRequest {
            app: scenarios::lambda1(),
            arrival: 3.0,
            deadline: 12.0,
        },
    ];
    let outcome = journaled(BatchK(2), requests);
    assert_eq!(outcome.accepted(), 1);
    assert_eq!(outcome.rejected(), 1);
    assert_eq!(outcome.queue_deadline_drops, 0);
    let journal = assert_accounting_matches(&outcome);
    assert_eq!(journal.rejects_for(RejectReason::ExpiredBeforeFlush), 1);
}

#[test]
fn lone_infeasible_candidate_journals_as_infeasible_joint_schedule() {
    // One request with positive slack that no operating point can meet:
    // the scheduler activates, finds nothing, and the batch of one is
    // rejected as an infeasible joint schedule.
    let requests = vec![ScenarioRequest {
        app: scenarios::lambda1(),
        arrival: 0.0,
        deadline: 0.5,
    }];
    let outcome = journaled(Immediate, requests);
    assert_eq!(outcome.accepted(), 0);
    assert_eq!(outcome.rejected(), 1);
    let journal = assert_accounting_matches(&outcome);
    assert_eq!(
        journal.rejects_for(RejectReason::InfeasibleJointSchedule),
        1
    );
    // The failed activation installs no schedule, so there is no
    // `schedule_decision` (that event carries the chosen schedule's
    // energy) — just the flush and the reject.
    assert_eq!(journal.count_of(EventKind::ScheduleDecision), 0);
    assert_eq!(journal.count_of(EventKind::Flush), 1);
}

#[test]
fn greedy_rollback_journals_as_rollback_victim() {
    // Two copies of the expensive app share one batch under a deadline
    // each could meet alone but not jointly: the atomic batch fails, the
    // greedy retry admits the first and rolls the second back.
    let requests = vec![
        ScenarioRequest {
            app: scenarios::lambda1(),
            arrival: 0.0,
            deadline: 6.0,
        },
        ScenarioRequest {
            app: scenarios::lambda1(),
            arrival: 0.5,
            deadline: 6.0,
        },
    ];
    let outcome = journaled(BatchK(2), requests);
    assert_eq!(outcome.accepted(), 1, "first copy must fit alone");
    assert_eq!(outcome.rejected(), 1);
    assert_eq!(outcome.queue_deadline_drops, 0);
    let journal = assert_accounting_matches(&outcome);
    assert_eq!(journal.rejects_for(RejectReason::RollbackVictim), 1);
}
