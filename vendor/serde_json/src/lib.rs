//! Offline stub of `serde_json`: JSON text encoding/decoding of the
//! `serde` stub's [`Value`].
//!
//! Mirrors upstream behaviour where the workspace depends on it, notably
//! writing non-finite floats as `null`.

use std::fmt;
use std::io::{Read, Write};

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Error raised by encoding, decoding, or the underlying I/O.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the value model of this stub; kept fallible for API
/// compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string.
///
/// # Errors
///
/// Never fails for the value model of this stub.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as JSON into `writer`.
///
/// # Errors
///
/// Returns any I/O error from `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serializes `value` as pretty-printed JSON into `writer`.
///
/// # Errors
///
/// Returns any I/O error from `writer`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse()?;
    Ok(T::from_value(&value)?)
}

/// Deserializes a value from a JSON reader.
///
/// # Errors
///
/// Returns I/O errors, malformed JSON, or a shape mismatch.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Keep integral floats distinguishable from ints on re-read.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, items.iter(), indent, level, ('[', ']'), |o, x, l| {
            write_value(o, x, indent, l)
        }),
        Value::Obj(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            level,
            ('{', '}'),
            |o, (k, x), l| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, l);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(brackets.0);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, level + 1);
    }
    if !empty {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'s> {
    chars: std::iter::Peekable<std::str::Chars<'s>>,
}

impl<'s> Parser<'s> {
    fn new(s: &'s str) -> Self {
        Parser {
            chars: s.chars().peekable(),
        }
    }

    fn parse(mut self) -> Result<Value, Error> {
        let v = self.value()?;
        self.skip_ws();
        if self.chars.peek().is_some() {
            return Err(Error::new("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), Error> {
        match self.chars.next() {
            Some(got) if got == c => Ok(()),
            got => Err(Error::new(format!("expected `{c}`, got {got:?}"))),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.chars.peek() {
            Some('n') => self.literal("null", Value::Null),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('"') => self.string().map(Value::Str),
            Some('[') => self.array(),
            Some('{') => self.object(),
            Some(c) if *c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!("unexpected character {other:?}"))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&']') {
            self.chars.next();
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.chars.next() {
                Some(',') => {}
                Some(']') => return Ok(Value::Arr(items)),
                got => return Err(Error::new(format!("expected `,` or `]`, got {got:?}"))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&'}') {
            self.chars.next();
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.chars.next() {
                Some(',') => {}
                Some('}') => return Ok(Value::Obj(fields)),
                got => return Err(Error::new(format!("expected `,` or `}}`, got {got:?}"))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some('"') => return Ok(out),
                Some('\\') => match self.chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .chars
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::new("bad \\u code point"))?,
                        );
                    }
                    got => return Err(Error::new(format!("bad escape {got:?}"))),
                },
                Some(c) => out.push(c),
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let mut text = String::new();
        while matches!(
            self.chars.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
        ) {
            text.push(self.chars.next().expect("peeked"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<i64>() {
                    return Ok(Value::Int(-n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_vec() {
        let v = vec![1.5f64, -2.0, 3.25];
        let json = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn nan_serializes_as_null_and_reads_back_as_nan() {
        let json = to_string(&f64::NAN).unwrap();
        assert_eq!(json, "null");
        let back: f64 = from_str(&json).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn strings_escape_and_keep_unicode() {
        let s = "λ1 \"quoted\"\nline".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u32, 2], vec![3]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn negative_ints_roundtrip() {
        let json = to_string(&-42i64).unwrap();
        assert_eq!(json, "-42");
        let back: i64 = from_str(&json).unwrap();
        assert_eq!(back, -42);
    }
}
