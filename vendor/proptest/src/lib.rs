//! Offline stub of `proptest`.
//!
//! Implements the slice of the API this workspace uses: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, strategies for bool, numeric
//! ranges, `prop::collection::vec`, tuples and `Vec<Strategy>`, plus the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header
//! and `prop_assert!`-style assertions.
//!
//! Cases are generated from a fresh entropy seed per test run; the seed is
//! printed on entry so failures can be reproduced by setting
//! `PROPTEST_STUB_SEED`. There is no shrinking: a failing case is reported
//! via its `Debug` rendering by the panicking assertion itself.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude;

/// Run-time configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted for compatibility; the stub never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// The test RNG handed to strategies.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner; honours `PROPTEST_STUB_SEED` when set.
    pub fn new(test_name: &str) -> Self {
        let rng = match std::env::var("PROPTEST_STUB_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            Some(seed) => {
                eprintln!("proptest stub: {test_name} replaying seed {seed}");
                StdRng::seed_from_u64(seed)
            }
            None => rand::entropy_rng(),
        };
        TestRunner { rng }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A recipe for generating random values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        (self.f)(self.inner.generate(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, runner: &mut TestRunner) -> S2::Value {
        let first = self.inner.generate(runner);
        (self.f)(first).generate(runner)
    }
}

/// A strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($range:ty => $value:ty),* $(,)?) => {$(
        impl Strategy for $range {
            type Value = $value;

            fn generate(&self, runner: &mut TestRunner) -> $value {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(
    Range<usize> => usize,
    RangeInclusive<usize> => usize,
    Range<u32> => u32,
    Range<u64> => u64,
    Range<i64> => i64,
    Range<f64> => f64,
    RangeInclusive<f64> => f64,
);

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(runner)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// A fair coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical fair-coin strategy instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, runner: &mut TestRunner) -> bool {
            runner.rng().gen_bool(0.5)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRunner};
    use rand::Rng;

    /// A strategy producing vectors of values from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = runner.rng().gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length.
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Marker type so `prop::num::f64::*` style paths have a home if needed.
#[derive(Debug)]
pub struct Unsupported<T>(PhantomData<T>);

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Declares property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::new(stringify!($name));
                for _ in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&$strategy, &mut runner);
                    )+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut runner = crate::TestRunner::new("bounds");
        let s = (0usize..5, 1.0f64..=2.0).prop_map(|(n, x)| (n, x));
        for _ in 0..200 {
            let (n, x) = s.generate(&mut runner);
            assert!(n < 5);
            assert!((1.0..=2.0).contains(&x));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut runner = crate::TestRunner::new("vec");
        let s = prop::collection::vec(prop::bool::ANY, 1..=3);
        for _ in 0..100 {
            let v = s.generate(&mut runner);
            assert!((1..=3).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_runs_and_asserts(x in 0usize..10, flip in prop::bool::ANY) {
            prop_assert!(x < 10);
            let _ = flip;
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in 0.0f64..1.0) {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }
}
