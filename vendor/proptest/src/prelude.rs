//! The usual proptest imports, mirroring `proptest::prelude`.

pub use crate::{prop_assert, prop_assert_eq, proptest};
pub use crate::{Just, ProptestConfig, Strategy};

pub mod prop {
    //! Namespaced strategy constructors (`prop::bool`, `prop::collection`).

    pub use crate::bool;
    pub use crate::collection;
}
