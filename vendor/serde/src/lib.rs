//! Offline stub of `serde`, value-based rather than visitor-based.
//!
//! See `vendor/README.md` for scope and caveats. The [`Serialize`] and
//! [`Deserialize`] traits convert types to and from an in-memory JSON-like
//! [`value::Value`]; the companion `serde_json` stub renders that value as
//! JSON text.

use std::fmt;
use std::sync::Arc;

pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error raised by [`Deserialize`] implementations.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a serialization value.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a serialization value.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if the value has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self >= 0 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(Error::new(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            // serde_json writes non-finite floats as null; mirror that.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::new(format!("expected f64, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::new(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::new(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!((f64::from_value(&1.5f64.to_value()).unwrap() - 1.5).abs() < 1e-12);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&3u32.to_value()).unwrap(),
            Some(3)
        );
        assert_eq!(None::<u32>.to_value(), Value::Null);
    }

    #[test]
    fn arrays_have_fixed_length() {
        let a = [1usize, 2, 3, 4];
        let v = a.to_value();
        assert_eq!(<[usize; 4]>::from_value(&v).unwrap(), a);
        assert!(<[usize; 3]>::from_value(&v).is_err());
    }

    #[test]
    fn nan_is_null() {
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }
}
