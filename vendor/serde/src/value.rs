//! The in-memory serialization value shared by `serde` and `serde_json`.

use crate::Error;

/// A JSON-like in-memory value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats and `None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object: ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object's fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a field in an object's field list (derive-macro helper).
///
/// # Errors
///
/// Returns an [`Error`] naming the missing field.
pub fn get_field<'v>(fields: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::new(format!("missing field `{name}`")))
}
