//! Offline stub of `rand`.
//!
//! Provides the slice of the `rand 0.8` API this workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension trait with `gen_range` (half-open and inclusive
//! ranges over integers and floats) and `gen_bool`.
//!
//! The generator is SplitMix64: deterministic per seed, passes basic
//! uniformity needs of workload generation, but does **not** reproduce
//! upstream `rand`'s streams.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `f64` in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let x = self.start + (self.end - self.start) * unit_f64(rng);
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        if start == end {
            return start;
        }
        let x = start + (end - start) * unit_f64(rng);
        x.min(end)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The stub's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood; public domain reference).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// A generator seeded from OS entropy (used by the `proptest` stub).
pub fn entropy_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ (d.as_secs() << 32))
        .unwrap_or(0x5eed);
    SeedableRng::seed_from_u64(nanos ^ (std::process::id() as u64).rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u32..5);
            assert!(y < 5);
            let z = rng.gen_range(2i64..=4);
            assert!((2..=4).contains(&z));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&x));
            let y = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&y));
        }
    }

    #[test]
    fn degenerate_inclusive_float_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert_eq!(rng.gen_range(1.2..=1.2), 1.2);
        }
    }

    #[test]
    fn mean_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_half_open_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = rng.gen_range(1.0..1.0);
    }
}
