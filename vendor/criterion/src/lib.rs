//! Offline stub of `criterion`.
//!
//! Supports the `criterion_group!`/`criterion_main!` entry points, benchmark
//! groups with `sample_size`/`measurement_time`, `bench_function`,
//! `bench_with_input` and `Bencher::iter`. Each benchmark runs a warm-up
//! iteration followed by a small number of timed iterations and prints the
//! mean wall-clock time; there is no statistical analysis.
//!
//! Set `CRITERION_STUB_SAMPLES` to override the per-benchmark iteration
//! count (default 5).

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call plus `iterations` measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std_black_box(routine());
        for _ in 0..self.iterations {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn stub_samples() -> usize {
    std::env::var("CRITERION_STUB_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iterations: stub_samples(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!(
        "{name:<40} mean {:>12} min {:>12} max {:>12} ({} iters)",
        format_duration(mean),
        format_duration(*min),
        format_duration(*max),
        bencher.samples.len(),
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, as in upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}
