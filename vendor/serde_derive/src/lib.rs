//! Offline stub of `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote`) derive macros for the value-based
//! `serde` stub. Supported shapes — exactly what this workspace uses:
//!
//! * structs with named fields → JSON objects;
//! * newtype structs (one unnamed field) → the inner value;
//! * tuple structs (several unnamed fields) → JSON arrays;
//! * enums whose variants are all unit variants → variant-name strings.
//!
//! Generics, `where` clauses and `#[serde(...)]` attributes are not
//! supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// `n` unnamed fields.
    Tuple(usize),
    /// Unit enum variants, in declaration order.
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` for the supported shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::value::Value::Obj(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Arr(vec![{}])", entries.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "::serde::value::Value::Str(String::from(match self {{ {} }}))",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` for the supported shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::value::get_field(fields, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let fields = v.as_obj().ok_or_else(|| \
                 ::serde::Error::new(\"expected object for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                entries.join(", ")
            )
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_arr().ok_or_else(|| \
                 ::serde::Error::new(\"expected array for {name}\"))?;\n\
                 if items.len() != {n} {{ return Err(::serde::Error::new(\
                 \"wrong arity for {name}\")); }}\n\
                 Ok({name}({}))",
                entries.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "let s = v.as_str().ok_or_else(|| \
                 ::serde::Error::new(\"expected variant string for {name}\"))?;\n\
                 match s {{ {} _ => Err(::serde::Error::new(\
                 format!(\"unknown {name} variant `{{s}}`\"))) }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         \tfn from_value(v: &::serde::value::Value) \
         -> Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}

/// Parses the derive input down to a name and a [`Shape`].
fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // Optional (crate)/(super)/... restriction.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }

    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                shape: Shape::Tuple(count_tuple_fields(g.stream())),
            },
            other => panic!("serde_derive stub: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                shape: Shape::UnitEnum(parse_unit_variants(&name, g.stream())),
                name,
            },
            other => panic!("serde_derive stub: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}`"),
    }
}

/// Extracts field names from a named-struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde_derive stub: expected field name, got {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected `:`, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                None => break,
                _ => {}
            }
            tokens.next();
        }
    }
    fields
}

/// Counts the unnamed fields of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut depth = 0i32;
    let mut saw_tokens = false;
    for tt in stream {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_tokens {
        count + 1
    } else {
        0
    }
}

/// Extracts variant names from an enum body, rejecting data variants.
fn parse_unit_variants(enum_name: &str, stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes (e.g. `#[default]`, doc comments).
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        match tokens.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => panic!("serde_derive stub: expected variant name, got {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => panic!(
                "serde_derive stub: enum `{enum_name}` has a non-unit variant \
                 ({other:?}); only unit enums are supported"
            ),
        }
    }
    variants
}
