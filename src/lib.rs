//! # amrm — Adaptable Multi-application Runtime resource Management
//!
//! A Rust reproduction of *"Energy-efficient Runtime Resource Management
//! for Adaptable Multi-application Mapping"* (Khasanov & Castrillon,
//! DATE 2020).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`platform`] — heterogeneous platforms (`amrm-platform`);
//! * [`model`] — operating points, jobs, mapping-segment schedules
//!   (`amrm-model`);
//! * [`core`] — the MMKP-MDF scheduler and the runtime manager
//!   (`amrm-core`);
//! * [`baselines`] — EX-MEM, MMKP-LR and the fixed mapper
//!   (`amrm-baselines`);
//! * [`dataflow`] — the KPN benchmarking substrate (`amrm-dataflow`);
//! * [`workload`] — motivational scenarios and the Table III generator
//!   (`amrm-workload`);
//! * [`sim`] — event-driven online RM simulation (`amrm-sim`);
//! * [`metrics`] — evaluation statistics (`amrm-metrics`);
//! * [`bench`] — the regeneration/benchmark harness behind the `repro`
//!   binary, including the `tune` parameter-fitting subsystem
//!   (`amrm-bench`).
//!
//! # Quickstart
//!
//! ```
//! use amrm::core::{MmkpMdf, RuntimeManager};
//! use amrm::workload::scenarios;
//!
//! // Serve the paper's motivational scenario S1 with the adaptive RM.
//! let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
//! rm.submit(scenarios::lambda1(), 9.0);
//! rm.advance_to(1.0);
//! rm.submit(scenarios::lambda2(), 5.0);
//! let energy = rm.run_to_completion();
//! assert!((energy - 14.63).abs() < 5e-3); // Fig. 1(c)
//! ```

pub use amrm_baselines as baselines;
pub use amrm_bench as bench;
pub use amrm_core as core;
pub use amrm_dataflow as dataflow;
pub use amrm_metrics as metrics;
pub use amrm_model as model;
pub use amrm_platform as platform;
pub use amrm_sim as sim;
pub use amrm_workload as workload;

/// The workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
