//! The event-driven simulation kernel.
//!
//! [`Simulation`] composes any [`Scheduler`] with any [`AdmissionPolicy`]
//! and drives a [`RuntimeManager`] from a time-ordered event queue instead
//! of a hand-rolled per-arrival loop. Four event kinds exist:
//!
//! * **arrival** — a request joins the admission queue; the policy decides
//!   whether to flush the queue, keep gathering, or (re-)open a batching
//!   window;
//! * **window expiry** — an open batching window closes and the queue is
//!   flushed to [`RuntimeManager::submit_batch`];
//! * **job completion** — the next completion under the current schedule
//!   (re-armed after every handled event and guarded by a generation
//!   counter, so only *exact* completion instants are consumed — energy
//!   accounting stays bit-identical to the sequential driver);
//! * **queue deadline** — a queued request's deadline passes before its
//!   batch is flushed; the request is pulled out of the queue and
//!   submitted alone at that instant, where it is rejected without a
//!   scheduler activation.
//!
//! The kernel owns a [`Telemetry`] recorder: every arrival, flush and
//! expiry feeds the online series (queue depth, EWMA arrival rate,
//! platform utilization from the execution engine, rolling acceptance,
//! activation latency), and every admission decision point hands the
//! policy a read-only [`TelemetrySnapshot`] — the feedback loop the
//! adaptive policies ([`amrm_core::AdaptiveBatch`],
//! [`amrm_core::SlackAware`]) close. The end-of-run summary lands in
//! [`SimOutcome::telemetry`].
//!
//! With [`amrm_core::Immediate`] the kernel reproduces the paper's
//! per-request discipline event for event; `BatchK(1)` and `WindowTau(0)`
//! are equivalent by construction (the property tests in
//! `tests/admission_equivalence.rs` pin this down to the bit level).
//!
//! # Streaming and the hot path
//!
//! Arrivals are *pulled* lazily: the kernel holds exactly one pending
//! arrival event and asks its request source for the next one only when
//! that event is handled, so a million-request
//! [`ArrivalStream`](amrm_workload::ArrivalStream) is never materialized
//! ([`Simulation::from_stream`]). [`Simulation::new`] routes a
//! pre-materialized slice through the same machinery, and the two are
//! bit-identical: at equal times arrivals are ordered by class and then
//! by push order, which the pull-ahead-one discipline preserves.
//!
//! The per-event hot path is allocation-free in steady state: flush
//! batches, submissions, admissions and the telemetry snapshot live in
//! scratch buffers reused across events, and the single live completion
//! event is only re-armed when the engine's next completion instant
//! actually changed (bitwise), so completion re-arming no longer thrashes
//! the [`BinaryHeap`] with one stale entry per event.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use amrm_core::{
    Admission, AdmissionDirective, AdmissionPolicy, DecisionReason, ReactivationPolicy,
    RuntimeManager, Scheduler, SearchBudget, ShardView, TelemetrySnapshot,
};
use amrm_metrics::journal::{EventKind, JournalConfig, JournalEvent, RejectReason};
use amrm_metrics::{instrument, Telemetry, TraceSink};
use amrm_model::{AppRef, Job, JobId, JobSet};
use amrm_platform::Platform;
use amrm_workload::ScenarioRequest;

use crate::SimOutcome;

/// The class of a kernel event — the *single* encoding of the same-instant
/// tie-break order (the `#[repr(u8)]` discriminants *are* the priorities):
/// completions retire first, arrivals join the queue next, window expiries
/// flush after them (so simultaneous arrivals land in the same window
/// flush), and queue deadlines come last — a flush at the very instant a
/// queued request expires wins the tie, and the zero-slack candidate is
/// uniformly auto-rejected by `submit_batch` rather than counted as a
/// queue drop (keeping `WindowTau(0)` aligned with `Immediate` even for
/// `deadline == arrival` requests).
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventClass {
    /// A job completes under the current schedule; the payload carries
    /// the arming generation and must match the kernel's current one or
    /// the event is stale.
    Completion = 0,
    /// The request with the payload's (arrival-order) index arrives.
    Arrival = 1,
    /// The batching window with the payload's id expires.
    WindowExpiry = 2,
    /// The deadline of the queued request with the payload's index passes.
    QueueDeadline = 3,
}

/// A time-stamped kernel event. Ordered for a min-heap on
/// `(time, class, seq)`; `seq` makes the order total and deterministic.
///
/// The payload is a plain `u32` interpreted per class (request index,
/// window id, or completion generation) — no boxed data, and the whole
/// entry packs into 24 bytes so heap churn moves cache lines, not pages.
#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    payload: u32,
    class: EventClass,
}

const _: () = assert!(
    std::mem::size_of::<Event>() == 24,
    "Event grew past 24 bytes"
);

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the earliest event.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An event-driven online-RM simulation: a request stream, a scheduler,
/// a re-activation policy and a batched-admission policy.
///
/// # Examples
///
/// Admitting the Fig. 1 scenario in one `BatchK(2)` activation:
///
/// ```
/// use amrm_core::{BatchK, MmkpMdf, ReactivationPolicy};
/// use amrm_sim::Simulation;
/// use amrm_workload::scenarios;
///
/// let outcome = Simulation::new(
///     scenarios::platform(),
///     MmkpMdf::new(),
///     ReactivationPolicy::OnArrival,
///     BatchK(2),
///     &scenarios::scenario_s1(),
/// )
/// .run();
/// assert_eq!(outcome.accepted(), 2);
/// // Both requests were decided in a single scheduler activation.
/// assert_eq!(outcome.stats.activations, 1);
/// ```
pub struct Simulation<S, A> {
    rm: RuntimeManager<S>,
    admission: A,
    telemetry: Telemetry,
    /// The lazy arrival source; pulled one request ahead of the event
    /// loop so the heap never holds more than one pending arrival. `Send`
    /// so a federation shard can migrate between fan-out worker threads.
    source: Box<dyn Iterator<Item = ScenarioRequest> + Send>,
    /// Requests pulled from the source so far, in arrival order.
    requests: Vec<ScenarioRequest>,
    events: BinaryHeap<Event>,
    /// Request indices waiting for a batch flush, FIFO.
    queue: VecDeque<usize>,
    /// Per pulled request: the admission decision, once made.
    decisions: Vec<Option<(JobId, bool)>>,
    /// Set once the source is drained: no arrival event is in the heap
    /// and none will be pushed.
    arrivals_done: bool,
    /// Arrival time of the most recently pulled request — streams must be
    /// non-decreasing.
    last_arrival: f64,
    /// Liveness stamp for completion events; bumped whenever the armed
    /// completion instant must be invalidated.
    completion_generation: u32,
    /// The instant of the currently armed (live) completion event, if
    /// any. Re-arming is skipped while the engine's next completion is
    /// bitwise unchanged, so steady execution keeps one live event
    /// instead of staling one per handled event.
    armed_completion: Option<f64>,
    /// Id and absolute expiry of the currently open batching window.
    open_window: Option<(u32, f64)>,
    next_window: u32,
    next_seq: u64,
    /// Admitted jobs at full remaining ratio, for the outcome.
    admitted: Vec<Job>,
    /// Requests dropped from the queue because their deadline passed
    /// before their batch was flushed.
    queue_deadline_drops: usize,
    /// Lean outcome mode (see [`Simulation::without_trace`]): skip the
    /// admitted-jobs accumulation (the engine's executed trace is gated
    /// separately through the runtime manager).
    lean: bool,
    /// External-arrival mode (see [`Simulation::open`]): the kernel owns
    /// no stream; a federation dispatcher injects arrivals between
    /// lockstep epochs.
    external: bool,
    /// External mode: the dispatcher declared the global stream over.
    external_closed: bool,
    /// External mode: arrival events injected but not yet handled.
    pending_arrivals: usize,
    /// Requests stolen out of this shard's admission queue by the
    /// federation dispatcher; their decision slots legitimately stay
    /// empty here (the thief shard decides them).
    stolen: usize,
    /// Aggregated-outcome mode (see [`Simulation::aggregated`]): decided
    /// request slots are folded into running counters and recycled, so
    /// memory stays flat in the stream length.
    aggregate: bool,
    /// Aggregated mode: recycled request slots, reused LIFO.
    free_slots: Vec<u32>,
    /// Aggregated mode, per slot: a queue-deadline guard event is still
    /// pending. A slot is only recycled once unguarded — the invariant
    /// that keeps a stale guard from dropping a later tenant.
    guarded: Vec<bool>,
    /// Requests decided so far (the admissions fold, maintained in both
    /// modes and pinned equal to the per-request records).
    offered: usize,
    /// Requests admitted so far.
    accepted_total: usize,
    /// High-water mark of live (undecided or guard-pinned) request slots.
    peak_live: usize,
    /// Decision-journal sink shared with the runtime manager and (via
    /// the scheduling context) the scheduler. Disabled by default: every
    /// emission site is gated on one branch, so the journal-off hot path
    /// is bit-identical to the pre-journal kernel.
    journal: TraceSink,
    /// Request-sampling modulus copied out of the journal config
    /// (`0`/`1` = every request), mirrored here so the kernel can skip
    /// per-request bookkeeping for unsampled ids without taking the lock.
    journal_sample: u64,
    /// Per request slot: the journal request id (global arrival ordinal)
    /// of the slot's current tenant. Only maintained while the journal
    /// is enabled.
    journal_ids: Vec<u64>,
    /// Next journal request id (arrival ordinal, assigned at pull/inject).
    next_journal_id: u64,
    /// Sampled admitted jobs awaiting completion: `(engine job id,
    /// journal request id)`. Swept against the engine's live set after
    /// every clock advance so each admitted sampled request gets its
    /// terminal `completion` event.
    journal_live: Vec<(JobId, u64)>,
    // Hot-path scratch buffers, reused across events so steady-state
    // admission allocates nothing.
    flush_scratch: Vec<usize>,
    submit_scratch: Vec<(AppRef, f64)>,
    admissions_scratch: Vec<Admission>,
    snapshot_scratch: TelemetrySnapshot,
    /// Debug-only pop-order witness: the last popped `(time, class)` and
    /// whether a push intervened since — see
    /// [`amrm_metrics::invariant::pop_order_violation`].
    #[cfg(debug_assertions)]
    last_popped: Option<(f64, u8)>,
    #[cfg(debug_assertions)]
    pushed_since_pop: bool,
}

impl<S: Scheduler, A: AdmissionPolicy> Simulation<S, A> {
    /// Creates a simulation over `requests` (sorted by arrival
    /// internally).
    ///
    /// # Panics
    ///
    /// Panics if the admission policy is invalid or any request has a
    /// deadline before its arrival.
    pub fn new(
        platform: Platform,
        scheduler: S,
        reactivation: ReactivationPolicy,
        admission: A,
        requests: &[ScenarioRequest],
    ) -> Self {
        for req in requests {
            assert!(
                req.deadline >= req.arrival,
                "request deadline {} before its arrival {}",
                req.deadline,
                req.arrival
            );
        }
        let mut ordered: Vec<ScenarioRequest> = requests.to_vec();
        ordered.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        Self::from_stream(platform, scheduler, reactivation, admission, ordered)
    }

    /// Creates a simulation that pulls requests lazily from `stream`
    /// (e.g. an [`amrm_workload::ArrivalStream`]) instead of holding a
    /// materialized vector: the kernel keeps one pending arrival event
    /// and asks the stream for the next request only when that event is
    /// handled. For any stream, the outcome is bit-identical to
    /// materializing it first and calling [`Simulation::new`].
    ///
    /// # Panics
    ///
    /// Panics if the admission policy is invalid; the run panics if the
    /// stream yields decreasing arrival times or a deadline before its
    /// arrival.
    pub fn from_stream<I>(
        platform: Platform,
        scheduler: S,
        reactivation: ReactivationPolicy,
        admission: A,
        stream: I,
    ) -> Self
    where
        I: IntoIterator<Item = ScenarioRequest>,
        I::IntoIter: Send + 'static,
    {
        if let Err(msg) = admission.validate() {
            panic!("invalid admission policy: {msg}");
        }
        let source = stream.into_iter();
        let (lower, upper) = source.size_hint();
        let known = upper.unwrap_or(lower);
        let mut sim = Simulation {
            rm: RuntimeManager::with_policy(platform, scheduler, reactivation),
            admission,
            telemetry: Telemetry::new(),
            source: Box::new(source),
            requests: Vec::with_capacity(known),
            decisions: Vec::with_capacity(known),
            arrivals_done: false,
            last_arrival: f64::NEG_INFINITY,
            events: BinaryHeap::with_capacity(64),
            queue: VecDeque::new(),
            completion_generation: 0,
            armed_completion: None,
            open_window: None,
            next_window: 0,
            next_seq: 0,
            admitted: Vec::new(),
            queue_deadline_drops: 0,
            lean: false,
            external: false,
            external_closed: false,
            pending_arrivals: 0,
            stolen: 0,
            aggregate: false,
            free_slots: Vec::new(),
            guarded: Vec::new(),
            offered: 0,
            accepted_total: 0,
            peak_live: 0,
            journal: TraceSink::disabled(),
            journal_sample: 0,
            journal_ids: Vec::new(),
            next_journal_id: 0,
            journal_live: Vec::new(),
            flush_scratch: Vec::new(),
            submit_scratch: Vec::new(),
            admissions_scratch: Vec::new(),
            snapshot_scratch: TelemetrySnapshot::default(),
            #[cfg(debug_assertions)]
            last_popped: None,
            #[cfg(debug_assertions)]
            pushed_since_pop: false,
        };
        sim.pull_next_arrival();
        sim
    }

    /// The admission policy this simulation runs under.
    pub fn admission_policy(&self) -> &A {
        &self.admission
    }

    /// Builder-style override of the per-activation [`SearchBudget`] the
    /// runtime manager forwards to the scheduler through its
    /// [`amrm_core::SchedulingContext`] (unbounded by default, so plain
    /// simulations behave exactly like the pre-context kernel).
    #[must_use]
    pub fn with_search_budget(mut self, budget: SearchBudget) -> Self {
        self.rm.set_search_budget(budget);
        self
    }

    /// Disables the O(events) outcome bulk for long profile runs: the
    /// engine stops recording the executed trace and the kernel stops
    /// accumulating the admitted-jobs set, so
    /// [`SimOutcome::trace`] and [`SimOutcome::admitted_jobs`] come back
    /// empty. Everything else — admissions, energy (bit-for-bit), stats,
    /// telemetry — is unaffected.
    #[must_use]
    pub fn without_trace(mut self) -> Self {
        self.rm.set_record_trace(false);
        self.lean = true;
        self
    }

    /// Attaches a structured event journal: the kernel emits the
    /// request lifecycle (arrival → window open/tighten → flush →
    /// schedule decision → admit/reject-with-reason → completion), and
    /// the same sink rides into every [`amrm_core::SchedulingContext`]
    /// so context-aware schedulers journal their own decisions. Memory
    /// stays flat (ring buffer; exact counters survive eviction) and all
    /// payloads are sim-time, so enabling the journal leaves admissions,
    /// energy bits, stats and telemetry bit-identical to a journal-free
    /// run. The resulting [`Journal`](amrm_metrics::Journal) lands in
    /// [`SimOutcome::journal`].
    #[must_use]
    pub fn with_journal(mut self, config: JournalConfig) -> Self {
        self.install_journal(TraceSink::enabled(config), config.sample);
        self
    }

    /// Installs an externally owned journal sink (the federation gives
    /// each shard its own so cross-shard interleaving cannot perturb
    /// event order). `sample` must match the sink's journal config.
    pub fn install_journal(&mut self, sink: TraceSink, sample: u64) {
        self.journal_sample = sample;
        self.rm.set_trace_sink(sink.clone());
        // Backfill ids for requests pulled ahead of this call (the
        // constructor pulls one arrival before builders run).
        while self.journal_ids.len() < self.requests.len() {
            self.journal_ids.push(self.next_journal_id);
            self.next_journal_id += 1;
        }
        self.journal = sink;
    }

    /// Whether the journal samples this request id (mirrors
    /// [`Journal::samples`](amrm_metrics::Journal::samples) without
    /// taking the sink lock).
    fn journal_samples(&self, id: u64) -> bool {
        self.journal_sample <= 1 || id.is_multiple_of(self.journal_sample)
    }

    /// Creates an *externally driven* simulation: the kernel owns no
    /// request stream — a federation dispatcher injects arrivals with
    /// [`inject_request`](Simulation::inject_request) and advances the
    /// shard in sim-time lockstep with
    /// [`advance_until`](Simulation::advance_until). Once the dispatcher
    /// has [`close_stream`](Simulation::close_stream)ed and
    /// [`finalize`](Simulation::finalize)d the shard,
    /// [`finish`](Simulation::finish) drains the tail exactly like
    /// [`run`](Simulation::run) would.
    ///
    /// Injecting the whole stream in arrival order reproduces a
    /// [`Simulation::from_stream`] run bit for bit: same-instant events
    /// are ordered by class first, and within a class by push order,
    /// which batched injection preserves.
    ///
    /// # Panics
    ///
    /// Panics if the admission policy is invalid.
    pub fn open(
        platform: Platform,
        scheduler: S,
        reactivation: ReactivationPolicy,
        admission: A,
    ) -> Self {
        let mut sim = Self::from_stream(
            platform,
            scheduler,
            reactivation,
            admission,
            std::iter::empty(),
        );
        sim.external = true;
        sim
    }

    /// Switches on the aggregated (flat-memory) outcome mode: decided
    /// request slots are folded into running counters
    /// ([`SimOutcome::offered`], acceptance, energy — latency percentiles
    /// already live in the telemetry's bounded rings) and recycled, so a
    /// 10M-request or multi-shard run keeps memory flat instead of
    /// holding one record per request. [`SimOutcome::admissions`] comes
    /// back empty; everything else — counters, energy (bit-for-bit),
    /// stats, telemetry — matches the recording run exactly. Implies
    /// [`without_trace`](Simulation::without_trace).
    #[must_use]
    pub fn aggregated(mut self) -> Self {
        self = self.without_trace();
        self.aggregate = true;
        // The constructor pulled ahead before the mode flipped on —
        // backfill the per-slot guard flags for already-pulled slots.
        self.guarded.resize(self.requests.len(), false);
        self.peak_live = self.peak_live.max(self.requests.len());
        self
    }

    /// Runs the event loop to quiescence, lets every admitted job finish,
    /// and returns the outcome.
    pub fn run(self) -> SimOutcome {
        self.run_with_scheduler().0
    }

    /// Like [`run`](Simulation::run), but also hands back the scheduler —
    /// the way stateful algorithm internals (META's regime switch count,
    /// EX-MEM's memo statistics) are inspected after a run.
    pub fn run_with_scheduler(mut self) -> (SimOutcome, S) {
        let outcome = self.finish();
        (outcome, self.rm.into_scheduler())
    }

    /// Drains every remaining event, lets the admitted jobs finish and
    /// builds the outcome in place — the tail shared by
    /// [`run`](Simulation::run) and the federation (which holds shards in
    /// mutexes and cannot consume them by value on worker threads).
    pub(crate) fn finish(&mut self) -> SimOutcome {
        while let Some(event) = self.events.pop() {
            self.handle(event);
        }
        debug_assert!(self.queue.is_empty(), "requests stranded in the queue");
        let total_energy = self.rm.run_to_completion();
        // Fold the tail execution (after the last flush) into the energy
        // series so the summary's energy/job matches the outcome's.
        self.telemetry
            .record_energy(total_energy, self.rm.stats().accepted);
        if self.journal.is_enabled() {
            // Jobs completing in the tail (after the last event) retire
            // inside run_to_completion; close their lifecycles at the
            // final clock.
            let now = self.rm.now();
            for (_, jid) in self.journal_live.drain(..) {
                self.journal
                    .emit(JournalEvent::at(now, EventKind::Completion).request(jid));
            }
        }

        let admissions = if self.aggregate {
            Vec::new()
        } else {
            let decisions = std::mem::take(&mut self.decisions);
            debug_assert_eq!(
                decisions.iter().filter(|d| d.is_none()).count(),
                self.stolen,
                "the undecided slots must be exactly the stolen ones"
            );
            decisions.into_iter().flatten().collect()
        };
        let journal = self.journal.snapshot();
        // Test-mode invariant: every sampled request this kernel
        // journaled closed its lifecycle (arrival + completion, reject
        // or steal). Vacuous when the ring evicted events.
        #[cfg(debug_assertions)]
        if let Some(journal) = &journal {
            if let Err(msg) = journal.validate_lifecycles() {
                panic!("journal lifecycle invariant violated at finish: {msg}");
            }
        }
        SimOutcome {
            admissions,
            offered: self.offered,
            accepted_total: self.accepted_total,
            total_energy,
            end_time: self.rm.now(),
            stats: self.rm.stats(),
            trace: self.rm.executed_trace(),
            admitted_jobs: JobSet::new(std::mem::take(&mut self.admitted)),
            queue_deadline_drops: self.queue_deadline_drops,
            stolen: self.stolen,
            peak_live_requests: self.peak_live_requests(),
            telemetry: self.telemetry.summary(),
            journal,
        }
    }

    /// High-water mark of simultaneously tracked request slots. In
    /// aggregated mode this is the flat-memory bound (live = undecided +
    /// guard-pinned); in recording mode it equals the requests pulled so
    /// far, since slots are never recycled.
    pub fn peak_live_requests(&self) -> usize {
        self.peak_live
    }

    /// Pulls the next request from the source and arms its arrival
    /// event, or marks the stream drained. Called once at construction
    /// and once per handled arrival, so the heap holds at most one
    /// pending arrival — the pull-ahead-one discipline that keeps lazy
    /// and materialized streams bit-identical.
    fn pull_next_arrival(&mut self) {
        if self.external {
            return; // the dispatcher injects arrivals instead
        }
        let Some(req) = self.source.next() else {
            self.arrivals_done = true;
            return;
        };
        self.admit_arrival(req);
    }

    /// Validates stream monotonicity, allocates a request slot and arms
    /// the arrival event — shared by the stream pull and external
    /// injection.
    fn admit_arrival(&mut self, req: ScenarioRequest) {
        assert!(
            req.deadline >= req.arrival,
            "request deadline {} before its arrival {}",
            req.deadline,
            req.arrival
        );
        assert!(
            req.arrival >= self.last_arrival,
            "arrival stream regressed: {} after {}",
            req.arrival,
            self.last_arrival
        );
        self.last_arrival = req.arrival;
        let arrival = req.arrival;
        let slot = self.alloc_slot(req);
        self.push_event(arrival, EventClass::Arrival, slot);
    }

    /// Allocates the slot tracking a pulled/injected request: a recycled
    /// one in aggregated mode, a fresh record otherwise. Slot indices
    /// ride in event payloads and the admission queue but never order
    /// events, so recycling cannot perturb the event sequence.
    fn alloc_slot(&mut self, req: ScenarioRequest) -> u32 {
        let slot = if let Some(slot) = self.free_slots.pop() {
            let i = slot as usize;
            debug_assert!(!self.guarded[i], "recycled a guard-pinned slot");
            self.requests[i] = req;
            self.decisions[i] = None;
            slot
        } else {
            let index = u32::try_from(self.requests.len())
                .expect("request index exceeds u32 payload range");
            self.requests.push(req);
            self.decisions.push(None);
            if self.aggregate {
                self.guarded.push(false);
            }
            index
        };
        let live = self.requests.len() - self.free_slots.len();
        self.peak_live = self.peak_live.max(live);
        if self.journal.is_enabled() {
            let id = self.next_journal_id;
            self.next_journal_id += 1;
            let i = slot as usize;
            if i < self.journal_ids.len() {
                self.journal_ids[i] = id;
            } else {
                self.journal_ids.push(id);
            }
        }
        slot
    }

    /// Whether no further arrival can ever be handled: the stream-owned
    /// kernel's drained flag, or — externally driven — a closed stream
    /// with no injected arrival pending. While the *global* last arrival
    /// is being handled both formulations are true, which keeps the
    /// final-flush discipline of a 1-shard federation bit-identical to a
    /// stream-owned run.
    fn arrivals_exhausted(&self) -> bool {
        if self.external {
            self.external_closed && self.pending_arrivals == 0
        } else {
            self.arrivals_done
        }
    }

    /// External mode: injects one dispatcher-routed arrival. Injections
    /// must be non-decreasing in arrival time, mirroring the stream
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics on a stream-owned simulation, after
    /// [`close_stream`](Simulation::close_stream), on a regressing
    /// arrival, or on a deadline before its arrival.
    pub fn inject_request(&mut self, req: ScenarioRequest) {
        assert!(
            self.external,
            "inject_request needs a Simulation::open kernel"
        );
        assert!(!self.external_closed, "arrival stream already closed");
        self.admit_arrival(req);
        self.pending_arrivals += 1;
    }

    /// External mode: handles every event strictly before `t` — the
    /// lockstep epoch advance. The dispatcher picks `t` as the next
    /// epoch's first arrival instant, so the state observed at the
    /// barrier is exactly what a single stream-owned kernel would show
    /// there.
    pub fn advance_until(&mut self, t: f64) {
        debug_assert!(self.external, "advance_until is the dispatcher's tick");
        while let Some(event) = self.events.peek() {
            if event.time >= t {
                break;
            }
            let event = self.events.pop().expect("peeked event vanished");
            self.handle(event);
        }
    }

    /// External mode: declares the global arrival stream over. Injected
    /// arrivals still in flight drain through
    /// [`finalize`](Simulation::finalize).
    pub fn close_stream(&mut self) {
        debug_assert!(self.external, "close_stream is the dispatcher's tick");
        self.external_closed = true;
    }

    /// External mode, after [`close_stream`](Simulation::close_stream):
    /// handles every event up to *and including* `t_close` (the global
    /// stream's last arrival instant), then flushes deferred leftovers
    /// the way a stream-owned kernel flushes them while handling its last
    /// arrival — a shard whose local last arrival predates `t_close` has
    /// no arrival event left to trigger that flush on its own.
    pub fn finalize(&mut self, t_close: f64) {
        debug_assert!(
            self.external && self.external_closed,
            "finalize follows close_stream"
        );
        while let Some(event) = self.events.peek() {
            if event.time > t_close {
                break;
            }
            let event = self.events.pop().expect("peeked event vanished");
            self.handle(event);
        }
        if !self.queue.is_empty() && self.admission.flush_at_stream_end() {
            self.rm.advance_to(t_close.max(self.rm.now()));
            self.sample_utilization();
            self.flush_queue();
            self.telemetry.record_queue_depth(self.queue.len());
            self.rearm_completion();
        }
    }

    /// External mode: removes the most recently queued (still unadmitted)
    /// request so the dispatcher can re-route it to an idle shard.
    /// Returns `None` when the queue is empty. The stolen slot's decision
    /// legitimately stays unmade here — the thief shard decides the
    /// request — and its pending deadline guard goes stale (the pop-time
    /// queue-membership check discards it).
    pub fn steal_queued(&mut self) -> Option<ScenarioRequest> {
        debug_assert!(self.external, "steal_queued is the dispatcher's tick");
        let slot = self.queue.pop_back()?;
        self.stolen += 1;
        let req = self.requests[slot].clone();
        if self.journal.is_enabled() {
            // Terminal on this shard: the request re-arrives (under a
            // fresh journal id) at the thief.
            self.journal.emit(
                JournalEvent::at(self.rm.now(), EventKind::Steal)
                    .request(self.journal_ids[slot])
                    .value(req.deadline),
            );
        }
        // Mirror the queue-drop path: a steal that empties an open
        // gathering window closes it, so the next arrival opens a fresh
        // full-length window instead of joining a stale one.
        if self.queue.is_empty() {
            self.open_window = None;
        }
        self.telemetry.record_queue_depth(self.queue.len());
        if self.aggregate && !self.guarded[slot] {
            self.free_slots
                .push(u32::try_from(slot).expect("slot index fits the event payload"));
        }
        Some(req)
    }

    /// The dispatcher's read-only load view of this shard at a routing
    /// barrier. Injected-but-unhandled arrivals count toward the queue
    /// depth so barrier-time ties are not undercounted.
    pub fn shard_view(&self, shard: usize) -> ShardView {
        let stats = self.rm.stats();
        let now = self.rm.now();
        let snap = self.telemetry.snapshot(now, self.queue.len(), None, None);
        ShardView {
            shard,
            queue_depth: self.queue.len() + self.pending_arrivals,
            running_jobs: stats.accepted - stats.completed,
            utilization: snap.utilization,
            energy_per_job: snap.energy_per_job,
            rolling_acceptance: snap.rolling_acceptance,
            arrival_rate: snap.arrival_rate,
            now,
        }
    }

    /// Records the current platform utilization (busy cores per type
    /// from the execution engine) into the telemetry series.
    fn sample_utilization(&mut self) {
        let busy = self.rm.busy_cores();
        self.telemetry
            .record_utilization(busy.as_slice(), self.rm.platform().counts().as_slice());
    }

    /// Refills the scratch snapshot with the read-only telemetry view at
    /// a decision point: series state plus the kernel's queue depth,
    /// tightest queued slack and open window.
    fn refresh_snapshot(&mut self, now: f64) {
        let min_queued_slack = self
            .queue
            .iter()
            .map(|&i| self.requests[i].deadline - now)
            .min_by(f64::total_cmp);
        self.telemetry.snapshot_into(
            &mut self.snapshot_scratch,
            now,
            self.queue.len(),
            min_queued_slack,
            self.open_window.map(|(_, expiry)| expiry),
        );
    }

    fn push_event(&mut self, time: f64, class: EventClass, payload: u32) {
        let seq = self.next_seq;
        self.next_seq += 1;
        instrument::record_heap_push();
        #[cfg(debug_assertions)]
        {
            self.pushed_since_pop = true;
        }
        self.events.push(Event {
            time,
            seq,
            payload,
            class,
        });
    }

    fn handle(&mut self, event: Event) {
        instrument::record_event();
        #[cfg(debug_assertions)]
        {
            // Time must never run backwards across pops, and same-instant
            // events must respect the EventClass tie-break unless a
            // handler armed a new event in between.
            let popped = (event.time, event.class as u8);
            if let Some(prev) = self.last_popped {
                if let Some(msg) = amrm_metrics::invariant::pop_order_violation(
                    prev,
                    popped,
                    self.pushed_since_pop,
                ) {
                    panic!("{msg}");
                }
            }
            self.last_popped = Some(popped);
            self.pushed_since_pop = false;
        }
        match event.class {
            EventClass::Arrival => {
                let request = event.payload as usize;
                // Pull ahead before any admission logic so the
                // stream-drained check below sees the true state; the
                // externally driven kernel tracks its in-flight
                // injections for the same check instead.
                if self.external {
                    self.pending_arrivals -= 1;
                } else {
                    self.pull_next_arrival();
                }
                self.rm.advance_to(event.time);
                self.queue.push_back(request);
                instrument::record_queue_depth(self.queue.len());
                self.telemetry.record_arrival(event.time);
                if self.journal.is_enabled() {
                    self.journal.emit(
                        JournalEvent::at(event.time, EventKind::Arrival)
                            .request(self.journal_ids[request])
                            .value(self.requests[request].deadline),
                    );
                }
                self.sample_utilization();
                self.refresh_snapshot(event.time);
                let directive = self
                    .admission
                    .on_arrival(&self.snapshot_scratch, event.time);
                match directive {
                    AdmissionDirective::Flush => {
                        // An explicit flush closes any open window.
                        self.open_window = None;
                        self.flush_queue();
                    }
                    AdmissionDirective::OpenWindow { expiry } => {
                        // Opens a fresh window — or supersedes the running
                        // one (its expiry event goes stale via the id
                        // check): adaptive policies tighten windows this
                        // way when queued slack runs short.
                        let tightened = self.open_window.is_some();
                        let id = self.next_window;
                        self.next_window += 1;
                        self.open_window = Some((id, expiry));
                        self.push_event(expiry, EventClass::WindowExpiry, id);
                        if self.journal.is_enabled() {
                            let kind = if tightened {
                                EventKind::WindowTighten
                            } else {
                                EventKind::WindowOpen
                            };
                            self.journal.emit(
                                JournalEvent::at(event.time, kind)
                                    .request(self.journal_ids[request])
                                    .detail(id)
                                    .value(expiry),
                            );
                        }
                        self.guard_queued_deadline(request);
                    }
                    AdmissionDirective::Defer => {
                        // BatchK never starves a partial final batch.
                        if self.arrivals_exhausted() && self.admission.flush_at_stream_end() {
                            self.flush_queue();
                        } else {
                            self.guard_queued_deadline(request);
                        }
                    }
                }
                // Depth after the directive took effect (0 if flushed) —
                // sampling before the flush would bias the series upward.
                self.telemetry.record_queue_depth(self.queue.len());
                self.rearm_completion();
            }
            EventClass::WindowExpiry => {
                if self.open_window.map(|(id, _)| id) != Some(event.payload) {
                    return; // superseded window, nothing to do
                }
                self.open_window = None;
                if !self.queue.is_empty() {
                    self.rm.advance_to(event.time);
                    self.sample_utilization();
                    self.flush_queue();
                    self.telemetry.record_queue_depth(self.queue.len());
                    self.rearm_completion();
                }
            }
            EventClass::Completion => {
                if event.payload != self.completion_generation {
                    return; // stale: the schedule changed since arming
                }
                // The armed event is the one firing right now.
                self.armed_completion = None;
                // `event.time` is the exact next completion instant, so
                // the consume split matches the sequential driver's.
                self.rm.advance_to(event.time);
                self.rearm_completion();
            }
            EventClass::QueueDeadline => {
                let request = event.payload as usize;
                let was_guarded = if self.aggregate {
                    // Slots recycle only while unguarded, so a popped
                    // guard always belongs to the slot's current (or
                    // last) tenant — never to a later one.
                    debug_assert!(self.guarded[request], "stale guard on a recycled slot");
                    std::mem::replace(&mut self.guarded[request], false)
                } else {
                    false
                };
                let Some(pos) = self.queue.iter().position(|&r| r == request) else {
                    // Already flushed (or stolen): in aggregated mode the
                    // guard was the only thing pinning the slot.
                    if was_guarded {
                        self.free_slots.push(event.payload);
                    }
                    return;
                };
                self.queue.remove(pos);
                self.queue_deadline_drops += 1;
                self.telemetry.record_queue_drop();
                // If the drop emptied an open gathering window, close it:
                // the next arrival must open a fresh full-length window,
                // not join the stale one (its expiry event is skipped via
                // the id check above).
                if self.queue.is_empty() {
                    self.open_window = None;
                }
                self.rm.advance_to(event.time);
                // Submitted alone at its deadline: `submit_batch` rejects
                // it without a scheduler activation once the deadline is
                // no longer in the future (so no activation sample is
                // recorded for the pseudo-flush).
                self.flush_one(request);
                self.telemetry.record_queue_depth(self.queue.len());
                self.rearm_completion();
            }
        }
    }

    /// Flushes the whole admission queue as one batch.
    fn flush_queue(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.flush_scratch);
        batch.clear();
        batch.extend(self.queue.drain(..));
        self.flush_requests(&batch, true);
        self.flush_scratch = batch;
    }

    /// Submits a single (already dequeued) request as a pseudo-flush.
    fn flush_one(&mut self, request: usize) {
        self.flush_requests(&[request], false);
    }

    /// Submits the given (arrival-order index) requests as one batch,
    /// records the decisions and feeds the telemetry series (queue waits,
    /// the activation's gathering latency and wall-clock decision time,
    /// rolling acceptance, energy per job). `record_activation` is false
    /// for the queue-deadline pseudo-flush, which never reaches the
    /// scheduler.
    fn flush_requests(&mut self, batch: &[usize], record_activation: bool) {
        instrument::record_flush();
        let now = self.rm.now();
        if record_activation && self.journal.is_enabled() {
            self.journal
                .emit(JournalEvent::at(now, EventKind::Flush).detail(batch.len() as u32));
        }
        for &i in batch {
            self.telemetry
                .record_queue_wait(now - self.requests[i].arrival);
        }
        let mut submissions = std::mem::take(&mut self.submit_scratch);
        submissions.clear();
        submissions.extend(batch.iter().map(|&i| {
            let req = &self.requests[i];
            (AppRef::clone(&req.app), req.deadline)
        }));
        // The context feed: the runtime manager hands this snapshot —
        // series state plus the post-flush queue — to the scheduler in
        // the SchedulingContext of every activation this batch causes.
        self.refresh_snapshot(now);
        self.rm.observe_telemetry(&self.snapshot_scratch);
        let mut admissions = std::mem::take(&mut self.admissions_scratch);
        self.rm.submit_batch_into(&submissions, &mut admissions);
        self.submit_scratch = submissions;
        if record_activation {
            let oldest = batch
                .iter()
                .map(|&i| self.requests[i].arrival)
                .fold(f64::INFINITY, f64::min);
            self.telemetry
                .record_activation(now - oldest, self.rm.last_decision_seconds());
        }
        let mut accepted = 0;
        for (pos, (&i, admission)) in batch.iter().zip(&admissions).enumerate() {
            self.decisions[i] = Some((admission.job(), admission.is_accepted()));
            self.offered += 1;
            if self.journal.is_enabled() {
                // Reasons are parallel (in input order) to the batch.
                let reason = self.rm.last_decision_reasons()[pos];
                self.journal_decision(i, now, reason, record_activation);
            }
            if let Admission::Accepted { job } = admission {
                accepted += 1;
                self.accepted_total += 1;
                self.telemetry
                    .record_admission_slack(self.requests[i].deadline - now);
                if self.journal.is_enabled() {
                    let jid = self.journal_ids[i];
                    if self.journal_samples(jid) {
                        self.journal_live.push((*job, jid));
                    }
                }
                if !self.lean {
                    let req = &self.requests[i];
                    self.admitted.push(Job::new(
                        *job,
                        AppRef::clone(&req.app),
                        req.arrival,
                        req.deadline,
                        1.0,
                    ));
                }
            }
            // Aggregated mode: the record is folded, recycle the slot —
            // unless a pending deadline guard still points at it (the
            // guard recycles it when it fires).
            if self.aggregate && !self.guarded[i] {
                self.free_slots
                    .push(u32::try_from(i).expect("slot index fits the event payload"));
            }
        }
        self.admissions_scratch = admissions;
        self.telemetry
            .record_decisions(accepted, batch.len() - accepted);
        self.telemetry
            .record_energy(self.rm.total_energy(), self.rm.stats().accepted);
    }

    /// Journals one batch decision as an `admit` (with its
    /// slack-at-admission) or a `reject` (with the reason code). The
    /// queue-deadline pseudo-flush never reaches the scheduler, so its
    /// manager-side `ExpiredBeforeFlush` verdict is reported as the
    /// taxonomy's `QueueDeadline` — the request expired *while queued*,
    /// not merely before its batch flushed.
    fn journal_decision(&self, slot: usize, now: f64, reason: DecisionReason, flushed: bool) {
        let jid = self.journal_ids[slot];
        match reason {
            DecisionReason::Accepted => {
                self.journal.emit(
                    JournalEvent::at(now, EventKind::Admit)
                        .request(jid)
                        .value(self.requests[slot].deadline - now),
                );
            }
            reason => {
                let code = if flushed {
                    match reason {
                        DecisionReason::ExpiredBeforeFlush => RejectReason::ExpiredBeforeFlush,
                        DecisionReason::InfeasibleJointSchedule => {
                            RejectReason::InfeasibleJointSchedule
                        }
                        DecisionReason::RollbackVictim => RejectReason::RollbackVictim,
                        DecisionReason::Accepted => unreachable!("matched above"),
                    }
                } else {
                    RejectReason::QueueDeadline
                };
                self.journal.emit(
                    JournalEvent::at(now, EventKind::Reject)
                        .request(jid)
                        .detail(code as u32),
                );
            }
        }
    }

    /// Emits `completion` events for sampled admitted jobs the engine
    /// has retired since the last sweep. Called (journal-gated) after
    /// every clock advance; the tail after the last event is drained in
    /// [`finish`](Simulation::finish).
    fn sweep_completed_journal(&mut self) {
        if self.journal_live.is_empty() {
            return;
        }
        let now = self.rm.now();
        let engine = self.rm.engine();
        let mut k = 0;
        while k < self.journal_live.len() {
            let (job, jid) = self.journal_live[k];
            if engine.jobs().iter().any(|j| j.id == job) {
                k += 1;
            } else {
                self.journal
                    .emit(JournalEvent::at(now, EventKind::Completion).request(jid));
                self.journal_live.swap_remove(k);
            }
        }
    }

    /// Schedules a queue-deadline guard for a request that stayed queued.
    /// Guards are always armed and filtered at pop time instead: an event
    /// whose request has already been flushed finds it gone from the
    /// queue and is discarded without touching the clock.
    fn guard_queued_deadline(&mut self, request: usize) {
        let deadline = self.requests[request].deadline;
        let index = u32::try_from(request).expect("request index exceeds u32 payload range");
        if self.aggregate {
            debug_assert!(!self.guarded[request], "double guard on one tenancy");
            self.guarded[request] = true;
        }
        self.push_event(deadline, EventClass::QueueDeadline, index);
    }

    /// Keeps the single live completion event armed at the engine's next
    /// completion instant. While that instant is bitwise unchanged the
    /// armed event stays live as-is; when it changed, the generation bump
    /// stales the old event and — if execution continues — a fresh one is
    /// pushed. Stale events are no-ops at pop time, so the dedup only
    /// removes heap churn, never reorders live events.
    ///
    /// Once the stream is exhausted and nothing waits for admission, no
    /// event can change the schedule any more and the tail execution is
    /// left to `run_to_completion` — exactly like the sequential driver,
    /// whose final clock is the *schedule end*, not the last completion.
    fn rearm_completion(&mut self) {
        if self.journal.is_enabled() {
            self.sweep_completed_journal();
        }
        if self.arrivals_exhausted() && self.queue.is_empty() {
            if self.armed_completion.is_some() {
                self.completion_generation = self.completion_generation.wrapping_add(1);
                self.armed_completion = None;
            }
            return;
        }
        let next = self.rm.engine().next_completion();
        let unchanged = match (next, self.armed_completion) {
            (Some(a), Some(b)) => a.to_bits() == b.to_bits(),
            (None, None) => true,
            _ => false,
        };
        if unchanged {
            return;
        }
        self.completion_generation = self.completion_generation.wrapping_add(1);
        self.armed_completion = next;
        if let Some(tc) = next {
            let generation = self.completion_generation;
            self.push_event(tc, EventClass::Completion, generation);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_core::{AdaptiveBatch, BatchK, Immediate, MmkpMdf, SlackAware, WindowTau};
    use amrm_workload::{
        bursty_window_stream, poisson_stream, scenarios, ArrivalStream, StreamSpec,
    };

    fn lib() -> Vec<AppRef> {
        vec![scenarios::lambda1(), scenarios::lambda2()]
    }

    fn simulate<A: AdmissionPolicy>(admission: A, requests: &[ScenarioRequest]) -> SimOutcome {
        Simulation::new(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrival,
            admission,
            requests,
        )
        .run()
    }

    #[test]
    fn immediate_reproduces_fig1c() {
        let outcome = simulate(Immediate, &scenarios::scenario_s1());
        assert_eq!(outcome.accepted(), 2);
        assert!((outcome.total_energy - scenarios::fig1::ADAPTIVE_J).abs() < 5e-3);
        assert_eq!(outcome.stats.activations, 2);
        assert_eq!(outcome.queue_deadline_drops, 0);
    }

    #[test]
    fn batch_k_admits_whole_queue_in_one_activation() {
        // Both S1 requests deferred until the second arrival at t = 1,
        // then admitted atomically.
        let outcome = simulate(BatchK(2), &scenarios::scenario_s1());
        assert_eq!(outcome.accepted(), 2);
        assert_eq!(outcome.stats.activations, 1);
        assert_eq!(outcome.stats.deadline_misses, 0);
    }

    #[test]
    fn batch_leftovers_flush_at_stream_end() {
        // Three requests with k = 2: the trailing odd request must not
        // starve.
        let mut reqs = scenarios::scenario_s1();
        reqs.push(ScenarioRequest {
            app: scenarios::lambda2(),
            arrival: 6.0,
            deadline: 20.0,
        });
        let outcome = simulate(BatchK(2), &reqs);
        assert_eq!(outcome.admissions.len(), 3);
        assert_eq!(outcome.accepted(), 3);
        assert_eq!(outcome.stats.completed, 3);
    }

    #[test]
    fn window_gathers_requests_before_flushing() {
        // A 2-second window opened at t = 0 gathers the t = 1 arrival;
        // admission happens at t = 2 in one joint activation.
        let reqs = vec![
            ScenarioRequest {
                app: scenarios::lambda1(),
                arrival: 0.0,
                deadline: 20.0,
            },
            ScenarioRequest {
                app: scenarios::lambda2(),
                arrival: 1.0,
                deadline: 20.0,
            },
        ];
        let outcome = simulate(WindowTau(2.0), &reqs);
        assert_eq!(outcome.accepted(), 2);
        assert_eq!(outcome.stats.activations, 1);
        assert_eq!(outcome.stats.deadline_misses, 0);
    }

    #[test]
    fn window_gathering_can_cost_acceptance_under_tight_slack() {
        // On S1 itself the 2-second wait eats σ2's slack: the joint batch
        // at t = 2 is infeasible for MMKP-MDF, the rollback path admits
        // only σ1. Batching trades activations against acceptance — the
        // very dimension the policy grid measures.
        let outcome = simulate(WindowTau(2.0), &scenarios::scenario_s1());
        assert_eq!(outcome.accepted(), 1);
        // One joint attempt + two greedy retries.
        assert_eq!(outcome.stats.activations, 3);
        assert_eq!(outcome.stats.deadline_misses, 0);
    }

    #[test]
    fn queued_requests_expiring_before_flush_are_dropped() {
        // A huge window: both S1 deadlines (9.0 and 5.0) pass before the
        // window expires at t = 50, so both requests are dropped at
        // exactly their deadlines and no scheduler activation ever runs.
        let outcome = simulate(WindowTau(50.0), &scenarios::scenario_s1());
        assert_eq!(outcome.accepted(), 0);
        assert_eq!(outcome.rejected(), 2);
        assert_eq!(outcome.queue_deadline_drops, 2);
        assert_eq!(outcome.stats.activations, 0);
        assert_eq!(outcome.total_energy, 0.0);
    }

    #[test]
    fn drop_emptied_window_closes_so_next_arrival_opens_a_fresh_one() {
        // r1 opens a 5 s window at t = 0 but expires (deadline 2) before
        // it flushes, emptying the queue. r2 arriving at t = 3 must open
        // a *fresh* window expiring at t = 8 — not join the stale one
        // expiring at t = 5.
        let reqs = vec![
            ScenarioRequest {
                app: scenarios::lambda2(),
                arrival: 0.0,
                deadline: 2.0,
            },
            ScenarioRequest {
                app: scenarios::lambda2(),
                arrival: 3.0,
                deadline: 20.0,
            },
        ];
        let outcome = simulate(WindowTau(5.0), &reqs);
        assert_eq!(outcome.queue_deadline_drops, 1);
        assert_eq!(outcome.accepted(), 1);
        // r2 is admitted at t = 8 (fresh window) and runs ≥ 2 s from
        // there; a stale-window flush at t = 5 would finish before 8.
        assert!(
            outcome.end_time >= 10.0 - 1e-9,
            "end {} implies the stale window flushed early",
            outcome.end_time
        );
    }

    #[test]
    fn window_zero_matches_immediate_on_poisson_load() {
        let spec = StreamSpec {
            requests: 30,
            slack_range: (1.2, 2.5),
        };
        let stream = poisson_stream(&lib(), 3.0, &spec, 17);
        let immediate = simulate(Immediate, &stream);
        let window = simulate(WindowTau(0.0), &stream);
        assert_eq!(immediate.admissions, window.admissions);
        assert_eq!(
            immediate.total_energy.to_bits(),
            window.total_energy.to_bits()
        );
        assert_eq!(immediate.stats, window.stats);
    }

    #[test]
    fn simultaneous_arrivals_share_a_zero_window() {
        // Two requests at the same instant: WindowTau(0) groups them into
        // one activation, Immediate decides them separately.
        let reqs = vec![
            ScenarioRequest {
                app: scenarios::lambda1(),
                arrival: 0.0,
                deadline: 20.0,
            },
            ScenarioRequest {
                app: scenarios::lambda2(),
                arrival: 0.0,
                deadline: 20.0,
            },
        ];
        let grouped = simulate(WindowTau(0.0), &reqs);
        assert_eq!(grouped.accepted(), 2);
        assert_eq!(grouped.stats.activations, 1);
        let separate = simulate(Immediate, &reqs);
        assert_eq!(separate.accepted(), 2);
        assert_eq!(separate.stats.activations, 2);
    }

    #[test]
    #[should_panic(expected = "invalid admission policy")]
    fn zero_batch_size_panics() {
        let _ = simulate(BatchK(0), &scenarios::scenario_s1());
    }

    #[test]
    fn telemetry_summary_tracks_the_run() {
        let spec = StreamSpec {
            requests: 25,
            slack_range: (1.5, 2.5),
        };
        let stream = poisson_stream(&lib(), 2.0, &spec, 7);
        let outcome = simulate(BatchK(3), &stream);
        let t = &outcome.telemetry;
        assert_eq!(t.arrivals, 25);
        assert!(t.activations >= 1 && t.activations <= outcome.stats.activations);
        assert!(t.arrival_rate > 0.0);
        assert!((0.0..=1.0).contains(&t.utilization));
        assert!((0.0..=1.0).contains(&t.rolling_acceptance));
        // Batching by 3 makes most requests wait in the queue.
        assert!(t.queue_wait_p95 > 0.0);
        assert!(t.queue_wait_p50 <= t.queue_wait_p95);
        assert!(t.decision_seconds_p50 > 0.0);
        assert!(t.activation_latency > 0.0);
        if outcome.accepted() > 0 {
            assert!((t.energy_per_job - outcome.energy_per_job()).abs() < 1e-9);
        }
    }

    #[test]
    fn immediate_telemetry_has_zero_queue_wait() {
        let outcome = simulate(Immediate, &scenarios::scenario_s1());
        assert_eq!(outcome.telemetry.queue_wait_p99, 0.0);
        assert_eq!(outcome.telemetry.activation_latency, 0.0);
        assert_eq!(outcome.telemetry.arrivals, 2);
        assert_eq!(outcome.telemetry.queue_drops, 0);
    }

    #[test]
    fn adaptive_batch_admits_everything_at_sparse_load() {
        // At light load the AIMD policy idles at k = 1 and behaves like
        // the per-request discipline: no queue drops, full acceptance on
        // a stream Immediate fully accepts.
        let spec = StreamSpec {
            requests: 20,
            slack_range: (1.5, 2.5),
        };
        let stream = poisson_stream(&lib(), 20.0, &spec, 13);
        let immediate = simulate(Immediate, &stream);
        let adaptive = simulate(AdaptiveBatch::default(), &stream);
        assert_eq!(adaptive.queue_deadline_drops, 0);
        assert_eq!(adaptive.accepted(), immediate.accepted());
    }

    #[test]
    fn adaptive_batch_batches_under_dense_load() {
        // Dense feasible arrivals with generous slack: the AIMD loop must
        // grow past k = 1 and decide several requests per activation,
        // spending fewer scheduler activations than requests. The fitted
        // gather target (~2.43 s) only batches under genuinely dense
        // load, so the stream runs at one arrival per second.
        let spec = StreamSpec {
            requests: 40,
            slack_range: (6.0, 8.0),
        };
        let stream = poisson_stream(&lib(), 1.0, &spec, 5);
        let outcome = simulate(AdaptiveBatch::default(), &stream);
        assert!(
            outcome.stats.activations < stream.len(),
            "activations {} show no batching over {} requests",
            outcome.stats.activations,
            stream.len()
        );
        assert!(outcome.accepted() > 0);
    }

    #[test]
    fn slack_aware_avoids_window_tau_queue_drops() {
        // A fixed 50 s window drops both S1 requests at their deadlines;
        // SlackAware caps the window by the queued slack and admits.
        let fixed = simulate(WindowTau(50.0), &scenarios::scenario_s1());
        assert_eq!(fixed.accepted(), 0);
        let adaptive = simulate(
            SlackAware {
                max_window: 50.0,
                margin: 2.0,
            },
            &scenarios::scenario_s1(),
        );
        assert_eq!(adaptive.queue_deadline_drops, 0);
        assert!(adaptive.accepted() >= 1);
    }

    #[test]
    fn slack_aware_tightens_open_windows_for_urgent_arrivals() {
        // r1 (slack 30) opens a 10 s window at t = 0; r2 arrives at t = 1
        // with 4 s of slack. The superseded window must close at
        // t = 1 + 4/2 = 3 — early enough for r2 (λ2, fastest point 2 s)
        // to be admitted instead of dropped at t = 5.
        let reqs = vec![
            ScenarioRequest {
                app: scenarios::lambda2(),
                arrival: 0.0,
                deadline: 30.0,
            },
            ScenarioRequest {
                app: scenarios::lambda2(),
                arrival: 1.0,
                deadline: 5.0,
            },
        ];
        let policy = SlackAware {
            max_window: 10.0,
            margin: 1.0,
        };
        let outcome = simulate(policy, &reqs);
        assert_eq!(outcome.queue_deadline_drops, 0);
        assert_eq!(outcome.accepted(), 2);
        // One joint activation decided both.
        assert_eq!(outcome.stats.activations, 1);
        // The fixed window of the same length drops r2 at its deadline.
        let fixed = simulate(WindowTau(10.0), &reqs);
        assert_eq!(fixed.queue_deadline_drops, 1);
        assert_eq!(fixed.accepted(), 1);
    }

    #[test]
    fn adaptive_policies_are_deterministic_per_seed() {
        let spec = StreamSpec {
            requests: 40,
            slack_range: (1.3, 2.5),
        };
        let stream = bursty_window_stream(&lib(), 0.5, 5.0, 12.0, &spec, 21);
        let a = simulate(AdaptiveBatch::default(), &stream);
        let b = simulate(AdaptiveBatch::default(), &stream);
        assert_eq!(a.admissions, b.admissions);
        assert_eq!(a.total_energy.to_bits(), b.total_energy.to_bits());
        let c = simulate(SlackAware::default(), &stream);
        let d = simulate(SlackAware::default(), &stream);
        assert_eq!(c.admissions, d.admissions);
        assert_eq!(c.total_energy.to_bits(), d.total_energy.to_bits());
    }

    #[test]
    #[should_panic(expected = "before its arrival")]
    fn deadline_before_arrival_panics() {
        let reqs = vec![ScenarioRequest {
            app: scenarios::lambda1(),
            arrival: 2.0,
            deadline: 1.0,
        }];
        let _ = simulate(Immediate, &reqs);
    }

    #[test]
    fn event_order_is_deterministic_at_equal_times() {
        let mut heap = BinaryHeap::new();
        heap.push(Event {
            time: 1.0,
            seq: 3,
            payload: 0,
            class: EventClass::WindowExpiry,
        });
        heap.push(Event {
            time: 1.0,
            seq: 1,
            payload: 0,
            class: EventClass::Arrival,
        });
        heap.push(Event {
            time: 1.0,
            seq: 2,
            payload: 0,
            class: EventClass::Completion,
        });
        heap.push(Event {
            time: 1.0,
            seq: 5,
            payload: 0,
            class: EventClass::QueueDeadline,
        });
        heap.push(Event {
            time: 0.5,
            seq: 4,
            payload: 1,
            class: EventClass::Arrival,
        });
        let order: Vec<EventClass> = std::iter::from_fn(|| heap.pop()).map(|e| e.class).collect();
        // Earliest time first; at equal times completion < arrival <
        // window expiry < queue deadline.
        assert_eq!(
            order,
            vec![
                EventClass::Arrival,
                EventClass::Completion,
                EventClass::Arrival,
                EventClass::WindowExpiry,
                EventClass::QueueDeadline,
            ]
        );
    }

    #[test]
    fn queue_deadline_is_the_last_class_at_equal_times() {
        // The #[repr(u8)] discriminants are the one and only encoding of
        // the same-instant tie-break; QueueDeadline must sort after every
        // other class so a same-instant flush wins the tie.
        let classes = [
            EventClass::Completion,
            EventClass::Arrival,
            EventClass::WindowExpiry,
            EventClass::QueueDeadline,
        ];
        for class in classes {
            assert!(class <= EventClass::QueueDeadline);
        }
        assert_eq!(EventClass::Completion as u8, 0);
        assert_eq!(EventClass::Arrival as u8, 1);
        assert_eq!(EventClass::WindowExpiry as u8, 2);
        assert_eq!(EventClass::QueueDeadline as u8, 3);
        // And the event struct stays a compact Copy value.
        assert_eq!(std::mem::size_of::<Event>(), 24);
    }

    #[test]
    fn lazy_stream_matches_materialized_run_bit_for_bit() {
        let spec = StreamSpec {
            requests: 60,
            slack_range: (1.2, 2.5),
        };
        let eager = diurnal_fixture(&spec);
        let materialized = simulate(Immediate, &eager);
        let streamed = Simulation::from_stream(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrival,
            Immediate,
            ArrivalStream::diurnal(&lib(), 2.0, 3.0, 60.0, &spec, 23),
        )
        .run();
        assert_eq!(materialized.admissions, streamed.admissions);
        assert_eq!(
            materialized.total_energy.to_bits(),
            streamed.total_energy.to_bits()
        );
        assert_eq!(materialized.stats, streamed.stats);
        assert_telemetry_eq(&materialized.telemetry, &streamed.telemetry);
    }

    /// Telemetry equality modulo the `decision_seconds_*` percentiles,
    /// which sample real wall-clock scheduler time and so differ between
    /// otherwise bit-identical runs.
    fn assert_telemetry_eq(a: &amrm_metrics::TelemetrySummary, b: &amrm_metrics::TelemetrySummary) {
        let mut a = a.clone();
        let mut b = b.clone();
        a.decision_seconds_p50 = 0.0;
        a.decision_seconds_p95 = 0.0;
        a.decision_seconds_p99 = 0.0;
        a.decision_seconds_hist = Default::default();
        b.decision_seconds_p50 = 0.0;
        b.decision_seconds_p95 = 0.0;
        b.decision_seconds_p99 = 0.0;
        b.decision_seconds_hist = Default::default();
        assert_eq!(a, b);
    }

    fn diurnal_fixture(spec: &StreamSpec) -> Vec<ScenarioRequest> {
        ArrivalStream::diurnal(&lib(), 2.0, 3.0, 60.0, spec, 23).collect()
    }

    #[test]
    fn without_trace_changes_nothing_but_the_bulk() {
        let spec = StreamSpec {
            requests: 40,
            slack_range: (1.3, 2.2),
        };
        let stream = poisson_stream(&lib(), 2.0, &spec, 31);
        let full = simulate(BatchK(2), &stream);
        let lean = Simulation::new(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrival,
            BatchK(2),
            &stream,
        )
        .without_trace()
        .run();
        assert_eq!(full.admissions, lean.admissions);
        assert_eq!(full.total_energy.to_bits(), lean.total_energy.to_bits());
        assert_eq!(full.stats, lean.stats);
        assert_telemetry_eq(&full.telemetry, &lean.telemetry);
        assert!(!full.trace.segments().is_empty());
        assert!(lean.trace.segments().is_empty());
        assert!(!full.admitted_jobs.is_empty());
        assert!(lean.admitted_jobs.is_empty());
    }

    #[test]
    fn aggregated_outcome_equals_the_fold_of_full_records() {
        // The flat-memory contract: every aggregate counter must equal
        // the corresponding fold over the recording run's per-request
        // records, and everything shared (energy bits, stats, telemetry)
        // must be untouched by the mode switch.
        let spec = StreamSpec {
            requests: 120,
            slack_range: (1.2, 2.5),
        };
        let build = || {
            Simulation::from_stream(
                scenarios::platform(),
                MmkpMdf::new(),
                ReactivationPolicy::OnArrival,
                BatchK(4),
                ArrivalStream::diurnal(&lib(), 2.0, 3.0, 60.0, &spec, 77),
            )
        };
        let full = build().run();
        let flat = build().aggregated().run();

        // Drops are decided (rejected) records, so the recording run has
        // one record per request regardless of expiries.
        assert_eq!(full.admissions.len(), spec.requests);
        assert_eq!(flat.admissions, Vec::new());
        assert_eq!(flat.offered, full.admissions.len());
        assert_eq!(
            flat.accepted_total,
            full.admissions.iter().filter(|(_, ok)| *ok).count()
        );
        assert_eq!(flat.queue_deadline_drops, full.queue_deadline_drops);
        assert_eq!(flat.total_energy.to_bits(), full.total_energy.to_bits());
        assert_eq!(flat.end_time.to_bits(), full.end_time.to_bits());
        assert_eq!(flat.stats, full.stats);
        assert_telemetry_eq(&flat.telemetry, &full.telemetry);

        // Flat memory: recycled slots keep the high-water mark far below
        // the stream length, while the recording run pins every slot.
        assert_eq!(full.peak_live_requests, spec.requests);
        assert!(
            flat.peak_live_requests < spec.requests / 2,
            "aggregated mode must recycle slots: peak {} of {} requests",
            flat.peak_live_requests,
            spec.requests
        );
    }

    #[test]
    #[should_panic(expected = "arrival stream regressed")]
    fn decreasing_stream_panics() {
        let reqs = vec![
            ScenarioRequest {
                app: scenarios::lambda1(),
                arrival: 5.0,
                deadline: 20.0,
            },
            ScenarioRequest {
                app: scenarios::lambda1(),
                arrival: 1.0,
                deadline: 20.0,
            },
        ];
        // from_stream trusts the source's order — a regressing stream
        // must be rejected (Simulation::new sorts instead).
        let _ = Simulation::from_stream(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrival,
            Immediate,
            reqs,
        )
        .run();
    }
}
