//! Event-driven simulation of the online runtime manager.
//!
//! The [`Simulation`] kernel composes any [`Scheduler`] with any batched-
//! [`AdmissionPolicy`](amrm_core::AdmissionPolicy) and drives an
//! [`amrm_core::RuntimeManager`] from a time-ordered event queue (arrival,
//! batch-window expiry, job completion, queue deadline), collecting
//! admissions, energy and an executed Gantt trace — enough to reproduce
//! the management scenarios of Fig. 1 and to run workloads far beyond the
//! paper (Poisson/diurnal/bursty streams, batched admission A/Bs).
//!
//! [`run_scenario`] is the per-request convenience wrapper
//! ([`Immediate`](amrm_core::Immediate)) matching the paper's discipline.
//!
//! # Examples
//!
//! Reproducing Fig. 1(c):
//!
//! ```
//! use amrm_core::{MmkpMdf, ReactivationPolicy};
//! use amrm_sim::run_scenario;
//! use amrm_workload::scenarios;
//!
//! let outcome = run_scenario(
//!     scenarios::platform(),
//!     MmkpMdf::new(),
//!     ReactivationPolicy::OnArrival,
//!     &scenarios::scenario_s1(),
//! );
//! assert_eq!(outcome.accepted(), 2);
//! assert!((outcome.total_energy - 14.63).abs() < 5e-3);
//! ```

pub mod federation;
mod simulation;
mod sweep;

pub use crate::federation::{Federation, FederationConfig, FederationOutcome};
pub use crate::simulation::Simulation;
pub use crate::sweep::{
    load_sweep, load_sweep_streams, load_sweep_with, poisson_streams, registry_load_sweep,
    LoadPoint,
};

use amrm_core::{Admission, Immediate, ReactivationPolicy, RmStats, RuntimeManager, Scheduler};
use amrm_metrics::{Journal, Telemetry, TelemetrySummary};
use amrm_model::{Job, JobId, JobSet, Schedule};
use amrm_platform::Platform;
use amrm_workload::ScenarioRequest;

/// The outcome of simulating one request stream.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per request (in arrival order): the assigned job id and whether the
    /// request was admitted. Empty in aggregated-outcome mode
    /// ([`Simulation::aggregated`]), where the per-request records are
    /// folded into [`offered`](SimOutcome::offered) and the acceptance
    /// counters instead.
    pub admissions: Vec<(JobId, bool)>,
    /// Requests decided, maintained as a running counter in both modes
    /// (equals `admissions.len()` whenever records are kept).
    pub offered: usize,
    /// Requests admitted, as a running counter (equals the fold of
    /// `admissions` whenever records are kept).
    pub accepted_total: usize,
    /// Total energy metered over the whole run, in joules.
    pub total_energy: f64,
    /// Final simulated time (all admitted jobs completed).
    pub end_time: f64,
    /// Runtime-manager counters.
    pub stats: RmStats,
    /// The executed mapping-segment trace (Fig. 1 style).
    pub trace: Schedule,
    /// All admitted jobs at full remaining ratio — the lookup table for
    /// rendering/energy-checking the trace.
    pub admitted_jobs: JobSet,
    /// Requests dropped because their deadline passed while they waited
    /// in the admission queue (always 0 under per-request admission).
    pub queue_deadline_drops: usize,
    /// Requests the federation dispatcher stole out of this shard's
    /// queue and re-routed (always 0 outside a federation); their
    /// decisions are counted at the thief shard.
    pub stolen: usize,
    /// High-water mark of simultaneously tracked request slots — the
    /// flat-memory bound in aggregated mode, the total request count when
    /// records are kept.
    pub peak_live_requests: usize,
    /// End-of-run telemetry summary: queue-wait percentiles, EWMA
    /// arrival rate and utilization, activation latency, rolling
    /// acceptance (all zeros for the doc-hidden sequential driver, which
    /// predates the telemetry subsystem).
    pub telemetry: TelemetrySummary,
    /// Snapshot of the structured event journal, when one was attached
    /// with [`Simulation::with_journal`] (`None` otherwise — and for the
    /// sequential driver, which predates the journal).
    pub journal: Option<Journal>,
}

impl SimOutcome {
    /// Number of admitted requests (counter-backed, so aggregated runs
    /// report it without per-request records).
    pub fn accepted(&self) -> usize {
        self.accepted_total
    }

    /// Number of rejected requests.
    pub fn rejected(&self) -> usize {
        self.offered - self.accepted_total
    }

    /// Acceptance rate in `[0, 1]`; an empty stream accepted nothing, so
    /// its rate is 0.0 (never a division by zero).
    pub fn acceptance_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.accepted_total as f64 / self.offered as f64
    }

    /// Total energy per admitted job, in joules; 0.0 when nothing was
    /// admitted (never a division by zero).
    pub fn energy_per_job(&self) -> f64 {
        if self.accepted() == 0 {
            return 0.0;
        }
        self.total_energy / self.accepted() as f64
    }

    /// Renders the executed trace as an ASCII Gantt chart.
    pub fn gantt(&self, platform: &Platform) -> String {
        amrm_model::render_gantt(
            &self.trace,
            &self.admitted_jobs,
            platform,
            &amrm_model::GanttOptions::default(),
        )
    }
}

/// Runs a stream of requests (sorted by arrival internally) through a
/// runtime manager with the given scheduler and re-activation policy, then
/// lets all admitted jobs run to completion.
///
/// This is the paper's per-request admission discipline: a thin wrapper
/// over the event-driven [`Simulation`] kernel with
/// [`Immediate`] admission.
///
/// # Panics
///
/// Panics if any request has a deadline before its arrival.
pub fn run_scenario<S: Scheduler>(
    platform: Platform,
    scheduler: S,
    policy: ReactivationPolicy,
    requests: &[ScenarioRequest],
) -> SimOutcome {
    Simulation::new(platform, scheduler, policy, Immediate, requests).run()
}

/// The pre-kernel per-arrival driver, kept as the equivalence reference
/// for the event-driven [`Simulation`]: the property tests in
/// `tests/admission_equivalence.rs` pin `Immediate`/`BatchK(1)`/
/// `WindowTau(0)` kernel runs to this loop bit for bit. Not part of the
/// public API surface.
///
/// The loop maintains its own [`Telemetry`] recorder and feeds the
/// runtime manager exactly the snapshot sequence the event kernel
/// produces under per-request admission (arrival → utilization sample →
/// zero queue wait → context snapshot → submit → activation/decision/
/// energy samples), so even *context-aware* schedulers (META) see
/// bit-identical telemetry here and under the kernel's `Immediate`
/// discipline.
#[doc(hidden)]
pub fn run_scenario_sequential<S: Scheduler>(
    platform: Platform,
    scheduler: S,
    policy: ReactivationPolicy,
    requests: &[ScenarioRequest],
) -> SimOutcome {
    let mut ordered: Vec<&ScenarioRequest> = requests.iter().collect();
    ordered.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));

    let mut rm = RuntimeManager::with_policy(platform, scheduler, policy);
    let mut telemetry = Telemetry::new();
    let mut admissions = Vec::with_capacity(ordered.len());
    let mut admitted = Vec::new();
    for req in ordered {
        rm.advance_to(req.arrival);
        // Mirror the kernel's per-arrival telemetry feed (arrival gap,
        // utilization sample, the flushed request's zero queue wait, the
        // post-flush context snapshot) …
        telemetry.record_arrival(req.arrival);
        let busy = rm.busy_cores();
        telemetry.record_utilization(busy.as_slice(), rm.platform().counts().as_slice());
        telemetry.record_queue_wait(0.0);
        rm.observe_telemetry(&telemetry.snapshot(req.arrival, 0, None, None));
        let admission = rm.submit(amrm_model::AppRef::clone(&req.app), req.deadline);
        // … and the post-decision samples (gathering latency 0 under
        // per-request admission, rolling acceptance, energy per job,
        // drained queue depth).
        telemetry.record_activation(0.0, rm.last_decision_seconds());
        let accepted = usize::from(admission.is_accepted());
        telemetry.record_decisions(accepted, 1 - accepted);
        telemetry.record_energy(rm.total_energy(), rm.stats().accepted);
        telemetry.record_queue_depth(0);
        if let Admission::Accepted { job } = admission {
            admitted.push(Job::new(
                job,
                amrm_model::AppRef::clone(&req.app),
                req.arrival,
                req.deadline,
                1.0,
            ));
        }
        admissions.push((admission.job(), admission.is_accepted()));
    }
    let total_energy = rm.run_to_completion();
    telemetry.record_energy(total_energy, rm.stats().accepted);

    let accepted_total = admissions.iter().filter(|(_, ok)| *ok).count();
    SimOutcome {
        offered: admissions.len(),
        accepted_total,
        peak_live_requests: admissions.len(),
        admissions,
        total_energy,
        end_time: rm.now(),
        stats: rm.stats(),
        trace: rm.executed_trace(),
        admitted_jobs: JobSet::new(admitted),
        queue_deadline_drops: 0,
        stolen: 0,
        telemetry: telemetry.summary(),
        journal: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_baselines::{ExMem, FixedMapper, MmkpLr};
    use amrm_core::MmkpMdf;
    use amrm_workload::scenarios;

    #[test]
    fn fig1a_fixed_mapper_on_arrival() {
        let outcome = run_scenario(
            scenarios::platform(),
            FixedMapper::new(),
            ReactivationPolicy::OnArrival,
            &scenarios::scenario_s1(),
        );
        assert_eq!(outcome.accepted(), 2);
        assert!(
            (outcome.total_energy - scenarios::fig1::FIXED_AT_START_J).abs() < 5e-3,
            "got {}",
            outcome.total_energy
        );
    }

    #[test]
    fn fig1b_fixed_mapper_remaps_at_finish() {
        let outcome = run_scenario(
            scenarios::platform(),
            FixedMapper::new(),
            ReactivationPolicy::OnArrivalAndCompletion,
            &scenarios::scenario_s1(),
        );
        assert_eq!(outcome.accepted(), 2);
        assert!(
            (outcome.total_energy - scenarios::fig1::FIXED_AT_START_AND_FINISH_J).abs() < 5e-3,
            "got {}",
            outcome.total_energy
        );
    }

    #[test]
    fn fig1c_adaptive_mapper() {
        let outcome = run_scenario(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrival,
            &scenarios::scenario_s1(),
        );
        assert_eq!(outcome.accepted(), 2);
        assert!(
            (outcome.total_energy - scenarios::fig1::ADAPTIVE_J).abs() < 5e-3,
            "got {}",
            outcome.total_energy
        );
    }

    #[test]
    fn s2_fixed_rejects_adaptive_accepts() {
        let fixed = run_scenario(
            scenarios::platform(),
            FixedMapper::new(),
            ReactivationPolicy::OnArrival,
            &scenarios::scenario_s2(),
        );
        assert_eq!(fixed.accepted(), 1);
        assert_eq!(fixed.rejected(), 1);

        let adaptive = run_scenario(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrival,
            &scenarios::scenario_s2(),
        );
        assert_eq!(adaptive.accepted(), 2);
        assert!((adaptive.acceptance_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trace_energy_matches_metered_energy() {
        for policy in [
            ReactivationPolicy::OnArrival,
            ReactivationPolicy::OnArrivalAndCompletion,
        ] {
            let outcome = run_scenario(
                scenarios::platform(),
                MmkpMdf::new(),
                policy,
                &scenarios::scenario_s1(),
            );
            let trace_energy = outcome.trace.energy(&outcome.admitted_jobs);
            assert!((trace_energy - outcome.total_energy).abs() < 1e-9);
        }
    }

    #[test]
    fn gantt_renders_both_jobs() {
        let outcome = run_scenario(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrival,
            &scenarios::scenario_s1(),
        );
        let chart = outcome.gantt(&scenarios::platform());
        assert!(chart.contains('A') && chart.contains('B'), "{chart}");
    }

    #[test]
    fn all_schedulers_complete_s1_without_misses() {
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(MmkpMdf::new()),
            Box::new(ExMem::new()),
            Box::new(MmkpLr::new()),
            Box::new(FixedMapper::new()),
        ];
        for s in schedulers {
            let outcome = run_scenario(
                scenarios::platform(),
                s,
                ReactivationPolicy::OnArrival,
                &scenarios::scenario_s1(),
            );
            assert_eq!(outcome.stats.deadline_misses, 0);
            assert_eq!(outcome.stats.completed, outcome.accepted());
        }
    }

    #[test]
    fn empty_stream_is_trivial() {
        let outcome = run_scenario(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrival,
            &[],
        );
        assert_eq!(outcome.accepted(), 0);
        // Nothing offered, nothing accepted: the rate is 0, not NaN.
        assert_eq!(outcome.acceptance_rate(), 0.0);
        assert_eq!(outcome.total_energy, 0.0);
    }

    #[test]
    fn kernel_and_sequential_driver_agree_bit_for_bit() {
        use amrm_workload::{poisson_stream, StreamSpec};
        let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
        let spec = StreamSpec {
            requests: 40,
            slack_range: (1.1, 2.0),
        };
        let stream = poisson_stream(&lib, 2.5, &spec, 23);
        for policy in [
            ReactivationPolicy::OnArrival,
            ReactivationPolicy::OnArrivalAndCompletion,
        ] {
            let kernel = run_scenario(scenarios::platform(), MmkpMdf::new(), policy, &stream);
            let sequential =
                run_scenario_sequential(scenarios::platform(), MmkpMdf::new(), policy, &stream);
            assert_eq!(kernel.admissions, sequential.admissions);
            assert_eq!(
                kernel.total_energy.to_bits(),
                sequential.total_energy.to_bits()
            );
            assert_eq!(kernel.end_time.to_bits(), sequential.end_time.to_bits());
            assert_eq!(kernel.stats, sequential.stats);
            assert_eq!(kernel.trace, sequential.trace);
        }
    }

    #[test]
    fn unsorted_arrivals_are_handled() {
        let mut reqs = scenarios::scenario_s1();
        reqs.reverse();
        let outcome = run_scenario(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrival,
            &reqs,
        );
        assert_eq!(outcome.accepted(), 2);
        assert!((outcome.total_energy - scenarios::fig1::ADAPTIVE_J).abs() < 5e-3);
    }
}
