//! Event-driven simulation of the online runtime manager.
//!
//! Feeds a request stream into an [`amrm_core::RuntimeManager`], advancing
//! simulated time between arrivals and collecting admissions, energy and an
//! executed Gantt trace — enough to reproduce the management scenarios of
//! Fig. 1 and to run workloads beyond the paper (e.g. Poisson streams).
//!
//! # Examples
//!
//! Reproducing Fig. 1(c):
//!
//! ```
//! use amrm_core::{MmkpMdf, ReactivationPolicy};
//! use amrm_sim::run_scenario;
//! use amrm_workload::scenarios;
//!
//! let outcome = run_scenario(
//!     scenarios::platform(),
//!     MmkpMdf::new(),
//!     ReactivationPolicy::OnArrival,
//!     &scenarios::scenario_s1(),
//! );
//! assert_eq!(outcome.accepted(), 2);
//! assert!((outcome.total_energy - 14.63).abs() < 5e-3);
//! ```

mod sweep;

pub use crate::sweep::{load_sweep, registry_load_sweep, LoadPoint};

use amrm_core::{Admission, ReactivationPolicy, RmStats, RuntimeManager, Scheduler};
use amrm_model::{Job, JobId, JobSet, Schedule};
use amrm_platform::Platform;
use amrm_workload::ScenarioRequest;

/// The outcome of simulating one request stream.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per request (in arrival order): the assigned job id and whether the
    /// request was admitted.
    pub admissions: Vec<(JobId, bool)>,
    /// Total energy metered over the whole run, in joules.
    pub total_energy: f64,
    /// Final simulated time (all admitted jobs completed).
    pub end_time: f64,
    /// Runtime-manager counters.
    pub stats: RmStats,
    /// The executed mapping-segment trace (Fig. 1 style).
    pub trace: Schedule,
    /// All admitted jobs at full remaining ratio — the lookup table for
    /// rendering/energy-checking the trace.
    pub admitted_jobs: JobSet,
}

impl SimOutcome {
    /// Number of admitted requests.
    pub fn accepted(&self) -> usize {
        self.admissions.iter().filter(|(_, ok)| *ok).count()
    }

    /// Number of rejected requests.
    pub fn rejected(&self) -> usize {
        self.admissions.len() - self.accepted()
    }

    /// Acceptance rate in `[0, 1]`; 1.0 for an empty stream.
    pub fn acceptance_rate(&self) -> f64 {
        if self.admissions.is_empty() {
            return 1.0;
        }
        self.accepted() as f64 / self.admissions.len() as f64
    }

    /// Renders the executed trace as an ASCII Gantt chart.
    pub fn gantt(&self, platform: &Platform) -> String {
        amrm_model::render_gantt(
            &self.trace,
            &self.admitted_jobs,
            platform,
            &amrm_model::GanttOptions::default(),
        )
    }
}

/// Runs a stream of requests (sorted by arrival internally) through a
/// runtime manager with the given scheduler and re-activation policy, then
/// lets all admitted jobs run to completion.
///
/// # Panics
///
/// Panics if any request has a deadline before its arrival.
pub fn run_scenario<S: Scheduler>(
    platform: Platform,
    scheduler: S,
    policy: ReactivationPolicy,
    requests: &[ScenarioRequest],
) -> SimOutcome {
    let mut ordered: Vec<&ScenarioRequest> = requests.iter().collect();
    ordered.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));

    let mut rm = RuntimeManager::with_policy(platform, scheduler, policy);
    let mut admissions = Vec::with_capacity(ordered.len());
    let mut admitted = Vec::new();
    for req in ordered {
        rm.advance_to(req.arrival);
        let admission = rm.submit(amrm_model::AppRef::clone(&req.app), req.deadline);
        if let Admission::Accepted { job } = admission {
            admitted.push(Job::new(
                job,
                amrm_model::AppRef::clone(&req.app),
                req.arrival,
                req.deadline,
                1.0,
            ));
        }
        admissions.push((admission.job(), admission.is_accepted()));
    }
    let total_energy = rm.run_to_completion();

    SimOutcome {
        admissions,
        total_energy,
        end_time: rm.now(),
        stats: rm.stats(),
        trace: rm.executed_trace(),
        admitted_jobs: JobSet::new(admitted),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_baselines::{ExMem, FixedMapper, MmkpLr};
    use amrm_core::MmkpMdf;
    use amrm_workload::scenarios;

    #[test]
    fn fig1a_fixed_mapper_on_arrival() {
        let outcome = run_scenario(
            scenarios::platform(),
            FixedMapper::new(),
            ReactivationPolicy::OnArrival,
            &scenarios::scenario_s1(),
        );
        assert_eq!(outcome.accepted(), 2);
        assert!(
            (outcome.total_energy - scenarios::fig1::FIXED_AT_START_J).abs() < 5e-3,
            "got {}",
            outcome.total_energy
        );
    }

    #[test]
    fn fig1b_fixed_mapper_remaps_at_finish() {
        let outcome = run_scenario(
            scenarios::platform(),
            FixedMapper::new(),
            ReactivationPolicy::OnArrivalAndCompletion,
            &scenarios::scenario_s1(),
        );
        assert_eq!(outcome.accepted(), 2);
        assert!(
            (outcome.total_energy - scenarios::fig1::FIXED_AT_START_AND_FINISH_J).abs() < 5e-3,
            "got {}",
            outcome.total_energy
        );
    }

    #[test]
    fn fig1c_adaptive_mapper() {
        let outcome = run_scenario(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrival,
            &scenarios::scenario_s1(),
        );
        assert_eq!(outcome.accepted(), 2);
        assert!(
            (outcome.total_energy - scenarios::fig1::ADAPTIVE_J).abs() < 5e-3,
            "got {}",
            outcome.total_energy
        );
    }

    #[test]
    fn s2_fixed_rejects_adaptive_accepts() {
        let fixed = run_scenario(
            scenarios::platform(),
            FixedMapper::new(),
            ReactivationPolicy::OnArrival,
            &scenarios::scenario_s2(),
        );
        assert_eq!(fixed.accepted(), 1);
        assert_eq!(fixed.rejected(), 1);

        let adaptive = run_scenario(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrival,
            &scenarios::scenario_s2(),
        );
        assert_eq!(adaptive.accepted(), 2);
        assert!((adaptive.acceptance_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trace_energy_matches_metered_energy() {
        for policy in [
            ReactivationPolicy::OnArrival,
            ReactivationPolicy::OnArrivalAndCompletion,
        ] {
            let outcome = run_scenario(
                scenarios::platform(),
                MmkpMdf::new(),
                policy,
                &scenarios::scenario_s1(),
            );
            let trace_energy = outcome.trace.energy(&outcome.admitted_jobs);
            assert!((trace_energy - outcome.total_energy).abs() < 1e-9);
        }
    }

    #[test]
    fn gantt_renders_both_jobs() {
        let outcome = run_scenario(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrival,
            &scenarios::scenario_s1(),
        );
        let chart = outcome.gantt(&scenarios::platform());
        assert!(chart.contains('A') && chart.contains('B'), "{chart}");
    }

    #[test]
    fn all_schedulers_complete_s1_without_misses() {
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(MmkpMdf::new()),
            Box::new(ExMem::new()),
            Box::new(MmkpLr::new()),
            Box::new(FixedMapper::new()),
        ];
        for s in schedulers {
            let outcome = run_scenario(
                scenarios::platform(),
                s,
                ReactivationPolicy::OnArrival,
                &scenarios::scenario_s1(),
            );
            assert_eq!(outcome.stats.deadline_misses, 0);
            assert_eq!(outcome.stats.completed, outcome.accepted());
        }
    }

    #[test]
    fn empty_stream_is_trivial() {
        let outcome = run_scenario(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrival,
            &[],
        );
        assert_eq!(outcome.accepted(), 0);
        assert!((outcome.acceptance_rate() - 1.0).abs() < 1e-12);
        assert_eq!(outcome.total_energy, 0.0);
    }

    #[test]
    fn unsorted_arrivals_are_handled() {
        let mut reqs = scenarios::scenario_s1();
        reqs.reverse();
        let outcome = run_scenario(
            scenarios::platform(),
            MmkpMdf::new(),
            ReactivationPolicy::OnArrival,
            &reqs,
        );
        assert_eq!(outcome.accepted(), 2);
        assert!((outcome.total_energy - scenarios::fig1::ADAPTIVE_J).abs() < 5e-3);
    }
}
