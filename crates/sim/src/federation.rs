//! Sharded multi-manager federation: one arrival stream, N independent
//! runtime managers behind a routing dispatcher.
//!
//! A single [`Simulation`] — one platform, one scheduler, one admission
//! policy — is the throughput ceiling of the repo's serving story. The
//! [`Federation`] scales past it by running N full simulations ("shards")
//! side by side: a dispatcher consumes one lazy request stream, routes
//! each arrival to a shard through a pluggable
//! [`RoutingPolicy`](amrm_core::RoutingPolicy) (round-robin, join-shortest
//! -queue, energy-aware, per-app hash affinity), and advances all shards
//! in **sim-time lockstep** so the federated run stays deterministic per
//! seed no matter how many OS threads execute it.
//!
//! # Lockstep epochs
//!
//! The dispatcher works in *epochs* of up to
//! [`FederationConfig::epoch`] arrivals:
//!
//! 1. pull the next batch of requests off the stream (one look-ahead
//!    request tells it the next epoch's first arrival — the barrier
//!    instant `t`);
//! 2. refresh a read-only [`ShardView`](amrm_core::ShardView) per shard
//!    (queue depth, in-flight jobs, EWMA utilization, energy/job) —
//!    skipped when the routing policy declares it feedback-free;
//! 3. optionally *steal* still-queued requests from overloaded shards to
//!    idle ones ([`FederationConfig::steal_threshold`]);
//! 4. route the batch **serially** (views get an in-epoch queue-depth
//!    bump per assignment, so feedback policies never dog-pile one shard
//!    within an epoch) and inject each request into its shard;
//! 5. advance every shard to the barrier in parallel via
//!    [`amrm_core::fanout::for_each_cell`], draining each worker's
//!    instrument counters ([`instrument::take`]) and merging them back
//!    serially — the reset → run → snapshot profiling convention keeps
//!    working for federated runs.
//!
//! Between barriers the shards share nothing, the routing runs on one
//! thread, and the counter merge is index-ordered — so the outcome is
//! bit-identical across `threads` values, and a 1-shard federation under
//! `RoundRobin` is bit-identical to the plain kernel (pinned by
//! `tests/federation_equivalence.rs`).
//!
//! # Examples
//!
//! ```
//! use amrm_core::{Immediate, JoinShortestQueue, MmkpMdf, ReactivationPolicy};
//! use amrm_sim::{Federation, FederationConfig, Simulation};
//! use amrm_workload::{scenarios, ArrivalStream, StreamSpec};
//!
//! let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
//! let spec = StreamSpec { requests: 40, slack_range: (1.5, 2.5) };
//! let shards = (0..2)
//!     .map(|_| {
//!         Simulation::open(
//!             scenarios::platform(),
//!             MmkpMdf::new(),
//!             ReactivationPolicy::OnArrival,
//!             Immediate,
//!         )
//!     })
//!     .collect();
//! let outcome = Federation::new(shards, Box::new(JoinShortestQueue::new()))
//!     .run(ArrivalStream::poisson(&lib, 4.0, &spec, 7));
//! assert_eq!(outcome.offered(), 40);
//! assert_eq!(outcome.shards.len(), 2);
//! ```

use std::sync::Mutex;

use amrm_core::fanout::for_each_cell;
use amrm_core::{AdmissionPolicy, RouteRequest, RoutingPolicy, Scheduler, ShardView};
use amrm_metrics::journal::{EventKind, JournalEvent};
use amrm_metrics::{instrument, Journal, TraceSink};
use amrm_workload::ScenarioRequest;

use crate::{SimOutcome, Simulation};

/// Dispatcher tuning knobs. The defaults favour weak-scaling throughput:
/// coarse epochs amortize the per-epoch fan-out threads.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Worker threads for the parallel shard advance (1 = fully serial,
    /// same results bit for bit).
    pub threads: usize,
    /// Arrivals routed per lockstep epoch. Coarse epochs amortize thread
    /// spawns; fine epochs (e.g. 8) give feedback policies fresher shard
    /// views. Determinism never depends on it, but routed *destinations*
    /// of feedback policies do — treat it as part of the experiment
    /// configuration.
    pub epoch: usize,
    /// Work-stealing trigger: at each barrier, while a shard's queue
    /// exceeds this threshold and another shard sits idle, one queued
    /// request migrates to the idle shard. `None` disables stealing.
    pub steal_threshold: Option<usize>,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            threads: 1,
            epoch: 64,
            steal_threshold: None,
        }
    }
}

/// The merged result of a federated run.
#[derive(Debug, Clone)]
pub struct FederationOutcome {
    /// Per-shard outcomes, in shard order.
    pub shards: Vec<SimOutcome>,
    /// Requests routed to each shard (stolen requests count at the thief,
    /// where they were ultimately decided).
    pub routed: Vec<usize>,
    /// Requests that migrated between shards through work-stealing.
    pub stolen: usize,
    /// The routing policy's label, for reports.
    pub routing: String,
    /// The dispatcher's decision journal (epoch barriers, per-request
    /// routing verdicts, steals), when one was attached with
    /// [`Federation::with_trace`]. Per-shard journals ride inside each
    /// shard's [`SimOutcome::journal`].
    pub journal: Option<Journal>,
}

impl FederationOutcome {
    /// Requests decided across all shards.
    pub fn offered(&self) -> usize {
        self.shards.iter().map(|s| s.offered).sum()
    }

    /// Requests admitted across all shards.
    pub fn accepted(&self) -> usize {
        self.shards.iter().map(|s| s.accepted()).sum()
    }

    /// Federation-wide acceptance rate in `[0, 1]` (0.0 on an empty
    /// stream).
    pub fn acceptance_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            return 0.0;
        }
        self.accepted() as f64 / offered as f64
    }

    /// Total metered energy across all shards, joules.
    pub fn total_energy(&self) -> f64 {
        self.shards.iter().map(|s| s.total_energy).sum()
    }

    /// Latest shard end time — when the whole federation went quiet.
    pub fn end_time(&self) -> f64 {
        self.shards.iter().map(|s| s.end_time).fold(0.0, f64::max)
    }

    /// Load imbalance as max-over-mean of the per-shard routed counts
    /// (1.0 = perfectly balanced; 0.0 when nothing was routed).
    pub fn imbalance_max_over_mean(&self) -> f64 {
        let mean = self.offered() as f64 / self.routed.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let max = self.routed.iter().copied().max().unwrap_or(0) as f64;
        max / mean
    }
}

/// A dispatcher over N externally driven [`Simulation`] shards (built
/// with [`Simulation::open`]) and one [`RoutingPolicy`]. See the module
/// docs for the lockstep protocol.
pub struct Federation<S, A> {
    shards: Vec<Mutex<Simulation<S, A>>>,
    routing: Box<dyn RoutingPolicy + Send>,
    config: FederationConfig,
    /// The dispatcher's own journal sink (disabled by default). Shards
    /// keep per-shard journals instead — cross-shard interleaving into
    /// one ring would depend on thread timing.
    trace: TraceSink,
}

impl<S, A> Federation<S, A>
where
    S: Scheduler + Send,
    A: AdmissionPolicy + Send,
{
    /// Builds a federation over `shards` with the default
    /// [`FederationConfig`] (serial, epoch 64, no stealing).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or the routing policy fails
    /// [`validate`](RoutingPolicy::validate).
    pub fn new(shards: Vec<Simulation<S, A>>, routing: Box<dyn RoutingPolicy + Send>) -> Self {
        assert!(!shards.is_empty(), "a federation needs at least one shard");
        if let Err(msg) = routing.validate() {
            panic!("invalid routing policy: {msg}");
        }
        Federation {
            shards: shards.into_iter().map(Mutex::new).collect(),
            routing,
            config: FederationConfig::default(),
            trace: TraceSink::disabled(),
        }
    }

    /// Builder-style dispatcher configuration.
    #[must_use]
    pub fn with_config(mut self, config: FederationConfig) -> Self {
        assert!(config.threads > 0, "need at least one worker thread");
        assert!(config.epoch > 0, "epochs must route at least one arrival");
        self.config = config;
        self
    }

    /// Attaches a journal sink to the *dispatcher*: epoch barriers,
    /// per-request routing verdicts (policy target and the queue depth
    /// seen) and steals are journaled on the routing thread, so the
    /// record is deterministic regardless of worker-thread count. Give
    /// each shard its own journal via [`Simulation::with_journal`].
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Consumes `stream`, routing every request to a shard and advancing
    /// the shards in lockstep, then drains all shards to quiescence and
    /// merges the per-shard outcomes.
    ///
    /// # Panics
    ///
    /// Panics if the routing policy returns an out-of-range shard index,
    /// or on the stream contract violations [`Simulation::from_stream`]
    /// rejects (regressing arrivals, deadline before arrival).
    pub fn run<I>(mut self, stream: I) -> FederationOutcome
    where
        I: IntoIterator<Item = ScenarioRequest>,
    {
        let n = self.shards.len();
        let mut stream = stream.into_iter();
        let mut views: Vec<ShardView> = (0..n).map(ShardView::idle).collect();
        let mut routed = vec![0usize; n];
        let mut stolen = 0usize;
        let mut batch: Vec<ScenarioRequest> = Vec::with_capacity(self.config.epoch);
        let needs_feedback = self.routing.needs_feedback();
        // One request of look-ahead: its arrival is the next barrier.
        let mut pending = stream.next();
        // The instant every shard has been advanced to so far; stolen
        // requests are re-injected as arrivals at this barrier time.
        let mut advanced_to = f64::NEG_INFINITY;
        let mut last_arrival = 0.0;
        let mut epoch_ordinal: u32 = 0;

        while let Some(first) = pending.take() {
            last_arrival = first.arrival;
            batch.clear();
            batch.push(first);
            while batch.len() < self.config.epoch {
                match stream.next() {
                    Some(req) => {
                        last_arrival = req.arrival;
                        batch.push(req);
                    }
                    None => break,
                }
            }
            pending = stream.next();

            // Barrier bookkeeping runs serially on the dispatcher thread,
            // so feedback routing and stealing are deterministic.
            let stealing = self.config.steal_threshold.is_some();
            if needs_feedback || stealing {
                self.refresh_views(&mut views);
            }
            if let Some(threshold) = self.config.steal_threshold {
                if advanced_to.is_finite() {
                    stolen += self.steal_pass(threshold, advanced_to, &mut views, &mut routed);
                }
            }
            let epoch_arrivals = batch.len();
            for req in batch.drain(..) {
                let target = self.routing.route(
                    &RouteRequest {
                        app: req.app.name(),
                        arrival: req.arrival,
                        deadline: req.deadline,
                    },
                    &views,
                );
                assert!(
                    target < n,
                    "routing policy `{}` picked shard {target} of {n}",
                    self.routing.label()
                );
                if self.trace.is_enabled() {
                    // The verdict and the load the policy saw making it.
                    self.trace.emit(
                        JournalEvent::at(req.arrival, EventKind::Route)
                            .detail(target as u32)
                            .value(views[target].queue_depth as f64),
                    );
                }
                views[target].queue_depth += 1;
                routed[target] += 1;
                self.shard(target).inject_request(req);
            }

            if let Some(next) = &pending {
                let barrier = next.arrival;
                if self.trace.is_enabled() {
                    self.trace.emit(
                        JournalEvent::at(barrier, EventKind::EpochBarrier)
                            .detail(epoch_ordinal)
                            .value(epoch_arrivals as f64),
                    );
                }
                self.advance_all(|shard| shard.advance_until(barrier));
                advanced_to = barrier;
            }
            epoch_ordinal = epoch_ordinal.wrapping_add(1);
        }

        // Stream over: drain in-flight arrivals and flush deferred
        // leftovers at the global last-arrival instant, then let each
        // shard run to quiescence — both phases fan out like the epochs.
        for shard in &self.shards {
            shard.lock().expect("shard lock poisoned").close_stream();
        }
        self.advance_all(|shard| shard.finalize(last_arrival));
        let outcomes = self.advance_all(Simulation::finish);

        FederationOutcome {
            shards: outcomes,
            routed,
            stolen,
            routing: self.routing.label(),
            journal: self.trace.snapshot(),
        }
    }

    fn shard(&self, index: usize) -> std::sync::MutexGuard<'_, Simulation<S, A>> {
        self.shards[index].lock().expect("shard lock poisoned")
    }

    /// Runs `step` on every shard via the fan-out pool and serially
    /// merges each worker's drained instrument counters into the
    /// dispatcher thread's, preserving the federation-wide totals (the
    /// serial degenerate path drains and re-merges the dispatcher's own
    /// counters — a no-op sum).
    fn advance_all<T: Send>(&self, step: impl Fn(&mut Simulation<S, A>) -> T + Sync) -> Vec<T> {
        // Capture the shard slice alone: the routing box is Send-only,
        // and the workers never touch it.
        let shards = &self.shards;
        let results = for_each_cell(shards.len(), self.config.threads, |i| {
            let mut shard = shards[i].lock().expect("shard lock poisoned");
            let out = step(&mut shard);
            (out, instrument::take())
        });
        results
            .into_iter()
            .map(|(out, counters)| {
                instrument::merge(&counters);
                out
            })
            .collect()
    }

    /// Refreshes the per-shard routing views at a barrier.
    fn refresh_views(&self, views: &mut [ShardView]) {
        for (i, view) in views.iter_mut().enumerate() {
            *view = self.shard(i).shard_view(i);
        }
    }

    /// One barrier's work-stealing sweep: while some shard queues more
    /// than `threshold` requests and another sits fully idle, the newest
    /// queued request migrates to the idle shard (re-injected as an
    /// arrival at the barrier instant, which every still-queued request's
    /// deadline is guaranteed to reach). Deterministic: thieves are
    /// scanned in index order, victims by deepest queue.
    fn steal_pass(
        &mut self,
        threshold: usize,
        barrier: f64,
        views: &mut [ShardView],
        routed: &mut [usize],
    ) -> usize {
        let mut moved = 0;
        for thief in 0..views.len() {
            loop {
                if views[thief].queue_depth > 0 || views[thief].running_jobs > 0 {
                    break;
                }
                let Some(victim) = views
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.queue_depth > threshold)
                    .max_by_key(|(_, v)| v.queue_depth)
                    .map(|(i, _)| i)
                else {
                    break;
                };
                let Some(req) = self.shard(victim).steal_queued() else {
                    break;
                };
                if self.trace.is_enabled() {
                    self.trace.emit(
                        JournalEvent::at(barrier, EventKind::Steal)
                            .detail(thief as u32)
                            .value(victim as f64)
                            .aux(views[victim].queue_depth as f64),
                    );
                }
                views[victim].queue_depth -= 1;
                views[thief].queue_depth += 1;
                routed[victim] -= 1;
                routed[thief] += 1;
                moved += 1;
                self.shard(thief).inject_request(ScenarioRequest {
                    arrival: barrier,
                    ..req
                });
            }
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_core::{
        BatchK, EnergyAware, HashAffinity, Immediate, JoinShortestQueue, MmkpMdf,
        ReactivationPolicy, RoundRobin,
    };
    use amrm_model::AppRef;
    use amrm_workload::{scenarios, ArrivalStream, StreamSpec};

    fn lib() -> Vec<AppRef> {
        vec![scenarios::lambda1(), scenarios::lambda2()]
    }

    fn open_shards(n: usize) -> Vec<Simulation<MmkpMdf, Immediate>> {
        (0..n)
            .map(|_| {
                Simulation::open(
                    scenarios::platform(),
                    MmkpMdf::new(),
                    ReactivationPolicy::OnArrival,
                    Immediate,
                )
            })
            .collect()
    }

    fn stream(requests: usize, seed: u64) -> ArrivalStream {
        let spec = StreamSpec {
            requests,
            slack_range: (1.5, 2.5),
        };
        ArrivalStream::poisson(&lib(), 4.0, &spec, seed)
    }

    #[test]
    fn every_request_is_decided_exactly_once() {
        for routing in amrm_core::routing::standard_policies() {
            let label = routing.label();
            let outcome = Federation::new(open_shards(3), routing).run(stream(60, 11));
            assert_eq!(outcome.offered(), 60, "{label}");
            assert_eq!(outcome.routed.iter().sum::<usize>(), 60, "{label}");
            for (shard, &count) in outcome.shards.iter().zip(&outcome.routed) {
                assert_eq!(shard.offered, count, "{label}");
            }
            assert_eq!(outcome.routing, label);
        }
    }

    #[test]
    fn round_robin_routes_evenly() {
        let outcome =
            Federation::new(open_shards(4), Box::new(RoundRobin::new())).run(stream(80, 3));
        assert_eq!(outcome.routed, vec![20, 20, 20, 20]);
        assert!((outcome.imbalance_max_over_mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hash_affinity_keeps_each_app_on_one_shard() {
        let spec = StreamSpec {
            requests: 50,
            slack_range: (1.5, 2.5),
        };
        let reqs: Vec<ScenarioRequest> = ArrivalStream::poisson(&lib(), 4.0, &spec, 9).collect();
        let outcome = Federation::new(open_shards(4), Box::new(HashAffinity::new()))
            .run(reqs.iter().cloned());
        // Two apps → at most two shards ever see traffic.
        let busy = outcome.routed.iter().filter(|&&c| c > 0).count();
        assert!(busy <= 2, "routed {:?}", outcome.routed);
        assert_eq!(outcome.offered(), 50);
    }

    #[test]
    fn outcome_is_identical_across_thread_counts() {
        for routing in [
            Box::new(JoinShortestQueue::new()) as Box<dyn RoutingPolicy + Send>,
            Box::new(EnergyAware::new()),
        ] {
            let label = routing.label();
            let serial = Federation::new(open_shards(4), routing)
                .with_config(FederationConfig {
                    threads: 1,
                    epoch: 16,
                    steal_threshold: None,
                })
                .run(stream(120, 17));
            let rebuilt: Box<dyn RoutingPolicy + Send> = if label == "JSQ" {
                Box::new(JoinShortestQueue::new())
            } else {
                Box::new(EnergyAware::new())
            };
            let parallel = Federation::new(open_shards(4), rebuilt)
                .with_config(FederationConfig {
                    threads: 4,
                    epoch: 16,
                    steal_threshold: None,
                })
                .run(stream(120, 17));
            assert_eq!(serial.routed, parallel.routed, "{label}");
            assert_eq!(serial.stolen, parallel.stolen, "{label}");
            for (a, b) in serial.shards.iter().zip(&parallel.shards) {
                assert_eq!(a.admissions, b.admissions, "{label}");
                assert_eq!(
                    a.total_energy.to_bits(),
                    b.total_energy.to_bits(),
                    "{label}"
                );
                assert_eq!(a.end_time.to_bits(), b.end_time.to_bits(), "{label}");
                assert_eq!(a.stats, b.stats, "{label}");
            }
        }
    }

    #[test]
    fn work_stealing_migrates_queued_requests_to_idle_shards() {
        // Hash affinity pins both apps' traffic onto ≤ 2 of 4 shards, and
        // BatchK(8) keeps requests queued between flushes — the idle
        // shards must pick queued work up once stealing is enabled. The
        // stream arrives much faster than the queue deadlines expire
        // (mean interarrival 0.2 with generous slack), and the epoch (6)
        // is deliberately not a multiple of the batch size, so barriers
        // observe non-empty queues.
        let build = || {
            (0..4)
                .map(|_| {
                    Simulation::open(
                        scenarios::platform(),
                        MmkpMdf::new(),
                        ReactivationPolicy::OnArrival,
                        BatchK(8),
                    )
                })
                .collect::<Vec<_>>()
        };
        let config = |steal| FederationConfig {
            threads: 1,
            epoch: 6,
            steal_threshold: steal,
        };
        let fast = || {
            let spec = StreamSpec {
                requests: 80,
                slack_range: (6.0, 9.0),
            };
            ArrivalStream::poisson(&lib(), 0.2, &spec, 29)
        };
        let without = Federation::new(build(), Box::new(HashAffinity::new()))
            .with_config(config(None))
            .run(fast());
        assert_eq!(without.stolen, 0);
        let with = Federation::new(build(), Box::new(HashAffinity::new()))
            .with_config(config(Some(2)))
            .run(fast());
        assert!(with.stolen > 0, "no steals despite pinned overload");
        assert_eq!(with.offered(), 80, "stolen requests must still be decided");
        let idle_without = without.routed.iter().filter(|&&c| c == 0).count();
        let idle_with = with.routed.iter().filter(|&&c| c == 0).count();
        assert!(idle_with < idle_without, "stealing must engage idle shards");
        let total_stolen: usize = with.shards.iter().map(|s| s.stolen).sum();
        assert_eq!(total_stolen, with.stolen);
    }

    #[test]
    fn aggregated_shards_report_the_same_counters() {
        let full = Federation::new(open_shards(2), Box::new(RoundRobin::new())).run(stream(60, 41));
        let lean_shards: Vec<_> = (0..2)
            .map(|_| {
                Simulation::open(
                    scenarios::platform(),
                    MmkpMdf::new(),
                    ReactivationPolicy::OnArrival,
                    Immediate,
                )
                .aggregated()
            })
            .collect();
        let lean = Federation::new(lean_shards, Box::new(RoundRobin::new())).run(stream(60, 41));
        assert_eq!(lean.offered(), full.offered());
        assert_eq!(lean.accepted(), full.accepted());
        assert_eq!(lean.total_energy().to_bits(), full.total_energy().to_bits());
        for (a, b) in lean.shards.iter().zip(&full.shards) {
            assert!(a.admissions.is_empty());
            assert_eq!(a.offered, b.offered);
            assert_eq!(a.stats, b.stats);
            assert!(a.peak_live_requests <= b.peak_live_requests);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_federation_panics() {
        let _ = Federation::new(open_shards(0), Box::new(RoundRobin::new()));
    }
}
