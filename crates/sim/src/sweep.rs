//! Load sweeps: acceptance rate and energy of the online RM as a function
//! of offered load (extension beyond the paper's static evaluation).

use amrm_core::fanout::for_each_cell;
use amrm_core::{
    AdmissionPolicy, Immediate, ReactivationPolicy, Scheduler, SchedulerRegistry, SearchBudget,
};
use amrm_model::AppRef;
use amrm_platform::Platform;
use amrm_workload::{poisson_stream, ScenarioRequest, StreamSpec};

use crate::{SimOutcome, Simulation};

/// One point of a load sweep.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Mean inter-arrival time of the Poisson stream at this point.
    pub mean_interarrival: f64,
    /// Acceptance rate in `[0, 1]`.
    pub acceptance_rate: f64,
    /// Energy per admitted job, in joules (0 if nothing admitted).
    pub energy_per_job: f64,
    /// The full simulation outcome.
    pub outcome: SimOutcome,
}

/// Sweeps offered load by varying the Poisson mean inter-arrival time, re-
/// running the same seeded stream shape for every scheduler instantiation
/// returned by `make_scheduler`.
///
/// # Panics
///
/// Panics if `interarrivals` is empty or the stream spec is invalid.
pub fn load_sweep<S, F>(
    platform: &Platform,
    make_scheduler: F,
    policy: ReactivationPolicy,
    apps: &[AppRef],
    interarrivals: &[f64],
    spec: &StreamSpec,
    seed: u64,
) -> Vec<LoadPoint>
where
    S: Scheduler,
    F: Fn() -> S + Sync,
{
    load_sweep_with(
        platform,
        make_scheduler,
        policy,
        || Immediate,
        apps,
        interarrivals,
        spec,
        seed,
        SearchBudget::unbounded(),
        1,
    )
}

/// [`load_sweep`] under an explicit batched-admission policy: the same
/// seeded streams are driven through the event kernel, so per-request and
/// batched admission can be A/B-compared point by point.
///
/// `make_admission` is a *factory* — policies may be stateful (the
/// adaptive ones are), so every load point gets a fresh instance; boxed
/// factories (`|| Box::new(AdaptiveBatch::default()) as Box<dyn
/// AdmissionPolicy>`) slot in directly.
///
/// `budget` is the per-activation [`SearchBudget`] every simulated
/// runtime manager forwards to its scheduler
/// ([`SearchBudget::online`] lets the budgeted EX-MEM sweep alongside
/// the heuristics), and the independent load points fan out over
/// `threads` OS threads via the shared
/// [`for_each_cell`](amrm_core::fanout::for_each_cell) work index.
///
/// # Panics
///
/// Panics if `interarrivals` is empty, `threads` is zero, the stream
/// spec is invalid, or the admission policy is invalid.
#[allow(clippy::too_many_arguments)]
pub fn load_sweep_with<S, F, A, G>(
    platform: &Platform,
    make_scheduler: F,
    policy: ReactivationPolicy,
    make_admission: G,
    apps: &[AppRef],
    interarrivals: &[f64],
    spec: &StreamSpec,
    seed: u64,
    budget: SearchBudget,
    threads: usize,
) -> Vec<LoadPoint>
where
    S: Scheduler,
    F: Fn() -> S + Sync,
    A: AdmissionPolicy,
    G: Fn() -> A + Sync,
{
    let streams = poisson_streams(apps, interarrivals, spec, seed);
    load_sweep_streams(
        platform,
        make_scheduler,
        policy,
        make_admission,
        interarrivals,
        &streams,
        budget,
        threads,
    )
}

/// Materializes the seeded Poisson stream for every load point once, so
/// sweep cells can *share* streams instead of regenerating them per cell
/// (see [`load_sweep_streams`]). `streams[i]` corresponds to
/// `interarrivals[i]`.
///
/// # Panics
///
/// Panics if the stream spec is invalid or `apps` is empty.
pub fn poisson_streams(
    apps: &[AppRef],
    interarrivals: &[f64],
    spec: &StreamSpec,
    seed: u64,
) -> Vec<Vec<ScenarioRequest>> {
    interarrivals
        .iter()
        .map(|&mean| poisson_stream(apps, mean, spec, seed))
        .collect()
}

/// [`load_sweep_with`] over pre-generated streams: `streams[i]` is the
/// request stream driven at `interarrivals[i]` (generate them once with
/// [`poisson_streams`]). Fan-out cells borrow the shared streams — no
/// per-cell regeneration or cloning; only the platform is still cloned
/// per cell, since the kernel takes it by value.
///
/// # Panics
///
/// Panics if `interarrivals` is empty or its length differs from
/// `streams`, `threads` is zero, or the admission policy is invalid.
#[allow(clippy::too_many_arguments)]
pub fn load_sweep_streams<S, F, A, G>(
    platform: &Platform,
    make_scheduler: F,
    policy: ReactivationPolicy,
    make_admission: G,
    interarrivals: &[f64],
    streams: &[Vec<ScenarioRequest>],
    budget: SearchBudget,
    threads: usize,
) -> Vec<LoadPoint>
where
    S: Scheduler,
    F: Fn() -> S + Sync,
    A: AdmissionPolicy,
    G: Fn() -> A + Sync,
{
    assert!(
        !interarrivals.is_empty(),
        "sweep needs at least one load point"
    );
    assert_eq!(
        interarrivals.len(),
        streams.len(),
        "one pre-generated stream per load point"
    );
    for_each_cell(interarrivals.len(), threads, |i| {
        let outcome = Simulation::new(
            platform.clone(),
            make_scheduler(),
            policy,
            make_admission(),
            &streams[i],
        )
        .with_search_budget(budget)
        .run();
        LoadPoint {
            mean_interarrival: interarrivals[i],
            acceptance_rate: outcome.acceptance_rate(),
            energy_per_job: outcome.energy_per_job(),
            outcome,
        }
    })
}

/// Runs [`load_sweep`] for every scheduler in `registry`, re-using the
/// same seeded stream shapes, and returns `(name, sweep)` pairs in
/// registry order.
///
/// This is the online counterpart of the registry-driven suite
/// evaluation: any scheduler set — including ones the paper never swept —
/// can be compared under identical offered load without touching sweep
/// code.
///
/// Every (scheduler × load) cell is independent, so the grid fans out
/// over `threads` OS threads via the shared work index — with the online
/// `budget` bounding each activation, one slow exhaustive cell no longer
/// serializes the sweep.
///
/// # Panics
///
/// Panics if `interarrivals` is empty, `threads` is zero, or the stream
/// spec is invalid.
#[allow(clippy::too_many_arguments)]
pub fn registry_load_sweep(
    platform: &Platform,
    registry: &SchedulerRegistry,
    policy: ReactivationPolicy,
    apps: &[AppRef],
    interarrivals: &[f64],
    spec: &StreamSpec,
    seed: u64,
    budget: SearchBudget,
    threads: usize,
) -> Vec<(String, Vec<LoadPoint>)> {
    assert!(
        !interarrivals.is_empty(),
        "sweep needs at least one load point"
    );
    let columns = interarrivals.len();
    let total = registry.len() * columns;
    // One stream per load point, generated once and shared by every
    // scheduler's cell at that point — the grid no longer regenerates an
    // identical seeded stream `registry.len()` times per mean.
    let streams = poisson_streams(apps, interarrivals, spec, seed);
    let flat = for_each_cell(total, threads, |cell| {
        let factory = registry
            .iter()
            .nth(cell / columns)
            .expect("scheduler index in range")
            .1;
        let mean = interarrivals[cell % columns];
        let outcome = Simulation::new(
            platform.clone(),
            factory(),
            policy,
            Immediate,
            &streams[cell % columns],
        )
        .with_search_budget(budget)
        .run();
        LoadPoint {
            mean_interarrival: mean,
            acceptance_rate: outcome.acceptance_rate(),
            energy_per_job: outcome.energy_per_job(),
            outcome,
        }
    });
    let mut flat = flat.into_iter();
    registry
        .iter()
        .map(|(name, _)| (name.to_string(), (&mut flat).take(columns).collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_core::MmkpMdf;
    use amrm_workload::scenarios;

    fn lib() -> Vec<AppRef> {
        vec![scenarios::lambda1(), scenarios::lambda2()]
    }

    #[test]
    fn lighter_load_is_never_worse_on_acceptance() {
        let spec = StreamSpec {
            requests: 25,
            slack_range: (1.2, 2.0),
        };
        let points = load_sweep(
            &scenarios::platform(),
            MmkpMdf::new,
            ReactivationPolicy::OnArrival,
            &lib(),
            &[2.0, 20.0],
            &spec,
            11,
        );
        assert_eq!(points.len(), 2);
        // Very light load (mean 20 s between ~5 s jobs) must admit at
        // least as much as heavy load in aggregate.
        assert!(points[1].acceptance_rate >= points[0].acceptance_rate - 1e-9);
        assert!(points[1].acceptance_rate > 0.9);
    }

    #[test]
    fn deadline_misses_never_occur() {
        let spec = StreamSpec {
            requests: 30,
            slack_range: (1.1, 2.5),
        };
        for p in load_sweep(
            &scenarios::platform(),
            MmkpMdf::new,
            ReactivationPolicy::OnArrival,
            &lib(),
            &[1.0, 4.0, 16.0],
            &spec,
            3,
        ) {
            assert_eq!(p.outcome.stats.deadline_misses, 0);
            assert!(p.energy_per_job >= 0.0);
        }
    }

    #[test]
    fn registry_sweep_covers_every_scheduler_in_order() {
        let registry = amrm_baselines::standard_registry()
            .subset(&[amrm_baselines::MDF_NAME, amrm_baselines::FIXED_NAME]);
        let spec = StreamSpec {
            requests: 10,
            slack_range: (1.5, 2.5),
        };
        let sweeps = registry_load_sweep(
            &scenarios::platform(),
            &registry,
            ReactivationPolicy::OnArrival,
            &lib(),
            &[4.0, 16.0],
            &spec,
            21,
            SearchBudget::unbounded(),
            2,
        );
        assert_eq!(sweeps.len(), 2);
        assert_eq!(sweeps[0].0, amrm_baselines::MDF_NAME);
        assert_eq!(sweeps[1].0, amrm_baselines::FIXED_NAME);
        for (_, points) in &sweeps {
            assert_eq!(points.len(), 2);
            for p in points {
                assert_eq!(p.outcome.stats.deadline_misses, 0);
                assert!((0.0..=1.0).contains(&p.acceptance_rate));
            }
        }
    }

    #[test]
    fn batched_sweep_matches_per_request_at_k1() {
        let spec = StreamSpec {
            requests: 20,
            slack_range: (1.2, 2.0),
        };
        let per_request = load_sweep(
            &scenarios::platform(),
            MmkpMdf::new,
            ReactivationPolicy::OnArrival,
            &lib(),
            &[2.0, 8.0],
            &spec,
            5,
        );
        let batched = load_sweep_with(
            &scenarios::platform(),
            MmkpMdf::new,
            ReactivationPolicy::OnArrival,
            || amrm_core::BatchK(1),
            &lib(),
            &[2.0, 8.0],
            &spec,
            5,
            SearchBudget::unbounded(),
            2,
        );
        for (a, b) in per_request.iter().zip(&batched) {
            assert_eq!(a.acceptance_rate.to_bits(), b.acceptance_rate.to_bits());
            assert_eq!(a.energy_per_job.to_bits(), b.energy_per_job.to_bits());
        }
    }

    #[test]
    fn zero_acceptance_point_reports_zero_energy_per_job() {
        // A scheduler that rejects everything: the sweep aggregates must
        // come out as exact zeros, not NaN from a 0/0.
        struct RejectAll;
        impl Scheduler for RejectAll {
            fn name(&self) -> &str {
                "REJECT-ALL"
            }
            fn schedule(
                &mut self,
                _: &amrm_model::JobSet,
                _: &Platform,
                _: &amrm_core::SchedulingContext,
            ) -> Option<amrm_model::Schedule> {
                None
            }
        }
        let spec = StreamSpec {
            requests: 8,
            slack_range: (1.5, 2.0),
        };
        let points = load_sweep(
            &scenarios::platform(),
            || RejectAll,
            ReactivationPolicy::OnArrival,
            &lib(),
            &[4.0],
            &spec,
            2,
        );
        assert_eq!(points[0].acceptance_rate, 0.0);
        assert_eq!(points[0].energy_per_job, 0.0);
        assert_eq!(points[0].outcome.total_energy, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one load point")]
    fn empty_sweep_panics() {
        let _ = load_sweep(
            &scenarios::platform(),
            MmkpMdf::new,
            ReactivationPolicy::OnArrival,
            &lib(),
            &[],
            &StreamSpec::default(),
            0,
        );
    }
}
