//! Weak-scaling smoke gate for the sharded federation.
//!
//! The headline claim of `repro shard` is that dispatching one arrival
//! stream over N independent runtime managers scales near-linearly in
//! aggregate throughput when the dispatcher actually has cores to spread
//! the shards over.  That claim cannot be checked on a single-core CI
//! box (shards then time-slice one core and the speedup collapses to
//! ~1×), so this test is `#[ignore]` and self-gates on the machine's
//! core count: run it explicitly on an 8-core-or-wider host with
//!
//! ```text
//! cargo test --release -p amrm-bench --test shard_smoke -- --ignored
//! ```

use amrm_bench::shard::{weak_scaling_grid, weak_scaling_speedup};
use amrm_platform::Platform;

/// Minimum cores for the speedup assertion to be meaningful.
const REQUIRED_CORES: usize = 8;

/// Required aggregate req/s ratio, 8 shards over 1 shard.
const REQUIRED_SPEEDUP: f64 = 4.0;

#[test]
#[ignore = "needs >= 8 cores and a release build; run with -- --ignored"]
fn eight_shards_quadruple_single_shard_throughput() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < REQUIRED_CORES {
        println!(
            "skipping weak-scaling gate: {cores} core(s) available, \
             {REQUIRED_CORES} required for shards to run in parallel"
        );
        return;
    }
    let platform = Platform::odroid_xu4();
    let library = amrm_dataflow::apps::benchmark_suite(&platform);
    // Quick per-shard load (matches `repro shard --quick`), endpoints of
    // the sweep only, all shards advanced by one dispatcher pool as wide
    // as the machine.
    let cells = weak_scaling_grid(&library, 2_000, &[1, 8], 2020, cores);
    let speedup = weak_scaling_speedup(&cells, "RoundRobin").expect("both endpoint cells present");
    println!("weak-scaling speedup on {cores} cores: {speedup:.2}x");
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "8-shard federation must reach {REQUIRED_SPEEDUP}x the 1-shard \
         aggregate throughput on {cores} cores, got {speedup:.2}x"
    );
}
