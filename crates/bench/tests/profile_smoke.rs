//! Smoke tests of the `repro profile` harness with the counting global
//! allocator installed: the fast test pins the counter wiring and the
//! allocation accounting; the ignored release-only test streams a
//! million requests through MMKP-MDF and asserts the wall-clock and
//! peak-memory bounds of the lazy kernel (run it with
//! `cargo test --release -p amrm-bench --test profile_smoke -- --ignored`).

use amrm_baselines::MDF_NAME;
use amrm_bench::profile::{run_profile, run_profile_with};
use amrm_metrics::CountingAllocator;

#[global_allocator]
static COUNTING_ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn quick_profile_reports_counters_and_allocations() {
    let report = run_profile(2_000, 11);
    assert!(CountingAllocator::installed());
    assert!(report.peak_alloc_bytes > 0);
    // Two heuristic cells plus the reduced-count EX-MEM exact-path cell.
    assert_eq!(report.cells.len(), 3);
    let exact = &report.cells[2];
    assert_eq!(exact.requests, 20);
    assert!(exact.counters.schedule_calls > 0);
    assert!(exact.allocated_bytes > 0);
    for cell in &report.cells[..2] {
        assert_eq!(cell.requests, 2_000);
        assert!(cell.requests_per_second > 0.0);
        assert!(cell.events_per_second > 0.0);
        // One arrival event per request, plus completions.
        assert!(cell.counters.events >= 2_000);
        assert_eq!(cell.counters.flushes, 2_000);
        assert!(cell.counters.schedule_calls > 0);
        // The run does allocate (requests vector, engine state) — the
        // accounting must see it.
        assert!(cell.allocated_bytes > 0);
        assert!(cell.allocation_calls > 0);
    }
}

#[test]
#[ignore = "release-only million-request throughput bound; run with -- --ignored"]
fn million_request_stream_completes_within_bounds() {
    let requests = 1_000_000;
    let report = run_profile_with(requests, 2020, &[MDF_NAME]);
    let cell = &report.cells[0];
    assert_eq!(cell.requests, requests);
    // Every request was decided (arrival handled) and most were decided
    // cheaply: the kernel must stay event-linear.
    assert!(cell.counters.events >= requests as u64);
    // Wall-clock bound: ~5 s in release on a mid-range core; 120 s is
    // ~25x headroom for slow CI machines (debug builds miss it — use
    // --release).
    assert!(
        cell.wall_seconds < 120.0,
        "1M-request MDF profile took {:.1} s (> 120 s bound)",
        cell.wall_seconds
    );
    // Peak memory bound: the pulled requests/decisions are the only
    // O(requests) state (~50 MiB at 1M); 512 MiB catches any
    // accidentally re-materialized stream or trace accumulation.
    let peak = CountingAllocator::peak_bytes();
    assert!(
        peak < 512 * 1024 * 1024,
        "peak live allocation {:.1} MiB exceeds the 512 MiB bound",
        peak as f64 / (1024.0 * 1024.0)
    );
}
