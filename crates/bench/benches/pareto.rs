//! Pareto-filter throughput on synthetic operating-point clouds — the
//! design-time cost of `amrm-model::pareto_filter`.

use amrm_model::{pareto_filter, OperatingPoint};
use amrm_platform::ResourceVec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64) -> Vec<OperatingPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let l = rng.gen_range(0..5u32);
            let b = rng.gen_range(0..5u32);
            let (l, b) = if l + b == 0 { (1, 0) } else { (l, b) };
            let speed = f64::from(l) + 1.68 * f64::from(b);
            let t = rng.gen_range(5.0..20.0) / speed;
            let e = t * (0.45 * f64::from(l) + 1.6 * f64::from(b)) * rng.gen_range(0.8..1.2);
            OperatingPoint::new(ResourceVec::from_slice(&[l, b]), t, e)
        })
        .collect()
}

fn bench_pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_filter");
    group.sample_size(30);
    for n in [32usize, 256, 2048] {
        let pts = random_points(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| pareto_filter(pts.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pareto);
criterion_main!(benches);
