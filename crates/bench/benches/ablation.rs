//! Ablations of the design choices called out in DESIGN.md:
//!
//! * EX-MEM with vs without the MDF incumbent seed (how much of its speed
//!   comes from branch-and-bound seeding rather than memoization);
//! * MMKP-LR's subgradient iteration budget (the paper fixes 100).

use amrm_baselines::{ExMem, MmkpLr};
use amrm_core::Scheduler;
use amrm_platform::Platform;
use amrm_workload::scenarios;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let platform = Platform::motivational_2l2b();
    let jobs = scenarios::s1_jobs_at_t1();

    let mut group = c.benchmark_group("exmem_seed");
    group.sample_size(30);
    group.bench_function("seeded", |b| {
        b.iter(|| ExMem::new().schedule_at(&jobs, &platform, 1.0))
    });
    group.bench_function("unseeded", |b| {
        b.iter(|| {
            ExMem::new()
                .without_seed()
                .schedule_at(&jobs, &platform, 1.0)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("lr_iterations");
    group.sample_size(40);
    for iters in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(iters), &iters, |b, &n| {
            b.iter(|| MmkpLr::with_iterations(n).schedule_at(&jobs, &platform, 1.0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
