//! Steady-state scheduler overhead by job count — the Criterion companion
//! to Fig. 4 of the paper.
//!
//! Each group benches one algorithm on representative test cases with 1–4
//! jobs drawn from the paper's generator (tight deadlines, feasible for
//! the algorithm under test). EX-MEM at 4 jobs is bounded to few samples:
//! it is the exponential reference, not a runtime candidate.

use amrm_baselines::{ExMem, MmkpLr};
use amrm_core::{MmkpMdf, Scheduler};
use amrm_model::JobSet;
use amrm_platform::Platform;
use amrm_workload::{generate_suite, scenarios, DeadlineLevel, SuiteSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Picks, per job count, the first tight case every algorithm can solve.
fn representative_cases(platform: &Platform) -> Vec<(usize, JobSet)> {
    let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
    let spec = SuiteSpec {
        weak_counts: [0, 0, 0, 0],
        tight_counts: [30, 30, 30, 30],
        ..SuiteSpec::default()
    };
    let suite = generate_suite(&lib, &spec, 2020);
    let mut out = Vec::new();
    for jobs in 1..=4 {
        let found = suite
            .iter()
            .filter(|c| c.num_jobs() == jobs && c.level == DeadlineLevel::Tight)
            .map(|c| c.to_job_set())
            .find(|set| {
                MmkpMdf::new().schedule_at(set, platform, 0.0).is_some()
                    && MmkpLr::new().schedule_at(set, platform, 0.0).is_some()
            });
        if let Some(set) = found {
            out.push((jobs, set));
        }
    }
    out
}

fn bench_schedulers(c: &mut Criterion) {
    let platform = Platform::motivational_2l2b();
    let cases = representative_cases(&platform);

    let mut group = c.benchmark_group("mmkp_mdf");
    group.sample_size(60);
    for (jobs, set) in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), set, |b, set| {
            b.iter(|| MmkpMdf::new().schedule_at(set, &platform, 0.0))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("mmkp_lr");
    group.sample_size(40);
    for (jobs, set) in &cases {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), set, |b, set| {
            b.iter(|| MmkpLr::new().schedule_at(set, &platform, 0.0))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ex_mem");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    for (jobs, set) in cases.iter().filter(|(j, _)| *j <= 3) {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), set, |b, set| {
            b.iter(|| ExMem::new().schedule_at(set, &platform, 0.0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
