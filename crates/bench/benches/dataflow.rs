//! Dataflow-substrate throughput: one self-timed simulation and one full
//! characterization sweep (the design-time cost that replaces the paper's
//! on-board benchmarking).

use amrm_dataflow::{apps, characterize, simulate, CharacterizeConfig, SimConfig};
use amrm_platform::{Platform, ResourceVec};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_dataflow(c: &mut Criterion) {
    let platform = Platform::odroid_xu4();

    let mut group = c.benchmark_group("dataflow");
    group.sample_size(40);

    let graph = apps::audio_filter();
    let alloc = ResourceVec::from_slice(&[4, 4]);
    let cfg = SimConfig::default();
    group.bench_function("simulate_audio_filter_4l4b", |b| {
        b.iter(|| simulate(&graph, &platform, &alloc, &cfg))
    });

    let pedestrian = apps::pedestrian_recognition();
    let ccfg = CharacterizeConfig::default();
    group.bench_function("characterize_pedestrian", |b| {
        b.iter(|| characterize(&pedestrian, &platform, &ccfg))
    });

    group.finish();
}

criterion_group!(benches, bench_dataflow);
criterion_main!(benches);
