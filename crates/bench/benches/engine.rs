//! Execution-engine hot path: the indexed `ExecutionEngine` against the
//! pre-refactor linear-scan accounting, plus the end-to-end
//! `RuntimeManager::run_to_completion` cost on a long Poisson stream.
//!
//! `LinearManager` drives the hidden `LinearScanEngine` through exactly the
//! pre-refactor admission/advance logic, so `linear_scan_pre_refactor` is
//! the old implementation and `indexed_engine` is the new one, with the
//! identical MMKP-MDF scheduler doing the identical work in both.

use amrm_core::{EngineJob, ExecutionEngine, LinearScanEngine, MmkpMdf, Scheduler};
use amrm_dataflow::apps;
use amrm_model::{AppRef, JobId, JobMapping, JobSet, Schedule, Segment};
use amrm_platform::{Platform, EPS};
use amrm_workload::{poisson_stream, scenarios, ScenarioRequest, StreamSpec};
use criterion::{criterion_group, criterion_main, Criterion};

/// The pre-refactor runtime manager, reconstructed over the linear-scan
/// engine: submit re-schedules on arrival, advance walks completions.
struct LinearManager {
    platform: Platform,
    scheduler: MmkpMdf,
    engine: LinearScanEngine,
    next_id: u64,
}

impl LinearManager {
    fn new(platform: Platform) -> Self {
        LinearManager {
            platform,
            scheduler: MmkpMdf::new(),
            engine: LinearScanEngine::new(),
            next_id: 1,
        }
    }

    fn submit(&mut self, app: AppRef, deadline: f64) -> bool {
        let now = self.engine.clock();
        let id = JobId(self.next_id);
        self.next_id += 1;
        let candidate = EngineJob::fresh(id, app, now, deadline);
        let jobs: JobSet = self
            .engine
            .jobs()
            .iter()
            .chain(std::iter::once(&candidate))
            .map(EngineJob::as_job)
            .collect();
        match self.scheduler.schedule_at(&jobs, &self.platform, now) {
            Some(schedule) => {
                self.engine.admit(candidate, schedule);
                true
            }
            None => false,
        }
    }

    fn advance_to(&mut self, t: f64) {
        loop {
            self.engine.retire_finished();
            match self.engine.next_completion() {
                Some(tc) if tc <= t + EPS => {
                    self.engine.consume(tc);
                    self.engine.retire_finished();
                }
                _ => {
                    self.engine.consume(t);
                    self.engine.retire_finished();
                    break;
                }
            }
        }
    }

    fn run_to_completion(&mut self) -> f64 {
        while !self.engine.is_idle() {
            let Some(end) = self.engine.schedule().end_time() else {
                break;
            };
            if end <= self.engine.clock() + EPS {
                break;
            }
            self.advance_to(end);
        }
        self.engine.total_energy()
    }
}

fn run_linear(platform: &Platform, stream: &[ScenarioRequest]) -> f64 {
    let mut rm = LinearManager::new(platform.clone());
    for req in stream {
        rm.advance_to(req.arrival);
        rm.submit(AppRef::clone(&req.app), req.deadline);
    }
    rm.run_to_completion()
}

fn run_indexed(platform: &Platform, stream: &[ScenarioRequest]) -> f64 {
    let mut rm = amrm_core::RuntimeManager::new(platform.clone(), MmkpMdf::new());
    for req in stream {
        rm.advance_to(req.arrival);
        rm.submit(AppRef::clone(&req.app), req.deadline);
    }
    rm.run_to_completion()
}

/// A wide synthetic schedule: `jobs` jobs round-robined over `segments`
/// segments with `width` jobs each — the shape where per-segment scans
/// hurt.
fn synthetic(jobs: usize, segments: usize, width: usize) -> (Vec<EngineJob>, Schedule) {
    let app = scenarios::lambda2();
    let engine_jobs: Vec<EngineJob> = (0..jobs)
        .map(|i| {
            let mut job = EngineJob::fresh(JobId(i as u64 + 1), AppRef::clone(&app), 0.0, 1e9);
            // Half-done jobs: they complete at staggered points inside the
            // schedule, so the completion loop actually turns over.
            job.remaining = 0.5;
            job
        })
        .collect();
    let mut schedule = Schedule::new();
    let dur = 0.05; // short slices: every job needs many segments to finish
    for s in 0..segments {
        let mappings = (0..width)
            .map(|w| JobMapping::new(JobId(((s * width + w) % jobs) as u64 + 1), 0))
            .collect();
        schedule.push(Segment::new(s as f64 * dur, (s + 1) as f64 * dur, mappings));
    }
    (engine_jobs, schedule)
}

macro_rules! drive {
    ($name:ident, $engine:ty) => {
        fn $name(jobs: &[EngineJob], schedule: &Schedule) -> f64 {
            let mut engine = <$engine>::new();
            for (i, job) in jobs.iter().enumerate() {
                if i + 1 == jobs.len() {
                    engine.admit(job.clone(), schedule.clone());
                } else {
                    engine.admit(job.clone(), Schedule::new());
                }
            }
            while let Some(tc) = engine.next_completion() {
                engine.consume(tc);
                engine.retire_finished();
            }
            if let Some(end) = schedule.end_time() {
                engine.consume(end);
            }
            engine.total_energy()
        }
    };
}

drive!(drive_indexed, ExecutionEngine);
drive!(drive_linear, LinearScanEngine);

fn bench_engine(c: &mut Criterion) {
    let platform = Platform::odroid_xu4();
    let library = apps::benchmark_suite(&platform);
    let spec = StreamSpec {
        requests: 150,
        slack_range: (1.2, 3.0),
    };
    let stream = poisson_stream(&library, 4.0, &spec, 2020);

    // Both managers must agree before their timings mean anything.
    let e_linear = run_linear(&platform, &stream);
    let e_indexed = run_indexed(&platform, &stream);
    assert!(
        (e_linear - e_indexed).abs() < 1e-6,
        "engines diverged: linear {e_linear} vs indexed {e_indexed}"
    );

    let mut group = c.benchmark_group("run_to_completion_150req_poisson");
    group.sample_size(10);
    group.bench_function("linear_scan_pre_refactor", |b| {
        b.iter(|| run_linear(&platform, &stream))
    });
    group.bench_function("indexed_engine", |b| {
        b.iter(|| run_indexed(&platform, &stream))
    });
    group.finish();

    let (jobs, schedule) = synthetic(96, 1200, 12);
    let s_linear = drive_linear(&jobs, &schedule);
    let s_indexed = drive_indexed(&jobs, &schedule);
    assert!((s_linear - s_indexed).abs() < 1e-6, "hot path diverged");

    let mut group = c.benchmark_group("engine_hotpath_96jobs_1200segs");
    group.sample_size(10);
    group.bench_function("linear_scan_pre_refactor", |b| {
        b.iter(|| drive_linear(&jobs, &schedule))
    });
    group.bench_function("indexed_engine", |b| {
        b.iter(|| drive_indexed(&jobs, &schedule))
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
