//! Suite evaluation: run every scheduler over every test case and collect
//! feasibility, energy and search time.

use std::time::Instant;

use amrm_baselines::{ExMem, MmkpLr};
use amrm_core::{MmkpMdf, Scheduler};
use amrm_platform::Platform;
use amrm_workload::{DeadlineLevel, TestCase};
use serde::{Deserialize, Serialize};

/// Index of EX-MEM in [`scheduler_names`] and every per-scheduler array.
pub const EXMEM: usize = 0;
/// Index of MMKP-LR.
pub const LR: usize = 1;
/// Index of MMKP-MDF.
pub const MDF: usize = 2;

/// The evaluated algorithms, in the order used by all result arrays.
pub fn scheduler_names() -> [&'static str; 3] {
    ["EX-MEM", "MMKP-LR", "MMKP-MDF"]
}

fn make_scheduler(idx: usize) -> Box<dyn Scheduler> {
    match idx {
        EXMEM => Box::new(ExMem::new()),
        LR => Box::new(MmkpLr::new()),
        MDF => Box::new(MmkpMdf::new()),
        _ => unreachable!("unknown scheduler index"),
    }
}

/// Result of one scheduler on one test case.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SchedResult {
    /// Whether a feasible (and validated) schedule was found.
    pub feasible: bool,
    /// Energy of the schedule (objective 2a); meaningless if infeasible.
    pub energy: f64,
    /// Wall-clock search time in seconds.
    pub seconds: f64,
}

/// Results of all schedulers on one test case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseResult {
    /// Suite-wide case id.
    pub case_id: usize,
    /// Deadline tightness of the case.
    pub level: DeadlineLevel,
    /// Number of jobs (1–4).
    pub num_jobs: usize,
    /// Per-scheduler outcomes, indexed by [`EXMEM`]/[`LR`]/[`MDF`].
    pub schedulers: [SchedResult; 3],
}

/// Evaluates one case with every scheduler (validating each schedule).
pub fn evaluate_case(case: &TestCase, platform: &Platform) -> CaseResult {
    let jobs = case.to_job_set();
    let schedulers: [SchedResult; 3] = std::array::from_fn(|idx| {
        let mut scheduler = make_scheduler(idx);
        let t0 = Instant::now();
        let schedule = scheduler.schedule(&jobs, platform, 0.0);
        let seconds = t0.elapsed().as_secs_f64();
        match schedule {
            Some(s) if s.validate(&jobs, platform, 0.0).is_ok() => SchedResult {
                feasible: true,
                energy: s.energy(&jobs),
                seconds,
            },
            _ => SchedResult {
                feasible: false,
                energy: f64::NAN,
                seconds,
            },
        }
    });
    CaseResult {
        case_id: case.id,
        level: case.level,
        num_jobs: case.num_jobs(),
        schedulers,
    }
}

/// Evaluates a whole suite, fanning the cases out over `threads` OS
/// threads.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn evaluate_suite(cases: &[TestCase], platform: &Platform, threads: usize) -> Vec<CaseResult> {
    assert!(threads > 0, "need at least one worker thread");
    if threads == 1 || cases.len() < 2 {
        return cases.iter().map(|c| evaluate_case(c, platform)).collect();
    }
    let mut results: Vec<Option<CaseResult>> = vec![None; cases.len()];
    let chunk = cases.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (case_chunk, out_chunk) in cases.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (case, slot) in case_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(evaluate_case(case, platform));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled by workers"))
        .collect()
}

/// Scheduling success rate (%) per scheduler for a (level, #jobs) bucket —
/// the bars of Fig. 2.
pub fn scheduling_rate(
    results: &[CaseResult],
    level: DeadlineLevel,
    num_jobs: usize,
) -> Option<[f64; 3]> {
    let bucket: Vec<&CaseResult> = results
        .iter()
        .filter(|r| r.level == level && r.num_jobs == num_jobs)
        .collect();
    if bucket.is_empty() {
        return None;
    }
    Some(std::array::from_fn(|idx| {
        let ok = bucket.iter().filter(|r| r.schedulers[idx].feasible).count();
        100.0 * ok as f64 / bucket.len() as f64
    }))
}

/// Relative energies vs EX-MEM for scheduler `idx` over a bucket (cases
/// where both the scheduler and EX-MEM found a schedule) — the samples
/// behind Table IV and Fig. 3.
pub fn relative_energies(
    results: &[CaseResult],
    idx: usize,
    level: Option<DeadlineLevel>,
    num_jobs: Option<usize>,
) -> Vec<f64> {
    results
        .iter()
        .filter(|r| level.is_none_or(|l| r.level == l))
        .filter(|r| num_jobs.is_none_or(|n| r.num_jobs == n))
        .filter(|r| r.schedulers[idx].feasible && r.schedulers[EXMEM].feasible)
        .map(|r| {
            let rel = r.schedulers[idx].energy / r.schedulers[EXMEM].energy;
            // Guard against heuristics occasionally *tying* the optimum
            // within float noise: clamp to 1.0 from below.
            rel.max(1.0)
        })
        .collect()
}

/// Search times (seconds) of scheduler `idx` over cases with `num_jobs`
/// jobs — the samples behind Fig. 4.
pub fn search_times(results: &[CaseResult], idx: usize, num_jobs: usize) -> Vec<f64> {
    results
        .iter()
        .filter(|r| r.num_jobs == num_jobs)
        .map(|r| r.schedulers[idx].seconds)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_workload::{generate_suite, scenarios, SuiteSpec};

    fn small_suite() -> Vec<TestCase> {
        let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
        let spec = SuiteSpec {
            weak_counts: [2, 3, 2, 0],
            tight_counts: [2, 3, 2, 0],
            ..SuiteSpec::default()
        };
        generate_suite(&lib, &spec, 99)
    }

    #[test]
    fn exmem_is_never_beaten() {
        let platform = scenarios::platform();
        let results = evaluate_suite(&small_suite(), &platform, 1);
        for r in &results {
            if r.schedulers[EXMEM].feasible {
                for idx in [LR, MDF] {
                    if r.schedulers[idx].feasible {
                        assert!(
                            r.schedulers[idx].energy >= r.schedulers[EXMEM].energy - 1e-6,
                            "case {}: {} beat EX-MEM",
                            r.case_id,
                            scheduler_names()[idx]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exmem_schedules_whenever_heuristics_do() {
        let platform = scenarios::platform();
        let results = evaluate_suite(&small_suite(), &platform, 1);
        for r in &results {
            if r.schedulers[MDF].feasible || r.schedulers[LR].feasible {
                assert!(
                    r.schedulers[EXMEM].feasible,
                    "case {}: EX-MEM missed a feasible case",
                    r.case_id
                );
            }
        }
    }

    #[test]
    fn parallel_and_serial_agree_on_feasibility() {
        let platform = scenarios::platform();
        let suite = small_suite();
        let serial = evaluate_suite(&suite, &platform, 1);
        let parallel = evaluate_suite(&suite, &platform, 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.case_id, b.case_id);
            for idx in 0..3 {
                assert_eq!(a.schedulers[idx].feasible, b.schedulers[idx].feasible);
                if a.schedulers[idx].feasible {
                    assert!((a.schedulers[idx].energy - b.schedulers[idx].energy).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn single_job_relative_energy_is_one() {
        let platform = scenarios::platform();
        let results = evaluate_suite(&small_suite(), &platform, 1);
        for idx in [LR, MDF] {
            for rel in relative_energies(
                &results
                    .iter()
                    .filter(|r| r.num_jobs == 1)
                    .cloned()
                    .collect::<Vec<_>>(),
                idx,
                None,
                Some(1),
            ) {
                assert!((rel - 1.0).abs() < 1e-6, "{idx}: rel {rel}");
            }
        }
    }

    #[test]
    fn rates_are_percentages() {
        let platform = scenarios::platform();
        let results = evaluate_suite(&small_suite(), &platform, 2);
        for level in [DeadlineLevel::Weak, DeadlineLevel::Tight] {
            for jobs in 1..=3 {
                if let Some(rates) = scheduling_rate(&results, level, jobs) {
                    for r in rates {
                        assert!((0.0..=100.0).contains(&r));
                    }
                }
            }
        }
        assert!(scheduling_rate(&results, DeadlineLevel::Weak, 4).is_none());
    }

    #[test]
    fn search_times_are_positive() {
        let platform = scenarios::platform();
        let results = evaluate_suite(&small_suite(), &platform, 1);
        for idx in 0..3 {
            for t in search_times(&results, idx, 2) {
                assert!(t >= 0.0);
            }
        }
    }
}
