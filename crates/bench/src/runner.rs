//! Suite evaluation: run every registered scheduler over every test case
//! and collect feasibility, energy and search time.
//!
//! The set of algorithms is not hard-coded: callers hand in a
//! [`SchedulerRegistry`] (usually [`amrm_baselines::standard_registry`])
//! and every result row carries one [`SchedResult`] per registered
//! scheduler, in registry order. Result queries are by scheduler *name*,
//! so reports keep working when schedulers are added or reordered.

use std::time::Instant;

use amrm_core::fanout::for_each_cell;
use amrm_core::{Scheduler, SchedulerRegistry};
use amrm_platform::Platform;
use amrm_workload::{DeadlineLevel, TestCase};
use serde::{Deserialize, Serialize};

/// Result of one scheduler on one test case.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SchedResult {
    /// Whether a feasible (and validated) schedule was found.
    pub feasible: bool,
    /// Energy of the schedule (objective 2a); meaningless if infeasible.
    pub energy: f64,
    /// Wall-clock search time in seconds.
    pub seconds: f64,
}

/// Results of all schedulers on one test case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseResult {
    /// Suite-wide case id.
    pub case_id: usize,
    /// Deadline tightness of the case.
    pub level: DeadlineLevel,
    /// Number of jobs (1–4).
    pub num_jobs: usize,
    /// Per-scheduler outcomes, in the registry order recorded by the
    /// enclosing [`SuiteEvaluation`].
    pub schedulers: Vec<SchedResult>,
}

/// A whole suite's results plus the scheduler enumeration they are keyed
/// by.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteEvaluation {
    /// Scheduler names, in the column order of every
    /// [`CaseResult::schedulers`] vector.
    pub scheduler_names: Vec<String>,
    /// One row per test case, in input order.
    pub results: Vec<CaseResult>,
}

impl SuiteEvaluation {
    /// The column index of `scheduler`, if registered for this run.
    pub fn index_of(&self, scheduler: &str) -> Option<usize> {
        self.scheduler_names.iter().position(|n| n == scheduler)
    }

    /// Scheduling success rate (%) per scheduler for a (level, #jobs)
    /// bucket — the bars of Fig. 2. Returns `None` for an empty bucket.
    ///
    /// The returned vector is aligned with
    /// [`scheduler_names`](SuiteEvaluation::scheduler_names).
    pub fn scheduling_rate(&self, level: DeadlineLevel, num_jobs: usize) -> Option<Vec<f64>> {
        let bucket: Vec<&CaseResult> = self
            .results
            .iter()
            .filter(|r| r.level == level && r.num_jobs == num_jobs)
            .collect();
        if bucket.is_empty() {
            return None;
        }
        Some(
            (0..self.scheduler_names.len())
                .map(|idx| {
                    let ok = bucket.iter().filter(|r| r.schedulers[idx].feasible).count();
                    100.0 * ok as f64 / bucket.len() as f64
                })
                .collect(),
        )
    }

    /// Relative energies of `scheduler` vs `reference` over a bucket
    /// (cases where both found a schedule) — the samples behind Table IV
    /// and Fig. 3. Empty if either name is unknown.
    ///
    /// When the reference is the optimal EX-MEM, ratios are clamped to
    /// `≥ 1.0`: a heuristic can only *tie* the optimum, so sub-1 values
    /// are float noise. Any other reference can genuinely be beaten, so
    /// ratios are reported as-is.
    pub fn relative_energies(
        &self,
        scheduler: &str,
        reference: &str,
        level: Option<DeadlineLevel>,
        num_jobs: Option<usize>,
    ) -> Vec<f64> {
        let (Some(idx), Some(ref_idx)) = (self.index_of(scheduler), self.index_of(reference))
        else {
            return Vec::new();
        };
        let reference_is_optimal = reference == amrm_baselines::EXMEM_NAME;
        self.results
            .iter()
            .filter(|r| level.is_none_or(|l| r.level == l))
            .filter(|r| num_jobs.is_none_or(|n| r.num_jobs == n))
            .filter(|r| r.schedulers[idx].feasible && r.schedulers[ref_idx].feasible)
            .map(|r| {
                let rel = r.schedulers[idx].energy / r.schedulers[ref_idx].energy;
                if reference_is_optimal {
                    rel.max(1.0)
                } else {
                    rel
                }
            })
            .collect()
    }

    /// Search times (seconds) of `scheduler` over cases with `num_jobs`
    /// jobs — the samples behind Fig. 4. Empty if the name is unknown.
    pub fn search_times(&self, scheduler: &str, num_jobs: usize) -> Vec<f64> {
        let Some(idx) = self.index_of(scheduler) else {
            return Vec::new();
        };
        self.results
            .iter()
            .filter(|r| r.num_jobs == num_jobs)
            .map(|r| r.schedulers[idx].seconds)
            .collect()
    }

    /// A copy of this evaluation restricted to the cases accepted by
    /// `keep`.
    pub fn filtered(&self, keep: impl Fn(&CaseResult) -> bool) -> SuiteEvaluation {
        SuiteEvaluation {
            scheduler_names: self.scheduler_names.clone(),
            results: self.results.iter().filter(|r| keep(r)).cloned().collect(),
        }
    }
}

/// Runs one (case, scheduler) cell: instantiate, schedule, validate,
/// time.
fn evaluate_cell(
    jobs: &amrm_model::JobSet,
    platform: &Platform,
    registry: &SchedulerRegistry,
    scheduler_idx: usize,
) -> SchedResult {
    let mut scheduler = registry
        .create_at(scheduler_idx)
        .expect("scheduler index in range");
    let t0 = Instant::now();
    let schedule = scheduler.schedule_at(jobs, platform, 0.0);
    let seconds = t0.elapsed().as_secs_f64();
    match schedule {
        Some(s) if s.validate(jobs, platform, 0.0).is_ok() => SchedResult {
            feasible: true,
            energy: s.energy(jobs),
            seconds,
        },
        _ => SchedResult {
            feasible: false,
            energy: f64::NAN,
            seconds,
        },
    }
}

/// Evaluates one case with every registered scheduler (validating each
/// schedule).
pub fn evaluate_case(
    case: &TestCase,
    platform: &Platform,
    registry: &SchedulerRegistry,
) -> CaseResult {
    let jobs = case.to_job_set();
    CaseResult {
        case_id: case.id,
        level: case.level,
        num_jobs: case.num_jobs(),
        schedulers: (0..registry.len())
            .map(|idx| evaluate_cell(&jobs, platform, registry, idx))
            .collect(),
    }
}

/// Evaluates a whole suite with every scheduler in `registry`, fanning
/// *individual (case × scheduler) cells* out over `threads` OS threads
/// via the shared [`for_each_cell`] work index (also used by the
/// admission grid and the load sweeps).
///
/// Per-cell stealing matters because scheduler costs are wildly uneven:
/// one EX-MEM cell can outlast hundreds of heuristic cells, and under the
/// old per-case chunking a chunk containing a hard EX-MEM case stalled
/// its whole thread while the others sat idle.
///
/// # Panics
///
/// Panics if `threads` is zero or the registry is empty.
pub fn evaluate_suite(
    cases: &[TestCase],
    platform: &Platform,
    threads: usize,
    registry: &SchedulerRegistry,
) -> SuiteEvaluation {
    assert!(threads > 0, "need at least one worker thread");
    assert!(
        !registry.is_empty(),
        "registry must hold at least one scheduler"
    );
    let scheduler_names: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
    let columns = registry.len();
    // Job sets are shared across a case's cells, so build them once.
    let job_sets: Vec<amrm_model::JobSet> = cases.iter().map(TestCase::to_job_set).collect();
    let flat = for_each_cell(cases.len() * columns, threads, |i| {
        evaluate_cell(&job_sets[i / columns], platform, registry, i % columns)
    });

    let mut flat = flat.into_iter();
    SuiteEvaluation {
        scheduler_names,
        results: cases
            .iter()
            .map(|case| CaseResult {
                case_id: case.id,
                level: case.level,
                num_jobs: case.num_jobs(),
                schedulers: (&mut flat).take(columns).collect(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_baselines::{standard_registry, EXMEM_NAME, LR_NAME, MDF_NAME};
    use amrm_workload::{generate_suite, scenarios, SuiteSpec};

    fn small_suite() -> Vec<TestCase> {
        let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
        let spec = SuiteSpec {
            weak_counts: [2, 3, 2, 0],
            tight_counts: [2, 3, 2, 0],
            ..SuiteSpec::default()
        };
        generate_suite(&lib, &spec, 99)
    }

    #[test]
    fn evaluation_covers_all_registered_schedulers() {
        let platform = scenarios::platform();
        let registry = standard_registry();
        let eval = evaluate_suite(&small_suite(), &platform, 1, &registry);
        assert_eq!(eval.scheduler_names.len(), registry.len());
        for r in &eval.results {
            assert_eq!(r.schedulers.len(), registry.len());
        }
        // FIXED and INCREMENTAL are evaluated alongside the paper's three.
        assert!(eval.index_of("FIXED").is_some());
        assert!(eval.index_of("INCREMENTAL").is_some());
    }

    #[test]
    fn exmem_is_never_beaten() {
        let platform = scenarios::platform();
        let eval = evaluate_suite(&small_suite(), &platform, 1, &standard_registry());
        let opt = eval.index_of(EXMEM_NAME).unwrap();
        for r in &eval.results {
            if r.schedulers[opt].feasible {
                for (idx, name) in eval.scheduler_names.iter().enumerate() {
                    if idx != opt && r.schedulers[idx].feasible {
                        assert!(
                            r.schedulers[idx].energy >= r.schedulers[opt].energy - 1e-6,
                            "case {}: {} beat EX-MEM",
                            r.case_id,
                            name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exmem_schedules_whenever_heuristics_do() {
        let platform = scenarios::platform();
        let eval = evaluate_suite(&small_suite(), &platform, 1, &standard_registry());
        let opt = eval.index_of(EXMEM_NAME).unwrap();
        let mdf = eval.index_of(MDF_NAME).unwrap();
        let lr = eval.index_of(LR_NAME).unwrap();
        for r in &eval.results {
            if r.schedulers[mdf].feasible || r.schedulers[lr].feasible {
                assert!(
                    r.schedulers[opt].feasible,
                    "case {}: EX-MEM missed a feasible case",
                    r.case_id
                );
            }
        }
    }

    #[test]
    fn parallel_and_serial_agree_on_feasibility() {
        let platform = scenarios::platform();
        let suite = small_suite();
        let registry = standard_registry();
        let serial = evaluate_suite(&suite, &platform, 1, &registry);
        let parallel = evaluate_suite(&suite, &platform, 4, &registry);
        assert_eq!(serial.scheduler_names, parallel.scheduler_names);
        for (a, b) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(a.case_id, b.case_id);
            for idx in 0..serial.scheduler_names.len() {
                assert_eq!(a.schedulers[idx].feasible, b.schedulers[idx].feasible);
                if a.schedulers[idx].feasible {
                    assert!((a.schedulers[idx].energy - b.schedulers[idx].energy).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn single_job_relative_energy_is_one() {
        let platform = scenarios::platform();
        let eval = evaluate_suite(&small_suite(), &platform, 1, &standard_registry());
        let singles = eval.filtered(|r| r.num_jobs == 1);
        for name in [LR_NAME, MDF_NAME] {
            for rel in singles.relative_energies(name, EXMEM_NAME, None, Some(1)) {
                assert!((rel - 1.0).abs() < 1e-6, "{name}: rel {rel}");
            }
        }
    }

    #[test]
    fn rates_are_percentages() {
        let platform = scenarios::platform();
        let eval = evaluate_suite(&small_suite(), &platform, 2, &standard_registry());
        for level in [DeadlineLevel::Weak, DeadlineLevel::Tight] {
            for jobs in 1..=3 {
                if let Some(rates) = eval.scheduling_rate(level, jobs) {
                    assert_eq!(rates.len(), eval.scheduler_names.len());
                    for r in rates {
                        assert!((0.0..=100.0).contains(&r));
                    }
                }
            }
        }
        assert!(eval.scheduling_rate(DeadlineLevel::Weak, 4).is_none());
    }

    #[test]
    fn search_times_are_positive() {
        let platform = scenarios::platform();
        let eval = evaluate_suite(&small_suite(), &platform, 1, &standard_registry());
        for name in &eval.scheduler_names {
            for t in eval.search_times(name, 2) {
                assert!(t >= 0.0);
            }
        }
    }

    #[test]
    fn non_optimal_references_are_not_clamped() {
        let platform = scenarios::platform();
        let eval = evaluate_suite(&small_suite(), &platform, 1, &standard_registry());
        // MDF frequently beats FIXED; against a non-optimal reference the
        // sub-1.0 ratios must survive.
        let rel = eval.relative_energies(MDF_NAME, "FIXED", None, None);
        assert!(!rel.is_empty());
        assert!(
            rel.iter().any(|&r| r < 1.0),
            "expected MDF to beat FIXED somewhere: {rel:?}"
        );
        // Against EX-MEM the clamp still applies.
        for r in eval.relative_energies(MDF_NAME, EXMEM_NAME, None, None) {
            assert!(r >= 1.0);
        }
    }

    #[test]
    fn unknown_scheduler_names_yield_empty_samples() {
        let platform = scenarios::platform();
        let eval = evaluate_suite(&small_suite()[..2], &platform, 1, &standard_registry());
        assert!(eval
            .relative_energies("NOPE", EXMEM_NAME, None, None)
            .is_empty());
        assert!(eval.search_times("NOPE", 1).is_empty());
        assert!(eval.index_of("NOPE").is_none());
    }

    #[test]
    fn custom_registry_restricts_columns() {
        let platform = scenarios::platform();
        let registry = standard_registry().subset(&[MDF_NAME]);
        let eval = evaluate_suite(&small_suite()[..3], &platform, 1, &registry);
        assert_eq!(eval.scheduler_names, vec![MDF_NAME.to_string()]);
        for r in &eval.results {
            assert_eq!(r.schedulers.len(), 1);
        }
    }
}
