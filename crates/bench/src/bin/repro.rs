//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [COMMAND] [--seed N] [--threads N] [--quick] [--suite-out FILE]
//!       [--json FILE] [--schedulers A,B,...]
//!
//! COMMANDS
//!   table2      Table II  — motivational operating points
//!   motivation  Table I + Figure 1 — the three management scenarios
//!   table3      Table III — test-case counts
//!   fig2        Figure 2  — scheduling rate (tight deadlines)
//!   table4      Table IV  — geomean relative energy vs EX-MEM
//!   fig3        Figure 3  — S-curves of relative energy
//!   fig4        Figure 4  — search-time box plots
//!   ablation    extensions: job-order policy, online admission, DVFS
//!   admission   extension: stream × admission-policy × scheduler A/B grid
//!               (Immediate/BatchK/WindowTau plus the adaptive
//!               AdaptiveBatch/SlackAware on Poisson and bursty streams;
//!               every scheduler — budgeted EX-MEM and META included —
//!               runs every stream under the online search budget)
//!   sweep       extension: acceptance/energy curves over an offered-load
//!               grid × schedulers × admission policies
//!   tune        extension: deterministic grid/random parameter fitting
//!               for the AIMD constants, the SlackAware margin and the
//!               META regime thresholds (poisson + bursty + diurnal
//!               streams; --json writes the TuneReport artifact)
//!   profile     streaming-kernel throughput: a lazily generated diurnal
//!               stream (1M requests; --quick: 20k) through MMKP-MDF and
//!               META in lean mode, reporting requests/s, events/s and
//!               the hot-path instrumentation counters (--json writes
//!               the ProfileReport; --baseline F enforces the events/s
//!               floor against a recorded BENCH_baseline.json)
//!   shard       sharded-federation weak scaling: shard counts × routing
//!               policies (RoundRobin/JSQ/EnergyAware/HashAffinity) over
//!               one dispatched arrival stream at fixed per-shard load
//!               (40k requests/shard; --quick: 2k), plus skewed-routing
//!               rows on a hotspot stream and one work-stealing row
//!               (--json writes the ShardReport)
//!   trace       event-journal trace: a bursty stream through 4 META
//!               shards under batched admission with hash-affinity
//!               routing and work stealing, the structured journal
//!               enabled end to end (20k requests; --quick: 2k);
//!               reports events by kind and rejects by reason
//!               (--json writes the TraceReport; --sample N keeps one
//!               request lifecycle in N; --out writes a Perfetto-loadable
//!               Chrome trace-event file)
//!   lint        determinism lint: the tidy-style amrm-lint pass over the
//!               workspace sources (wall-clock reads, HashMap iteration,
//!               derive(Default) drift, fan-out accumulation, bare
//!               unwraps, unseeded RNGs, tie-break enum repr, stale
//!               allowlist entries, library prints, partial_cmp) with
//!               the committed lint.allow exceptions; exits non-zero on
//!               any violation (--json writes the LintReport; --root
//!               scans another tree, e.g. the lint fixtures)
//!   exact       EX-MEM exact path at scale: capped-vs-uncapped candidate
//!               ranking on the bursty grid stream (truncation A/B at one
//!               node budget), then cold-solve vs warm-start replay of a
//!               calm stream through the persistent mapping cache
//!               (--json writes the ExactReport; --cache-out saves the
//!               cold run's proof cache; --warm-cache replays from a
//!               previously saved cache file)
//!   all         everything above except `ablation`/`admission`/`sweep`/
//!               `tune`/`profile`/`shard`/`trace`/`exact` (default)
//!
//! OPTIONS
//!   --seed N         RNG seed for suite generation (default 2020)
//!   --threads N      worker threads (default: available parallelism)
//!   --quick          divide all Table III counts by 10 (smoke run);
//!                    shrinks the sweep grid and profile stream likewise
//!   --requests N     profile stream length (profile only; overrides the
//!                    1M/20k default)
//!   --baseline F     compare the profile against the profile cells
//!                    recorded in baseline JSON F and fail below the
//!                    events/s floor (profile only)
//!   --sample N       journal one request lifecycle in N, deterministic
//!                    by arrival ordinal (trace only; default 0 = all)
//!   --out F          write the Chrome trace-event (Perfetto) file to F
//!                    (trace only)
//!   --cache-out F    save the cold run's mapping cache (proofs only) to F
//!                    (exact only)
//!   --root DIR       scan root for the lint pass (lint only; default:
//!                    the workspace root this binary was built from)
//!   --warm-cache F   replay warm from the mapping cache saved at F
//!                    (exact only)
//!   --suite-out F    save the generated suite as JSON
//!   --json F         with suite commands: write per-scheduler energy/
//!                    feasibility/search-time aggregates plus the
//!                    admission-policy grid to F; with `sweep`: write the
//!                    sweep cells to F
//!   --schedulers L   comma-separated registry subset to evaluate (suite
//!                    commands, ablation, admission and sweep; default:
//!                    every registered scheduler). Excluding EX-MEM
//!                    unlocks full-length admission-grid streams (even
//!                    budgeted, the exhaustive reference bounds them)
//! ```

use std::process::ExitCode;

use amrm_baselines::{standard_registry, EXMEM_NAME};
use amrm_bench::runner::evaluate_suite;
use amrm_bench::{admission, baseline, reports, sweep, tune};
use amrm_core::{SchedulerRegistry, SearchBudget};
use amrm_dataflow::apps;
use amrm_model::AppRef;
use amrm_platform::Platform;
use amrm_workload::{generate_suite, save_suite, StreamSpec, SuiteSpec};

// Opt-in allocation accounting for `repro profile`: build with
// `--features count-alloc` to report per-run allocation tallies.
#[cfg(feature = "count-alloc")]
#[global_allocator]
static COUNTING_ALLOCATOR: amrm_metrics::CountingAllocator = amrm_metrics::CountingAllocator;

struct Options {
    command: String,
    seed: u64,
    threads: usize,
    quick: bool,
    suite_out: Option<String>,
    json_out: Option<String>,
    schedulers: Option<Vec<String>>,
    requests: Option<usize>,
    baseline_in: Option<String>,
    sample: Option<u64>,
    trace_out: Option<String>,
    warm_cache: Option<String>,
    cache_out: Option<String>,
    lint_root: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        command: "all".to_string(),
        seed: 2020,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        quick: false,
        suite_out: None,
        json_out: None,
        schedulers: None,
        requests: None,
        baseline_in: None,
        sample: None,
        trace_out: None,
        warm_cache: None,
        cache_out: None,
        lint_root: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
            }
            "--quick" => opts.quick = true,
            "--suite-out" => {
                opts.suite_out = Some(args.next().ok_or("--suite-out needs a path")?);
            }
            "--json" => {
                opts.json_out = Some(args.next().ok_or("--json needs a path")?);
            }
            "--schedulers" => {
                let list = args.next().ok_or("--schedulers needs a list")?;
                opts.schedulers = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--requests" => {
                opts.requests = Some(
                    args.next()
                        .ok_or("--requests needs a value")?
                        .parse()
                        .map_err(|e| format!("bad request count: {e}"))?,
                );
            }
            "--baseline" => {
                opts.baseline_in = Some(args.next().ok_or("--baseline needs a path")?);
            }
            "--sample" => {
                opts.sample = Some(
                    args.next()
                        .ok_or("--sample needs a value")?
                        .parse()
                        .map_err(|e| format!("bad sample divisor: {e}"))?,
                );
            }
            "--out" => {
                opts.trace_out = Some(args.next().ok_or("--out needs a path")?);
            }
            "--warm-cache" => {
                opts.warm_cache = Some(args.next().ok_or("--warm-cache needs a path")?);
            }
            "--cache-out" => {
                opts.cache_out = Some(args.next().ok_or("--cache-out needs a path")?);
            }
            "--root" => {
                opts.lint_root = Some(args.next().ok_or("--root needs a directory")?);
            }
            "--help" | "-h" => {
                return Err("help".to_string());
            }
            cmd if !cmd.starts_with('-') => opts.command = cmd.to_string(),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

/// Runs the stream × policy × scheduler admission grid for the `admission`
/// command and the `--json` baseline embedding (both report the same
/// cells). Every scheduler runs every stream — bursty included — under
/// the online [`SearchBudget`]: the anytime EX-MEM degrades to its MDF
/// fallback instead of hanging when bursts stack ~15 concurrent jobs.
/// EX-MEM — when present — still bounds the stream *length* (even
/// budgeted, thousands of exhaustive activations dominate the grid); an
/// explicit `--schedulers` subset without it unlocks full-length streams.
fn run_admission_grid(
    platform: &Platform,
    library: &[AppRef],
    registry: &SchedulerRegistry,
    opts: &Options,
) -> Vec<admission::AdmissionCell> {
    let with_exmem = registry.index_of(EXMEM_NAME).is_some();
    let streams = admission::standard_streams(library, opts.quick, opts.seed, with_exmem);
    let policies = admission::standard_policies();
    let stream_refs: Vec<(&str, &[amrm_workload::ScenarioRequest])> = streams
        .iter()
        .map(|(label, stream)| (*label, stream.as_slice()))
        .collect();
    eprintln!(
        "running admission grid: {} streams × {} policies × {} schedulers ({}), {} requests each ...",
        streams.len(),
        policies.len(),
        registry.len(),
        registry.names().join(", "),
        streams.first().map(|(_, s)| s.len()).unwrap_or(0)
    );
    admission::admission_grid(
        platform,
        registry,
        &policies,
        &stream_refs,
        opts.threads,
        SearchBudget::online(),
    )
}

/// Resolves the evaluation registry: the full standard registry, or the
/// `--schedulers` subset of it.
fn resolve_registry(opts: &Options) -> Result<SchedulerRegistry, String> {
    let standard = standard_registry();
    let Some(requested) = &opts.schedulers else {
        return Ok(standard);
    };
    for name in requested {
        if standard.index_of(name).is_none() {
            return Err(format!(
                "unknown scheduler `{name}` (registered: {})",
                standard.names().join(", ")
            ));
        }
    }
    let names: Vec<&str> = requested.iter().map(String::as_str).collect();
    Ok(standard.subset(&names))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg != "help" {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: repro [table2|motivation|table3|fig2|table4|fig3|fig4|ablation|\
                 admission|sweep|tune|profile|shard|trace|lint|exact|all] [--seed N] \
                 [--threads N] [--quick] [--suite-out FILE] [--json FILE] \
                 [--schedulers A,B,...] [--requests N] [--baseline FILE] [--sample N] \
                 [--out FILE] [--warm-cache FILE] [--cache-out FILE] [--root DIR]"
            );
            return if msg == "help" {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };
    let registry = match resolve_registry(&opts) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    // Reject flags the selected command would silently ignore.
    let evaluates_suite = matches!(
        opts.command.as_str(),
        "fig2" | "table4" | "fig3" | "fig4" | "all"
    );
    if opts.json_out.is_some()
        && !evaluates_suite
        && opts.command != "sweep"
        && opts.command != "tune"
        && opts.command != "profile"
        && opts.command != "shard"
        && opts.command != "trace"
        && opts.command != "exact"
        && opts.command != "lint"
    {
        eprintln!(
            "error: --json only applies to commands that evaluate the suite \
             (fig2, table4, fig3, fig4, all), `sweep`, `tune`, `profile`, `shard`, \
             `trace`, `lint` or `exact`, not `{}`",
            opts.command
        );
        return ExitCode::FAILURE;
    }
    if opts.lint_root.is_some() && opts.command != "lint" {
        eprintln!(
            "error: --root only applies to `lint`, not `{}`",
            opts.command
        );
        return ExitCode::FAILURE;
    }
    if (opts.warm_cache.is_some() || opts.cache_out.is_some()) && opts.command != "exact" {
        eprintln!(
            "error: --warm-cache/--cache-out only apply to `exact`, not `{}`",
            opts.command
        );
        return ExitCode::FAILURE;
    }
    if (opts.sample.is_some() || opts.trace_out.is_some()) && opts.command != "trace" {
        eprintln!(
            "error: --sample/--out only apply to `trace`, not `{}`",
            opts.command
        );
        return ExitCode::FAILURE;
    }
    if (opts.requests.is_some() || opts.baseline_in.is_some()) && opts.command != "profile" {
        eprintln!(
            "error: --requests/--baseline only apply to `profile`, not `{}`",
            opts.command
        );
        return ExitCode::FAILURE;
    }
    if opts.requests == Some(0) {
        eprintln!("error: --requests must be at least 1");
        return ExitCode::FAILURE;
    }
    if opts.schedulers.is_some()
        && !evaluates_suite
        && opts.command != "ablation"
        && opts.command != "admission"
        && opts.command != "sweep"
    {
        eprintln!(
            "error: --schedulers only applies to suite evaluation, `ablation`, `admission` \
             or `sweep`, not `{}` (the tune search and the shard bench own their \
             scheduler sets)",
            opts.command
        );
        return ExitCode::FAILURE;
    }

    let needs_suite = matches!(
        opts.command.as_str(),
        "table3" | "fig2" | "table4" | "fig3" | "fig4" | "all"
    );
    if opts.suite_out.is_some() && !needs_suite {
        eprintln!(
            "error: --suite-out only applies to commands that generate the suite \
             (table3, fig2, table4, fig3, fig4, all), not `{}`",
            opts.command
        );
        return ExitCode::FAILURE;
    }

    if opts.command == "lint" {
        // The binary is built from crates/bench, two levels below the
        // workspace root that holds the sources and `lint.allow`.
        let root = opts.lint_root.clone().unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("crates/bench sits two levels below the workspace root")
                .display()
                .to_string()
        });
        let report = match amrm_lint::run_lint(std::path::Path::new(&root)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: lint pass failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", amrm_lint::report::render(&report));
        if let Some(path) = &opts.json_out {
            if let Err(e) = amrm_lint::report::write_json(path, &report) {
                eprintln!("error: cannot write lint report to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("lint report written to {path}");
        }
        return if report.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    match opts.command.as_str() {
        "table2" | "all" => println!("{}", reports::table2_report()),
        _ => {}
    }
    if matches!(opts.command.as_str(), "motivation" | "all") {
        println!("{}", reports::motivation_report());
    }
    if opts.command == "ablation" {
        let platform = Platform::odroid_xu4();
        let suite = amrm_bench::ablation::ablation_suite(opts.seed);
        println!(
            "{}",
            amrm_bench::ablation::job_order_report(&suite, &amrm_workload::scenarios::platform())
        );
        // An explicit --schedulers subset overrides the default online
        // registry (which is every scheduler except EX-MEM).
        let online = if opts.schedulers.is_some() {
            registry
        } else {
            amrm_bench::ablation::online_registry()
        };
        println!(
            "{}",
            amrm_bench::ablation::online_admission_report(&platform, opts.seed, &online)
        );
        println!("{}", amrm_bench::ablation::dvfs_report());
        return ExitCode::SUCCESS;
    }
    if opts.command == "admission" {
        let platform = Platform::odroid_xu4();
        eprintln!(
            "characterizing application library on {} ...",
            platform.name()
        );
        let library = apps::benchmark_suite(&platform);
        let cells = run_admission_grid(&platform, &library, &registry, &opts);
        println!("{}", admission::admission_report(&cells));
        return ExitCode::SUCCESS;
    }
    if opts.command == "tune" {
        let platform = Platform::odroid_xu4();
        eprintln!(
            "characterizing application library on {} ...",
            platform.name()
        );
        let library = apps::benchmark_suite(&platform);
        let tune_opts = tune::TuneOptions {
            seed: opts.seed,
            quick: opts.quick,
            threads: opts.threads,
        };
        eprintln!(
            "fitting adaptive-policy and META parameters (seed {}, {} threads{}) ...",
            opts.seed,
            opts.threads,
            if opts.quick { ", quick" } else { "" }
        );
        let t0 = std::time::Instant::now();
        let report = tune::tune_grid(&platform, &library, &tune_opts);
        eprintln!("search finished in {:.1} s", t0.elapsed().as_secs_f64());
        println!("{}", tune::tune_report(&report));
        if let Some(path) = &opts.json_out {
            if let Err(e) = tune::write_json(path, &report) {
                eprintln!("error: cannot write tune report to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("tune artifact written to {path}");
        }
        return ExitCode::SUCCESS;
    }
    if opts.command == "profile" {
        let requests = opts
            .requests
            .unwrap_or(if opts.quick { 20_000 } else { 1_000_000 });
        eprintln!(
            "profiling streaming kernel: {requests} diurnal requests per scheduler \
             (seed {}) ...",
            opts.seed
        );
        let report = amrm_bench::profile::run_profile(requests, opts.seed);
        println!("{}", amrm_bench::profile::profile_report(&report));
        if let Some(path) = &opts.json_out {
            if let Err(e) = amrm_bench::profile::write_json(path, &report) {
                eprintln!("error: cannot write profile to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("profile artifact written to {path}");
        }
        if let Some(path) = &opts.baseline_in {
            let recorded = match baseline::read_json(path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: cannot read baseline from {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if recorded.profile.is_empty() {
                eprintln!("baseline {path} has no profile cells; floor check skipped");
            } else if let Err(msg) =
                amrm_bench::profile::check_floor(&report.cells, &recorded.profile)
            {
                eprintln!("error: throughput floor violated: {msg}");
                return ExitCode::FAILURE;
            } else {
                eprintln!(
                    "throughput floor satisfied against {path} ({}% of recorded events/s required)",
                    (amrm_bench::profile::FLOOR_FRACTION * 100.0) as u32
                );
            }
        }
        return ExitCode::SUCCESS;
    }
    if opts.command == "shard" {
        eprintln!(
            "running sharded-federation bench: shard counts {:?} × 4 routing policies \
             (seed {}, {} dispatcher threads{}) ...",
            amrm_bench::shard::WEAK_SHARD_COUNTS,
            opts.seed,
            opts.threads,
            if opts.quick { ", quick" } else { "" }
        );
        let report = amrm_bench::shard::run_shard_bench(opts.quick, opts.seed, opts.threads);
        println!("{}", amrm_bench::shard::shard_report(&report));
        if let Some(path) = &opts.json_out {
            if let Err(e) = amrm_bench::shard::write_json(path, &report) {
                eprintln!("error: cannot write shard report to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("shard artifact written to {path}");
        }
        return ExitCode::SUCCESS;
    }
    if opts.command == "trace" {
        let sample = opts.sample.unwrap_or(0);
        eprintln!(
            "tracing federated META run: {} bursty requests over {} shards \
             (seed {}{}) ...",
            if opts.quick { 2_000 } else { 20_000 },
            amrm_bench::trace::TRACE_SHARDS,
            opts.seed,
            if sample > 1 {
                format!(", 1-in-{sample} sampling")
            } else {
                String::new()
            }
        );
        let run = amrm_bench::trace::run_trace(opts.quick, opts.seed, sample);
        println!("{}", amrm_bench::trace::trace_report(&run.report));
        if let Some(path) = &opts.json_out {
            if let Err(e) = amrm_bench::trace::write_json(path, &run.report) {
                eprintln!("error: cannot write trace report to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("trace report written to {path}");
        }
        if let Some(path) = &opts.trace_out {
            if let Err(e) = amrm_bench::trace::write_chrome(path, &run.tracks) {
                eprintln!("error: cannot write Chrome trace to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("Chrome trace written to {path} (open at https://ui.perfetto.dev)");
        }
        return ExitCode::SUCCESS;
    }
    if opts.command == "exact" {
        eprintln!(
            "running EX-MEM exact-path bench: ranking A/B on the bursty grid stream, \
             cold-then-warm cache replay (seed {}{}) ...",
            opts.seed,
            if opts.quick { ", quick" } else { "" }
        );
        let report = match amrm_bench::exact::run_exact(
            opts.quick,
            opts.seed,
            opts.warm_cache.as_deref().map(std::path::Path::new),
            opts.cache_out.as_deref().map(std::path::Path::new),
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: exact-path bench failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", amrm_bench::exact::exact_report(&report));
        if let Some(path) = &opts.cache_out {
            eprintln!("mapping cache saved to {path}");
        }
        if let Some(path) = &opts.json_out {
            if let Err(e) = amrm_bench::exact::write_json(path, &report) {
                eprintln!("error: cannot write exact report to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("exact artifact written to {path}");
        }
        return ExitCode::SUCCESS;
    }
    if opts.command == "sweep" {
        let platform = Platform::odroid_xu4();
        eprintln!(
            "characterizing application library on {} ...",
            platform.name()
        );
        let library = apps::benchmark_suite(&platform);
        let interarrivals: Vec<f64> = if opts.quick {
            vec![1.0, 2.0, 4.0, 8.0]
        } else {
            vec![0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
        };
        let spec = StreamSpec {
            requests: if opts.quick { 40 } else { 150 },
            slack_range: (1.5, 3.0),
        };
        let policies = admission::standard_policies();
        eprintln!(
            "running load sweep: {} loads × {} policies × {} schedulers ({}), {} requests each ...",
            interarrivals.len(),
            policies.len(),
            registry.len(),
            registry.names().join(", "),
            spec.requests
        );
        let cells = sweep::sweep_grid(
            &platform,
            &registry,
            &policies,
            &library,
            &interarrivals,
            &spec,
            opts.seed,
            opts.threads,
            SearchBudget::online(),
        );
        println!("{}", sweep::sweep_report(&cells, &interarrivals));
        if let Some(path) = &opts.json_out {
            let report = sweep::SweepReport {
                seed: opts.seed,
                quick: opts.quick,
                requests_per_point: spec.requests,
                interarrivals,
                cells,
            };
            if let Err(e) = sweep::write_json(path, &report) {
                eprintln!("error: cannot write sweep to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("sweep artifact written to {path}");
        }
        return ExitCode::SUCCESS;
    }

    if !needs_suite {
        return ExitCode::SUCCESS;
    }

    let platform = Platform::odroid_xu4();
    eprintln!(
        "characterizing application library on {} ...",
        platform.name()
    );
    let library = apps::benchmark_suite(&platform);
    println!("{}", reports::library_report(&library));

    let mut spec = SuiteSpec::default();
    if opts.quick {
        for c in spec
            .weak_counts
            .iter_mut()
            .chain(spec.tight_counts.iter_mut())
        {
            *c = (*c / 10).max(1);
        }
    }
    eprintln!(
        "generating {} test cases (seed {}) ...",
        spec.total(),
        opts.seed
    );
    let cases = generate_suite(&library, &spec, opts.seed);
    if let Some(path) = &opts.suite_out {
        if let Err(e) = save_suite(path, &cases) {
            eprintln!("error: cannot save suite to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("suite saved to {path}");
    }

    if matches!(opts.command.as_str(), "table3" | "all") {
        println!("{}", reports::table3_report(&cases));
        if opts.command == "table3" {
            return ExitCode::SUCCESS;
        }
    }

    eprintln!(
        "evaluating {} cases × {} schedulers ({}) on {} threads ...",
        cases.len(),
        registry.len(),
        registry.names().join(", "),
        opts.threads
    );
    let t0 = std::time::Instant::now();
    let eval = evaluate_suite(&cases, &platform, opts.threads, &registry);
    let elapsed = t0.elapsed().as_secs_f64();
    eprintln!("evaluation finished in {elapsed:.1} s");

    if let Some(path) = &opts.json_out {
        let mut summary = baseline::summarize(&eval, opts.seed, opts.threads, opts.quick, elapsed);
        summary.admission = run_admission_grid(&platform, &library, &registry, &opts);
        let profile_requests = if opts.quick { 20_000 } else { 100_000 };
        eprintln!(
            "profiling streaming kernel for the baseline ({profile_requests} requests per \
             scheduler) ..."
        );
        summary.profile = amrm_bench::profile::run_profile(profile_requests, opts.seed).cells;
        eprintln!("running sharded-federation bench for the baseline ...");
        summary.shard =
            amrm_bench::shard::run_shard_bench(opts.quick, opts.seed, opts.threads).cells;
        eprintln!("tracing federated META run for the baseline ...");
        summary.trace = amrm_bench::trace::run_trace(opts.quick, opts.seed, 0)
            .report
            .counts;
        eprintln!("running EX-MEM exact-path bench for the baseline ...");
        match amrm_bench::exact::run_exact(opts.quick, opts.seed, None, None) {
            Ok(report) => summary.exact = report.cells,
            Err(e) => {
                eprintln!("error: exact-path bench failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = baseline::write_json(path, &summary) {
            eprintln!("error: cannot write baseline to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("perf baseline written to {path}");
    }

    match opts.command.as_str() {
        "fig2" => println!("{}", reports::fig2_report(&eval)),
        "table4" => println!("{}", reports::table4_report(&eval)),
        "fig3" => println!("{}", reports::fig3_report(&eval)),
        "fig4" => println!("{}", reports::fig4_report(&eval)),
        "all" => {
            println!("{}", reports::fig2_report(&eval));
            println!("{}", reports::table4_report(&eval));
            println!("{}", reports::fig3_report(&eval));
            println!("{}", reports::fig4_report(&eval));
        }
        other => {
            eprintln!("error: unknown command {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
