//! Admission-policy A/B evaluation: every registered scheduler crossed
//! with every batched-admission policy on seeded request streams.
//!
//! The grid quantifies the lever the event kernel exposes — *when and how
//! many* requests reach the mapper per activation — in the three
//! currencies that matter online: acceptance rate, energy per admitted
//! job, and scheduler activations. Policies are supplied as **boxed
//! factories** ([`PolicyFactory`]): the adaptive ones are stateful, so
//! every grid cell gets a fresh instance. [`admission_grid`] produces the
//! cells (now labelled by *stream* as well, so steady Poisson and bursty
//! shapes sit side by side), [`admission_report`] renders them, and the
//! `repro` binary embeds them — including each cell's
//! [`TelemetrySummary`] aggregates — in the perf baseline
//! (`BENCH_baseline.json`) whenever a suite run writes JSON.

use amrm_core::fanout::for_each_cell;
use amrm_core::{
    AdaptiveBatch, AdmissionPolicy, BatchK, Immediate, ReactivationPolicy, SchedulerRegistry,
    SearchBudget, SlackAware, WindowTau,
};
use amrm_metrics::journal::{EventKind, JournalConfig};
use amrm_metrics::{TelemetrySummary, TextTable, TraceSink};
use amrm_platform::Platform;
use amrm_sim::Simulation;
use amrm_workload::ScenarioRequest;
use serde::Serialize;

/// A thread-shareable factory for (possibly stateful) admission policies:
/// each grid cell and load-sweep point calls it for a fresh instance.
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn AdmissionPolicy> + Send + Sync>;

/// One cell of the stream × policy × scheduler grid.
#[derive(Debug, Clone, Serialize)]
pub struct AdmissionCell {
    /// Label of the request stream the cell ran on (e.g. `"poisson"`).
    pub stream: String,
    /// Admission-policy label (e.g. `"BatchK(4)"`), stable across runs.
    pub policy: String,
    /// Scheduler (registry) name.
    pub scheduler: String,
    /// Requests offered to the runtime manager.
    pub requests: usize,
    /// Requests admitted.
    pub accepted: usize,
    /// Acceptance rate in `[0, 1]` (0.0 for an empty stream).
    pub acceptance_rate: f64,
    /// Energy per admitted job, in joules (0.0 if nothing was admitted).
    pub energy_per_job: f64,
    /// Scheduler activations over the whole run — what batching buys.
    pub activations: usize,
    /// Requests dropped from the admission queue at their deadline.
    pub queue_deadline_drops: usize,
    /// Admitted jobs that finished late (0 unless a scheduler misbehaved).
    pub deadline_misses: usize,
    /// Exact-path activations that exhausted their node budget and fell
    /// back to the anytime incumbent (0 for the heuristic schedulers).
    pub exact_truncations: u64,
    /// Exact-path activations where the rank cap pruned first-segment
    /// candidates before full evaluation.
    pub rank_pruned: u64,
    /// Exact-path activations that served at least one warm-start
    /// (disk-loaded) mapping-cache proof.
    pub cache_warm_hits: u64,
    /// End-of-run telemetry aggregates (queue-wait percentiles, EWMA
    /// utilization and arrival rate, rolling acceptance, …).
    pub telemetry: TelemetrySummary,
}

impl serde::Deserialize for AdmissionCell {
    /// Hand-written like `PerfBaseline`'s (the vendored serde stub has no
    /// `#[serde(default)]`): baselines written before the telemetry
    /// subsystem lack `stream`/`telemetry` and read back with defaults.
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let Some(fields) = v.as_obj() else {
            return Err(serde::Error::new("expected AdmissionCell object"));
        };
        let field = |name: &str| serde::value::get_field(fields, name);
        Ok(AdmissionCell {
            stream: match field("stream") {
                Ok(value) => String::from_value(value)?,
                Err(_) => "poisson".to_string(),
            },
            policy: String::from_value(field("policy")?)?,
            scheduler: String::from_value(field("scheduler")?)?,
            requests: usize::from_value(field("requests")?)?,
            accepted: usize::from_value(field("accepted")?)?,
            acceptance_rate: f64::from_value(field("acceptance_rate")?)?,
            energy_per_job: f64::from_value(field("energy_per_job")?)?,
            activations: usize::from_value(field("activations")?)?,
            queue_deadline_drops: usize::from_value(field("queue_deadline_drops")?)?,
            deadline_misses: usize::from_value(field("deadline_misses")?)?,
            // Absent in baselines written before the exact-path
            // (rank-cap + warm-cache) counters existed.
            exact_truncations: match field("exact_truncations") {
                Ok(value) => u64::from_value(value)?,
                Err(_) => 0,
            },
            rank_pruned: match field("rank_pruned") {
                Ok(value) => u64::from_value(value)?,
                Err(_) => 0,
            },
            cache_warm_hits: match field("cache_warm_hits") {
                Ok(value) => u64::from_value(value)?,
                Err(_) => 0,
            },
            telemetry: match field("telemetry") {
                Ok(value) => TelemetrySummary::from_value(value)?,
                Err(_) => TelemetrySummary::default(),
            },
        })
    }
}

/// The default policy set for A/B runs: the paper's per-request
/// discipline, a size-4 batch, a 2-second gathering window, and the two
/// telemetry-driven adaptive policies.
pub fn standard_policies() -> Vec<PolicyFactory> {
    vec![
        Box::new(|| Box::new(Immediate)),
        Box::new(|| Box::new(BatchK(4))),
        Box::new(|| Box::new(WindowTau(2.0))),
        Box::new(|| Box::new(AdaptiveBatch::default())),
        Box::new(|| Box::new(SlackAware::default())),
    ]
}

/// The seeded streams the standard A/B grid runs on — one definition
/// shared by the `repro` binary and the test pinning the committed
/// baseline's reproducibility claim, so tuning the streams cannot
/// silently decouple the two: a steady Poisson stream (mean 2 s — dense
/// enough that a size-4 batch fills well inside a request's deadline
/// slack) and a bursty on/off stream (~1 s inter-arrivals for 15 s, then
/// ~8 s lulls) whose load swings are what the adaptive policies exploit.
///
/// When EX-MEM runs in the grid its exponential online search bounds the
/// stream length (`with_exmem`); without it the heuristics get
/// full-length streams.
pub fn standard_streams(
    library: &[amrm_model::AppRef],
    quick: bool,
    seed: u64,
    with_exmem: bool,
) -> Vec<(&'static str, Vec<ScenarioRequest>)> {
    let requests = match (with_exmem, quick) {
        (true, true) => 30,
        (true, false) => 60,
        (false, true) => 120,
        (false, false) => 300,
    };
    let spec = amrm_workload::StreamSpec {
        requests,
        slack_range: (1.5, 3.0),
    };
    vec![
        (
            "poisson",
            amrm_workload::poisson_stream(library, 2.0, &spec, seed),
        ),
        (
            "bursty",
            amrm_workload::bursty_window_stream(library, 1.0, 8.0, 15.0, &spec, seed),
        ),
    ]
}

/// Runs every (stream × policy × scheduler) combination and collects one
/// [`AdmissionCell`] per combination — streams outermost, then policies,
/// schedulers in registry order innermost. Cells are independent
/// simulations, so they are fanned out over `threads` OS threads via the
/// shared [`for_each_cell`] work index (a slow exhaustive cell would
/// otherwise serialize the whole grid).
///
/// `budget` is the per-activation [`SearchBudget`] every cell's runtime
/// manager forwards to its scheduler. The repro binary passes
/// [`SearchBudget::online`], which is what lets the anytime EX-MEM run
/// the full grid — bursty stream included — instead of sitting out.
///
/// # Panics
///
/// Panics if `threads` is zero, the registry, policy or stream set is
/// empty, or a policy factory produces an invalid policy.
pub fn admission_grid(
    platform: &Platform,
    registry: &SchedulerRegistry,
    policies: &[PolicyFactory],
    streams: &[(&str, &[ScenarioRequest])],
    threads: usize,
    budget: SearchBudget,
) -> Vec<AdmissionCell> {
    assert!(threads > 0, "need at least one worker thread");
    assert!(!registry.is_empty(), "registry must not be empty");
    assert!(!policies.is_empty(), "need at least one admission policy");
    assert!(!streams.is_empty(), "need at least one request stream");
    for factory in policies {
        if let Err(msg) = factory().validate() {
            panic!("invalid admission policy: {msg}");
        }
    }
    let columns = registry.len();
    let per_stream = policies.len() * columns;
    let total = streams.len() * per_stream;
    let names = registry.names();
    let run_cell = |cell: usize| -> AdmissionCell {
        let (stream_label, stream) = streams[cell / per_stream];
        let policy_idx = (cell % per_stream) / columns;
        let sched_idx = cell % columns;
        let policy = policies[policy_idx]();
        let policy_label = policy.label();
        let scheduler = registry
            .create_at(sched_idx)
            .expect("scheduler index in range");
        // The journal is observation-only (sampling cannot perturb the
        // simulation), so installing it per cell changes no decision; it
        // is what surfaces the exact path's truncation / rank-prune /
        // warm-hit aggregates, which are exact counters even when the
        // bounded ring evicts events.
        let config = JournalConfig::default();
        let mut sim = Simulation::new(
            platform.clone(),
            scheduler,
            ReactivationPolicy::OnArrival,
            policy,
            stream,
        )
        .with_search_budget(budget);
        sim.install_journal(TraceSink::enabled(config), config.sample);
        let outcome = sim.run();
        let journal = outcome.journal.as_ref().expect("journal installed");
        let (exact_truncations, rank_pruned, cache_warm_hits) = (
            journal.count_of(EventKind::Truncation),
            journal.count_of(EventKind::RankPrune),
            journal.count_of(EventKind::CacheWarmHit),
        );
        AdmissionCell {
            stream: stream_label.to_string(),
            policy: policy_label,
            scheduler: names[sched_idx].to_string(),
            requests: stream.len(),
            accepted: outcome.accepted(),
            acceptance_rate: outcome.acceptance_rate(),
            energy_per_job: outcome.energy_per_job(),
            activations: outcome.stats.activations,
            queue_deadline_drops: outcome.queue_deadline_drops,
            deadline_misses: outcome.stats.deadline_misses,
            exact_truncations,
            rank_pruned,
            cache_warm_hits,
            telemetry: outcome.telemetry,
        }
    };
    for_each_cell(total, threads, run_cell)
}

/// Renders a grid as a text table, one row per (stream, policy,
/// scheduler). The queue-wait and decision-time tail columns come from
/// the *streaming* log-bucketed histograms — exact over the whole run in
/// O(1) memory — rather than the telemetry's bounded recent-window
/// percentile rings (which remain the adaptive policies' control
/// signals).
pub fn admission_report(cells: &[AdmissionCell]) -> String {
    let mut out = String::from(
        "Admission-policy A/B: fixed and adaptive batching vs the paper's per-request discipline\n\n",
    );
    let mut t = TextTable::new(vec![
        "Stream",
        "Policy",
        "Scheduler",
        "accepted",
        "energy/job [J]",
        "activations",
        "queue drops",
        "misses",
        "trunc",
        "pruned",
        "warm",
        "wait p95 [s]",
        "decide p95 [ms]",
    ]);
    for c in cells {
        t.add_row(vec![
            c.stream.clone(),
            c.policy.clone(),
            c.scheduler.clone(),
            format!("{}/{}", c.accepted, c.requests),
            format!("{:.2}", c.energy_per_job),
            c.activations.to_string(),
            c.queue_deadline_drops.to_string(),
            c.deadline_misses.to_string(),
            c.exact_truncations.to_string(),
            c.rank_pruned.to_string(),
            c.cache_warm_hits.to_string(),
            format!("{:.2}", c.telemetry.queue_wait_hist.p95),
            format!("{:.2}", c.telemetry.decision_seconds_hist.p95 * 1e3),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str(
        "\nBatching trades scheduler activations (runtime overhead) against\n\
         acceptance under tight slack; fixed windows additionally risk\n\
         queue-deadline drops at low load. The adaptive policies size their\n\
         batches from the observed telemetry (arrival rate, rolling\n\
         acceptance, queued slack) instead of a fixed knob.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_baselines::{standard_registry, FIXED_NAME, MDF_NAME};
    use amrm_workload::{poisson_stream, scenarios, StreamSpec};

    fn small_stream() -> Vec<ScenarioRequest> {
        let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
        let spec = StreamSpec {
            requests: 12,
            slack_range: (1.3, 2.5),
        };
        poisson_stream(&lib, 4.0, &spec, 31)
    }

    fn fixed_policies() -> Vec<PolicyFactory> {
        vec![
            Box::new(|| Box::new(Immediate)),
            Box::new(|| Box::new(BatchK(4))),
            Box::new(|| Box::new(WindowTau(2.0))),
        ]
    }

    #[test]
    fn grid_covers_every_stream_policy_scheduler_triple() {
        let registry = standard_registry().subset(&[MDF_NAME, FIXED_NAME]);
        let policies = standard_policies();
        let stream = small_stream();
        let cells = admission_grid(
            &scenarios::platform(),
            &registry,
            &policies,
            &[("poisson", &stream)],
            2,
            SearchBudget::unbounded(),
        );
        assert_eq!(cells.len(), policies.len() * registry.len());
        // Policies outermost (within the stream), registry order within.
        assert_eq!(cells[0].policy, "Immediate");
        assert_eq!(cells[0].scheduler, MDF_NAME);
        assert_eq!(cells[1].scheduler, FIXED_NAME);
        assert_eq!(cells[2].policy, "BatchK(4)");
        assert_eq!(cells[6].policy, "AdaptiveBatch");
        assert_eq!(cells[8].policy, "SlackAware");
        for c in &cells {
            assert_eq!(c.stream, "poisson");
            assert!((0.0..=1.0).contains(&c.acceptance_rate));
            assert!(c.accepted <= c.requests);
            assert!(c.energy_per_job >= 0.0);
            assert_eq!(c.deadline_misses, 0);
            assert_eq!(c.telemetry.arrivals, c.requests);
            // The heuristics never hit the exact path's aggregates.
            assert_eq!(c.exact_truncations, 0);
            assert_eq!(c.rank_pruned, 0);
            assert_eq!(c.cache_warm_hits, 0);
        }
    }

    #[test]
    fn multiple_streams_stack_in_order() {
        let registry = standard_registry().subset(&[MDF_NAME]);
        let a = small_stream();
        let b = scenarios::scenario_s1();
        let cells = admission_grid(
            &scenarios::platform(),
            &registry,
            &fixed_policies(),
            &[("poisson", &a), ("s1", &b)],
            2,
            SearchBudget::unbounded(),
        );
        assert_eq!(cells.len(), 2 * 3);
        assert!(cells[..3].iter().all(|c| c.stream == "poisson"));
        assert!(cells[3..].iter().all(|c| c.stream == "s1"));
        assert_eq!(cells[3].requests, 2);
    }

    #[test]
    fn parallel_and_serial_grids_agree() {
        let registry = standard_registry().subset(&[MDF_NAME, FIXED_NAME]);
        let stream = small_stream();
        let streams: &[(&str, &[ScenarioRequest])] = &[("poisson", &stream)];
        let serial = admission_grid(
            &scenarios::platform(),
            &registry,
            &standard_policies(),
            streams,
            1,
            SearchBudget::unbounded(),
        );
        let parallel = admission_grid(
            &scenarios::platform(),
            &registry,
            &standard_policies(),
            streams,
            4,
            SearchBudget::unbounded(),
        );
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.scheduler, b.scheduler);
            assert_eq!(a.accepted, b.accepted);
            assert_eq!(a.activations, b.activations);
            assert_eq!(a.energy_per_job.to_bits(), b.energy_per_job.to_bits());
        }
    }

    #[test]
    fn batching_reduces_activations() {
        let registry = standard_registry().subset(&[MDF_NAME]);
        let stream = small_stream();
        let policies: Vec<PolicyFactory> = vec![
            Box::new(|| Box::new(Immediate)),
            Box::new(|| Box::new(BatchK(4))),
        ];
        let cells = admission_grid(
            &scenarios::platform(),
            &registry,
            &policies,
            &[("poisson", &stream)],
            1,
            SearchBudget::unbounded(),
        );
        let immediate = &cells[0];
        let batched = &cells[1];
        assert!(immediate.activations >= batched.activations);
        assert!(batched.activations >= 1);
    }

    #[test]
    fn report_lists_all_cells() {
        let registry = standard_registry().subset(&[MDF_NAME]);
        let stream = small_stream();
        let cells = admission_grid(
            &scenarios::platform(),
            &registry,
            &standard_policies(),
            &[("poisson", &stream)],
            1,
            SearchBudget::unbounded(),
        );
        let report = admission_report(&cells);
        assert!(report.contains("Immediate"));
        assert!(report.contains("BatchK(4)"));
        assert!(report.contains("WindowTau(2)"));
        assert!(report.contains("AdaptiveBatch"));
        assert!(report.contains("SlackAware"));
        assert!(report.contains(MDF_NAME));
        assert!(report.contains("poisson"));
    }

    #[test]
    fn cells_roundtrip_through_serde_json() {
        let registry = standard_registry().subset(&[MDF_NAME]);
        let stream = small_stream();
        let policies: Vec<PolicyFactory> = vec![Box::new(|| Box::new(BatchK(2)))];
        let cells = admission_grid(
            &scenarios::platform(),
            &registry,
            &policies,
            &[("poisson", &stream)],
            1,
            SearchBudget::unbounded(),
        );
        let text = serde_json::to_string(&cells).unwrap();
        let back: Vec<AdmissionCell> = serde_json::from_str(&text).unwrap();
        assert_eq!(back.len(), cells.len());
        assert_eq!(back[0].stream, cells[0].stream);
        assert_eq!(back[0].policy, cells[0].policy);
        assert_eq!(back[0].accepted, cells[0].accepted);
        assert_eq!(back[0].activations, cells[0].activations);
        assert_eq!(back[0].telemetry, cells[0].telemetry);
    }

    #[test]
    fn adaptive_policy_beats_fixed_cells_on_the_bursty_grid_stream() {
        // Pins the reproducibility claim behind the committed baseline
        // (`repro --quick --seed 2020`): on the grid's bursty stream,
        // AdaptiveBatch strictly beats every fixed BatchK/WindowTau cell
        // on acceptance rate for MMKP-MDF. The stream comes from the
        // same `standard_streams` the repro binary runs.
        let platform = amrm_platform::Platform::odroid_xu4();
        let library = amrm_dataflow::apps::benchmark_suite(&platform);
        let streams = standard_streams(&library, true, 2020, true);
        let (_, stream) = streams
            .into_iter()
            .find(|(label, _)| *label == "bursty")
            .expect("standard streams include a bursty shape");
        let registry = standard_registry().subset(&[MDF_NAME]);
        let policies: Vec<PolicyFactory> = vec![
            Box::new(|| Box::new(BatchK(4))),
            Box::new(|| Box::new(WindowTau(2.0))),
            Box::new(|| Box::new(AdaptiveBatch::default())),
        ];
        let cells = admission_grid(
            &platform,
            &registry,
            &policies,
            &[("bursty", &stream)],
            2,
            SearchBudget::online(),
        );
        let adaptive = &cells[2];
        assert_eq!(adaptive.policy, "AdaptiveBatch");
        for fixed in &cells[..2] {
            assert!(
                adaptive.acceptance_rate > fixed.acceptance_rate,
                "AdaptiveBatch ({:.3}) does not strictly beat {} ({:.3}) on acceptance",
                adaptive.acceptance_rate,
                fixed.policy,
                fixed.acceptance_rate
            );
        }
    }

    #[test]
    fn budgeted_exmem_completes_the_bursty_quick_grid() {
        // The stream EX-MEM used to sit out: its bursts stack more
        // concurrent jobs than the exhaustive joint enumeration finishes
        // online (a single unbudgeted cell ran for over ten minutes).
        // Under the default online budget the anytime search degrades to
        // best-found-so-far (or the MDF incumbent) and the whole quick
        // grid — every standard policy — completes in seconds.
        let platform = amrm_platform::Platform::odroid_xu4();
        let library = amrm_dataflow::apps::benchmark_suite(&platform);
        let streams = standard_streams(&library, true, 2020, true);
        let (_, stream) = streams
            .into_iter()
            .find(|(label, _)| *label == "bursty")
            .expect("standard streams include a bursty shape");
        let registry = standard_registry().subset(&[amrm_baselines::EXMEM_NAME]);
        let cells = admission_grid(
            &platform,
            &registry,
            &standard_policies(),
            &[("bursty", &stream)],
            2,
            SearchBudget::online(),
        );
        assert_eq!(cells.len(), standard_policies().len());
        for c in &cells {
            assert_eq!(c.scheduler, amrm_baselines::EXMEM_NAME);
            assert!((0.0..=1.0).contains(&c.acceptance_rate));
            assert_eq!(c.deadline_misses, 0);
        }
        assert!(
            cells.iter().any(|c| c.accepted > 0),
            "budgeted EX-MEM admitted nothing on the bursty stream"
        );
        // The capped online budget prunes wide bursts instead of burning
        // the node budget on them — the prune aggregate must surface.
        assert!(
            cells.iter().any(|c| c.rank_pruned > 0),
            "no bursty cell recorded rank-cap pruning"
        );
    }

    #[test]
    fn meta_tracks_the_best_fixed_scheduler_on_the_quick_grid() {
        // The META acceptance criterion, pinned at the committed
        // baseline's `--quick --seed 2020` configuration: on each grid
        // stream, META's acceptance (averaged over the standard
        // admission policies) is at least the best single fixed
        // scheduler's minus 0.02, and strictly beats the worst one.
        let platform = amrm_platform::Platform::odroid_xu4();
        let library = amrm_dataflow::apps::benchmark_suite(&platform);
        let streams = standard_streams(&library, true, 2020, true);
        let stream_refs: Vec<(&str, &[ScenarioRequest])> = streams
            .iter()
            .map(|(label, stream)| (*label, stream.as_slice()))
            .collect();
        let registry = standard_registry();
        let cells = admission_grid(
            &platform,
            &registry,
            &standard_policies(),
            &stream_refs,
            4,
            SearchBudget::online(),
        );
        for (label, _) in &stream_refs {
            let mean_acceptance = |scheduler: &str| {
                let rates: Vec<f64> = cells
                    .iter()
                    .filter(|c| c.stream == *label && c.scheduler == scheduler)
                    .map(|c| c.acceptance_rate)
                    .collect();
                assert!(!rates.is_empty(), "no {scheduler} cells on {label}");
                rates.iter().sum::<f64>() / rates.len() as f64
            };
            let meta = mean_acceptance(amrm_baselines::META_NAME);
            let fixed: Vec<(String, f64)> = registry
                .names()
                .into_iter()
                .filter(|n| *n != amrm_baselines::META_NAME)
                .map(|n| (n.to_string(), mean_acceptance(n)))
                .collect();
            let best = fixed
                .iter()
                .map(|(_, a)| *a)
                .fold(f64::NEG_INFINITY, f64::max);
            let worst = fixed.iter().map(|(_, a)| *a).fold(f64::INFINITY, f64::min);
            assert!(
                meta >= best - 0.02,
                "{label}: META acceptance {meta:.3} below best fixed {best:.3} - 0.02 ({fixed:?})"
            );
            assert!(
                meta > worst,
                "{label}: META acceptance {meta:.3} does not beat worst fixed {worst:.3}"
            );
        }
    }

    #[test]
    fn budget_adaptive_meta_tracks_fixed_budget_meta_on_the_quick_grid() {
        // The budget-regime acceptance criterion, pinned at the committed
        // baseline's `--quick --seed 2020` configuration: on each grid
        // stream, budget-adaptive META's acceptance (averaged over the
        // standard admission policies) is at least the fixed-budget
        // configuration's. Tightening the exact-regime budget under
        // latency pressure must never cost admissions — EX-MEM degrades
        // to its MDF fallback, not to a rejection.
        use amrm_baselines::MetaScheduler;
        let platform = amrm_platform::Platform::odroid_xu4();
        let library = amrm_dataflow::apps::benchmark_suite(&platform);
        let streams = standard_streams(&library, true, 2020, true);
        let stream_refs: Vec<(&str, &[ScenarioRequest])> = streams
            .iter()
            .map(|(label, stream)| (*label, stream.as_slice()))
            .collect();
        let registry = amrm_core::SchedulerRegistry::new()
            .with("META-adaptive", || Box::new(MetaScheduler::new()))
            .with(
                "META-fixed",
                || Box::new(MetaScheduler::with_fixed_budget()),
            );
        let cells = admission_grid(
            &platform,
            &registry,
            &standard_policies(),
            &stream_refs,
            2,
            SearchBudget::online(),
        );
        for (label, _) in &stream_refs {
            let mean_acceptance = |scheduler: &str| {
                let rates: Vec<f64> = cells
                    .iter()
                    .filter(|c| c.stream == *label && c.scheduler == scheduler)
                    .map(|c| c.acceptance_rate)
                    .collect();
                assert!(!rates.is_empty(), "no {scheduler} cells on {label}");
                rates.iter().sum::<f64>() / rates.len() as f64
            };
            let adaptive = mean_acceptance("META-adaptive");
            let fixed = mean_acceptance("META-fixed");
            assert!(
                adaptive >= fixed,
                "{label}: budget-adaptive META acceptance {adaptive:.3} \
                 below fixed-budget {fixed:.3}"
            );
        }
    }

    #[test]
    fn legacy_cells_without_stream_or_telemetry_still_parse() {
        // The exact cell shape `repro --json` wrote before the telemetry
        // subsystem existed.
        let legacy = r#"{
            "policy": "BatchK(4)", "scheduler": "MMKP-MDF",
            "requests": 30, "accepted": 28, "acceptance_rate": 0.93,
            "energy_per_job": 12.5, "activations": 8,
            "queue_deadline_drops": 0, "deadline_misses": 0
        }"#;
        let cell: AdmissionCell = serde_json::from_str(legacy).unwrap();
        assert_eq!(cell.stream, "poisson");
        assert_eq!(cell.policy, "BatchK(4)");
        assert_eq!(cell.telemetry, TelemetrySummary::default());
        // Pre-exact-path baselines read back with zeroed counters.
        assert_eq!(cell.exact_truncations, 0);
        assert_eq!(cell.rank_pruned, 0);
        assert_eq!(cell.cache_warm_hits, 0);
    }
}
