//! Admission-policy A/B evaluation: every registered scheduler crossed
//! with every batched-admission policy on one seeded request stream.
//!
//! The grid quantifies the lever the event kernel exposes — *when and how
//! many* requests reach the mapper per activation — in the three
//! currencies that matter online: acceptance rate, energy per admitted
//! job, and scheduler activations. [`admission_grid`] produces the cells,
//! [`admission_report`] renders them, and the `repro` binary embeds them
//! in the perf baseline (`BENCH_baseline.json`) whenever a suite run
//! writes JSON.

use std::sync::atomic::{AtomicUsize, Ordering};

use amrm_core::{AdmissionPolicy, ReactivationPolicy, SchedulerRegistry};
use amrm_metrics::TextTable;
use amrm_platform::Platform;
use amrm_sim::Simulation;
use amrm_workload::ScenarioRequest;
use serde::{Deserialize, Serialize};

/// One cell of the policy × scheduler grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdmissionCell {
    /// Admission-policy label (e.g. `"BatchK(4)"`), stable across runs.
    pub policy: String,
    /// Scheduler (registry) name.
    pub scheduler: String,
    /// Requests offered to the runtime manager.
    pub requests: usize,
    /// Requests admitted.
    pub accepted: usize,
    /// Acceptance rate in `[0, 1]` (0.0 for an empty stream).
    pub acceptance_rate: f64,
    /// Energy per admitted job, in joules (0.0 if nothing was admitted).
    pub energy_per_job: f64,
    /// Scheduler activations over the whole run — what batching buys.
    pub activations: usize,
    /// Requests dropped from the admission queue at their deadline.
    pub queue_deadline_drops: usize,
    /// Admitted jobs that finished late (0 unless a scheduler misbehaved).
    pub deadline_misses: usize,
}

/// The default policy set for A/B runs: the paper's per-request
/// discipline, a size-4 batch, and a 2-second gathering window.
pub fn standard_policies() -> Vec<AdmissionPolicy> {
    vec![
        AdmissionPolicy::Immediate,
        AdmissionPolicy::BatchK(4),
        AdmissionPolicy::WindowTau(2.0),
    ]
}

/// Runs every (policy × scheduler) combination over the same request
/// stream and collects one [`AdmissionCell`] per combination, policies
/// outermost, schedulers in registry order within each policy. Cells are
/// independent simulations, so they are fanned out over `threads` OS
/// threads via a shared work index (EX-MEM's slow online cells would
/// otherwise serialize the whole grid).
///
/// # Panics
///
/// Panics if `threads` is zero, the registry or policy set is empty, or
/// a policy is invalid.
pub fn admission_grid(
    platform: &Platform,
    registry: &SchedulerRegistry,
    policies: &[AdmissionPolicy],
    stream: &[ScenarioRequest],
    threads: usize,
) -> Vec<AdmissionCell> {
    assert!(threads > 0, "need at least one worker thread");
    assert!(!registry.is_empty(), "registry must not be empty");
    assert!(!policies.is_empty(), "need at least one admission policy");
    for policy in policies {
        if let Err(msg) = policy.validate() {
            panic!("invalid admission policy: {msg}");
        }
    }
    let columns = registry.len();
    let total = policies.len() * columns;
    let names = registry.names();
    let run_cell = |cell: usize| -> AdmissionCell {
        let policy = policies[cell / columns];
        let sched_idx = cell % columns;
        let scheduler = registry
            .create_at(sched_idx)
            .expect("scheduler index in range");
        let outcome = Simulation::new(
            platform.clone(),
            scheduler,
            ReactivationPolicy::OnArrival,
            policy,
            stream,
        )
        .run();
        AdmissionCell {
            policy: policy.label(),
            scheduler: names[sched_idx].to_string(),
            requests: stream.len(),
            accepted: outcome.accepted(),
            acceptance_rate: outcome.acceptance_rate(),
            energy_per_job: outcome.energy_per_job(),
            activations: outcome.stats.activations,
            queue_deadline_drops: outcome.queue_deadline_drops,
            deadline_misses: outcome.stats.deadline_misses,
        }
    };
    if threads == 1 || total < 2 {
        return (0..total).map(run_cell).collect();
    }
    let next = AtomicUsize::new(0);
    let mut flat: Vec<Option<AdmissionCell>> = vec![None; total];
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads.min(total))
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        produced.push((i, run_cell(i)));
                    }
                    produced
                })
            })
            .collect();
        for worker in workers {
            for (i, cell) in worker.join().expect("worker panicked") {
                flat[i] = Some(cell);
            }
        }
    });
    flat.into_iter()
        .map(|c| c.expect("all cells filled by workers"))
        .collect()
}

/// Renders a grid as a text table, one row per (policy, scheduler).
pub fn admission_report(cells: &[AdmissionCell]) -> String {
    let mut out = String::from(
        "Admission-policy A/B: batched admission vs the paper's per-request discipline\n\n",
    );
    let mut t = TextTable::new(vec![
        "Policy",
        "Scheduler",
        "accepted",
        "energy/job [J]",
        "activations",
        "queue drops",
        "misses",
    ]);
    for c in cells {
        t.add_row(vec![
            c.policy.clone(),
            c.scheduler.clone(),
            format!("{}/{}", c.accepted, c.requests),
            format!("{:.2}", c.energy_per_job),
            c.activations.to_string(),
            c.queue_deadline_drops.to_string(),
            c.deadline_misses.to_string(),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str(
        "\nBatching trades scheduler activations (runtime overhead) against\n\
         acceptance under tight slack; windows additionally risk queue-deadline\n\
         drops at low load.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_baselines::{standard_registry, FIXED_NAME, MDF_NAME};
    use amrm_workload::{poisson_stream, scenarios, StreamSpec};

    fn small_stream() -> Vec<ScenarioRequest> {
        let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
        let spec = StreamSpec {
            requests: 12,
            slack_range: (1.3, 2.5),
        };
        poisson_stream(&lib, 4.0, &spec, 31)
    }

    #[test]
    fn grid_covers_every_policy_scheduler_pair() {
        let registry = standard_registry().subset(&[MDF_NAME, FIXED_NAME]);
        let policies = standard_policies();
        let cells = admission_grid(
            &scenarios::platform(),
            &registry,
            &policies,
            &small_stream(),
            2,
        );
        assert_eq!(cells.len(), policies.len() * registry.len());
        // Policies outermost, registry order within.
        assert_eq!(cells[0].policy, "Immediate");
        assert_eq!(cells[0].scheduler, MDF_NAME);
        assert_eq!(cells[1].scheduler, FIXED_NAME);
        assert_eq!(cells[2].policy, "BatchK(4)");
        for c in &cells {
            assert!((0.0..=1.0).contains(&c.acceptance_rate));
            assert!(c.accepted <= c.requests);
            assert!(c.energy_per_job >= 0.0);
            assert_eq!(c.deadline_misses, 0);
        }
    }

    #[test]
    fn parallel_and_serial_grids_agree() {
        let registry = standard_registry().subset(&[MDF_NAME, FIXED_NAME]);
        let policies = standard_policies();
        let stream = small_stream();
        let serial = admission_grid(&scenarios::platform(), &registry, &policies, &stream, 1);
        let parallel = admission_grid(&scenarios::platform(), &registry, &policies, &stream, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.scheduler, b.scheduler);
            assert_eq!(a.accepted, b.accepted);
            assert_eq!(a.activations, b.activations);
            assert_eq!(a.energy_per_job.to_bits(), b.energy_per_job.to_bits());
        }
    }

    #[test]
    fn batching_reduces_activations() {
        let registry = standard_registry().subset(&[MDF_NAME]);
        let cells = admission_grid(
            &scenarios::platform(),
            &registry,
            &[AdmissionPolicy::Immediate, AdmissionPolicy::BatchK(4)],
            &small_stream(),
            1,
        );
        let immediate = &cells[0];
        let batched = &cells[1];
        assert!(immediate.activations >= batched.activations);
        assert!(batched.activations >= 1);
    }

    #[test]
    fn report_lists_all_cells() {
        let registry = standard_registry().subset(&[MDF_NAME]);
        let cells = admission_grid(
            &scenarios::platform(),
            &registry,
            &standard_policies(),
            &small_stream(),
            1,
        );
        let report = admission_report(&cells);
        assert!(report.contains("Immediate"));
        assert!(report.contains("BatchK(4)"));
        assert!(report.contains("WindowTau(2)"));
        assert!(report.contains(MDF_NAME));
    }

    #[test]
    fn cells_roundtrip_through_serde_json() {
        let registry = standard_registry().subset(&[MDF_NAME]);
        let cells = admission_grid(
            &scenarios::platform(),
            &registry,
            &[AdmissionPolicy::BatchK(2)],
            &small_stream(),
            1,
        );
        let text = serde_json::to_string(&cells).unwrap();
        let back: Vec<AdmissionCell> = serde_json::from_str(&text).unwrap();
        assert_eq!(back.len(), cells.len());
        assert_eq!(back[0].policy, cells[0].policy);
        assert_eq!(back[0].accepted, cells[0].accepted);
        assert_eq!(back[0].activations, cells[0].activations);
    }
}
