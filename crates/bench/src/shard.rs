//! Sharded-federation weak-scaling benchmark (`repro shard`).
//!
//! One lazy arrival stream fans out over N independent runtime managers
//! through the [`Federation`](amrm_sim::Federation) dispatcher; this
//! module measures what that buys and what it costs:
//!
//! * **weak scaling** — shard counts × routing policies on the diurnal
//!   profile stream at *fixed per-shard load* (the offered rate scales
//!   with the shard count), reporting aggregate requests/s and events/s;
//! * **skewed routing** — a fixed shard count on a hotspot stream (one
//!   application dominates the mix), where feedback routing
//!   (join-shortest-queue, energy-aware) must beat blind round-robin on
//!   acceptance, plus one affinity-with-work-stealing row.
//!
//! Every cell runs the shards in **lean aggregated outcome mode**
//! ([`Simulation::aggregated`]) so multi-million-request federated runs
//! stay flat in memory, and every cell is deterministic per seed
//! regardless of `--threads` (the dispatcher advances shards in sim-time
//! lockstep). The cells embed into the perf baseline
//! (`BENCH_baseline.json`) next to the admission grid and the kernel
//! profile.

use std::time::Instant;

use amrm_baselines::{standard_registry, MDF_NAME};
use amrm_core::routing::standard_policies;
use amrm_core::{
    AdmissionPolicy, BatchK, Immediate, ReactivationPolicy, RoutingPolicy, Scheduler, SearchBudget,
};
use amrm_metrics::{instrument, TextTable};
use amrm_model::AppRef;
use amrm_platform::Platform;
use amrm_sim::{Federation, FederationConfig, Simulation};
use amrm_workload::{ArrivalStream, StreamSpec};
use serde::{Deserialize, Serialize};

/// Shard counts of the weak-scaling sweep.
pub const WEAK_SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Shard count of the skewed-routing rows.
pub const SKEWED_SHARDS: usize = 4;

// The weak-scaling stream mirrors the kernel profile's diurnal shape
// (mean inter-arrival 0.5 s swinging ×3 over 600 s) so 1-shard rows are
// directly comparable with `repro profile`; N-shard rows divide the mean
// inter-arrival by N to hold per-shard load fixed.
const WEAK_MEAN_INTERARRIVAL: f64 = 0.5;
const WEAK_PEAK_FACTOR: f64 = 3.0;
const WEAK_PERIOD: f64 = 600.0;
const SLACK_RANGE: (f64, f64) = (1.5, 3.0);

// The skewed stream mixes the single most expensive application into an
// otherwise-uniform draw at a load where shards hover near the admission
// feasibility edge.  Both knobs matter for the routing comparison: the
// moderate hot fraction keeps service times *heterogeneous* (under a
// near-homogeneous mix, blind round-robin's perfect count balance is
// already optimal and feedback routing has nothing to exploit), and the
// short dispatch epoch keeps shard views fresh enough for
// join-shortest-queue to dodge the shards still chewing on a hot job.
const SKEW_MEAN_INTERARRIVAL: f64 = 1.0;
const SKEW_HOT_FRACTION: f64 = 0.3;
const SKEW_SLACK_RANGE: (f64, f64) = (1.2, 2.0);
const SKEW_EPOCH: usize = 2;

/// One federated run: a (stream, routing policy, shard count) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardCell {
    /// Label of the arrival stream (`"diurnal"`, `"hotspot"`, …).
    pub stream: String,
    /// Routing-policy label, stable across runs.
    pub routing: String,
    /// Number of shards (independent runtime managers).
    pub shards: usize,
    /// Requests consumed from the stream.
    pub requests: usize,
    /// Requests admitted across all shards.
    pub accepted: usize,
    /// Federation-wide acceptance rate in `[0, 1]`.
    pub acceptance_rate: f64,
    /// Energy per admitted job, joules (0.0 if nothing was admitted).
    pub energy_per_job: f64,
    /// Wall-clock seconds for the whole federated run.
    pub wall_seconds: f64,
    /// Aggregate requests decided per wall-clock second.
    pub requests_per_second: f64,
    /// Aggregate kernel events handled per wall-clock second (merged
    /// across shard workers).
    pub events_per_second: f64,
    /// Requests routed to each shard, in shard order.
    pub shard_routed: Vec<usize>,
    /// Requests accepted by each shard, in shard order.
    pub shard_accepted: Vec<usize>,
    /// Metered energy per shard, joules, in shard order.
    pub shard_energy: Vec<f64>,
    /// Load imbalance: max routed count over the mean (1.0 = perfectly
    /// balanced).
    pub imbalance_max_over_mean: f64,
    /// Load imbalance: 95th-percentile routed count over the mean.
    pub imbalance_p95_over_mean: f64,
    /// Requests that migrated between shards through work-stealing.
    pub stolen: usize,
}

/// A whole `repro shard` run plus its provenance, embedded into the perf
/// baseline and written standalone by `repro shard --json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardReport {
    /// RNG seed of every stream in the run.
    pub seed: u64,
    /// Dispatcher worker threads.
    pub threads: usize,
    /// Whether the quick (shrunken) request counts were used.
    pub quick: bool,
    /// Requests per shard in the weak-scaling rows.
    pub weak_requests_per_shard: usize,
    /// All cells: weak-scaling rows first, then the skewed rows.
    pub cells: Vec<ShardCell>,
}

/// The index of the most expensive application (largest minimal
/// completion time) — the hotspot stream's hot app.
pub fn hot_app_index(library: &[AppRef]) -> usize {
    assert!(!library.is_empty(), "application library must not be empty");
    library
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.min_time().total_cmp(&b.min_time()))
        .map(|(i, _)| i)
        .expect("non-empty library")
}

fn percentile_over_mean(routed: &[usize], q: f64) -> f64 {
    let total: usize = routed.iter().sum();
    let mean = total as f64 / routed.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let mut sorted: Vec<usize> = routed.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64 / mean
}

/// Builds one lean shard: MMKP-MDF under the online search budget with
/// the given admission policy, in aggregated outcome mode.
fn open_shard<A: AdmissionPolicy>(
    platform: &Platform,
    admission: A,
) -> Simulation<Box<dyn Scheduler + Send>, A> {
    Simulation::open(
        platform.clone(),
        standard_registry()
            .create(MDF_NAME)
            .expect("MMKP-MDF is registered"),
        ReactivationPolicy::OnArrival,
        admission,
    )
    .with_search_budget(SearchBudget::online())
    .aggregated()
}

/// Runs one federated cell and measures it.
fn run_cell<A: AdmissionPolicy + Send>(
    pool: Vec<Simulation<Box<dyn Scheduler + Send>, A>>,
    stream_label: &str,
    stream: ArrivalStream,
    routing: Box<dyn RoutingPolicy + Send>,
    config: FederationConfig,
) -> ShardCell {
    let requests = stream.len();
    let shards = pool.len();
    instrument::reset();
    let t0 = Instant::now();
    let outcome = Federation::new(pool, routing)
        .with_config(config)
        .run(stream);
    let wall = t0.elapsed().as_secs_f64().max(f64::EPSILON);
    let counters = instrument::snapshot();
    let accepted = outcome.accepted();
    let energy = outcome.total_energy();
    ShardCell {
        stream: stream_label.to_string(),
        routing: outcome.routing.clone(),
        shards,
        requests,
        accepted,
        acceptance_rate: outcome.acceptance_rate(),
        energy_per_job: if accepted == 0 {
            0.0
        } else {
            energy / accepted as f64
        },
        wall_seconds: wall,
        requests_per_second: requests as f64 / wall,
        events_per_second: counters.events as f64 / wall,
        shard_routed: outcome.routed.clone(),
        shard_accepted: outcome.shards.iter().map(|s| s.accepted()).collect(),
        shard_energy: outcome.shards.iter().map(|s| s.total_energy).collect(),
        imbalance_max_over_mean: outcome.imbalance_max_over_mean(),
        imbalance_p95_over_mean: percentile_over_mean(&outcome.routed, 0.95),
        stolen: outcome.stolen,
    }
}

/// Weak-scaling rows: every routing policy × every shard count, on the
/// diurnal profile stream at fixed per-shard load (`per_shard` requests
/// and a 2 req/s-per-shard mean rate each).
pub fn weak_scaling_grid(
    library: &[AppRef],
    per_shard: usize,
    shard_counts: &[usize],
    seed: u64,
    threads: usize,
) -> Vec<ShardCell> {
    assert!(per_shard > 0, "need at least one request per shard");
    let platform = Platform::odroid_xu4();
    let mut cells = Vec::new();
    for &shards in shard_counts {
        for routing in standard_policies() {
            let spec = StreamSpec {
                requests: per_shard * shards,
                slack_range: SLACK_RANGE,
            };
            let stream = ArrivalStream::diurnal(
                library,
                WEAK_MEAN_INTERARRIVAL / shards as f64,
                WEAK_PEAK_FACTOR,
                WEAK_PERIOD,
                &spec,
                seed,
            );
            let pool = (0..shards)
                .map(|_| open_shard(&platform, Immediate))
                .collect();
            cells.push(run_cell(
                pool,
                "diurnal",
                stream,
                routing,
                FederationConfig {
                    threads,
                    ..FederationConfig::default()
                },
            ));
        }
    }
    cells
}

/// Skewed-routing rows: every routing policy on the hotspot stream over
/// [`SKEWED_SHARDS`] shards (fine epochs keep the feedback fresh), plus
/// one hash-affinity row with work-stealing enabled.
pub fn skewed_grid(
    library: &[AppRef],
    requests: usize,
    seed: u64,
    threads: usize,
) -> Vec<ShardCell> {
    assert!(requests > 0, "need at least one request");
    let platform = Platform::odroid_xu4();
    let hot = hot_app_index(library);
    let spec = StreamSpec {
        requests,
        slack_range: SKEW_SLACK_RANGE,
    };
    let stream = || {
        ArrivalStream::hotspot(
            library,
            SKEW_MEAN_INTERARRIVAL,
            hot,
            SKEW_HOT_FRACTION,
            &spec,
            seed,
        )
    };
    let config = |steal| FederationConfig {
        threads,
        epoch: SKEW_EPOCH,
        steal_threshold: steal,
    };
    let mut cells: Vec<ShardCell> = standard_policies()
        .into_iter()
        .map(|routing| {
            let pool = (0..SKEWED_SHARDS)
                .map(|_| open_shard(&platform, Immediate))
                .collect();
            run_cell(pool, "hotspot", stream(), routing, config(None))
        })
        .collect();
    // Affinity pins the hot app to one shard and batched admission keeps
    // its overflow queued between flushes; stealing lets idle shards
    // drain it. (Per-request admission never leaves a queue to steal
    // from, so this row runs BatchK shards.)
    let pool = (0..SKEWED_SHARDS)
        .map(|_| open_shard(&platform, BatchK(8)))
        .collect();
    cells.push(run_cell(
        pool,
        "hotspot+steal",
        stream(),
        Box::new(amrm_core::HashAffinity::new()),
        config(Some(4)),
    ));
    cells
}

/// Runs the full shard benchmark: the weak-scaling sweep followed by the
/// skewed-routing rows.
pub fn run_shard_bench(quick: bool, seed: u64, threads: usize) -> ShardReport {
    let platform = Platform::odroid_xu4();
    let library = amrm_dataflow::apps::benchmark_suite(&platform);
    let per_shard = if quick { 2_000 } else { 40_000 };
    let skew_requests = if quick { 2_000 } else { 20_000 };
    let mut cells = weak_scaling_grid(&library, per_shard, &WEAK_SHARD_COUNTS, seed, threads);
    cells.extend(skewed_grid(&library, skew_requests, seed, threads));
    ShardReport {
        seed,
        threads,
        quick,
        weak_requests_per_shard: per_shard,
        cells,
    }
}

/// Aggregate requests/s of the weak-scaling cell at `shards` shards under
/// `routing` on the diurnal stream.
pub fn weak_throughput(cells: &[ShardCell], routing: &str, shards: usize) -> Option<f64> {
    cells
        .iter()
        .find(|c| c.stream == "diurnal" && c.routing == routing && c.shards == shards)
        .map(|c| c.requests_per_second)
}

/// Weak-scaling speedup: aggregate requests/s at the largest shard count
/// over the 1-shard cell, under `routing`. `None` if either cell is
/// missing.
pub fn weak_scaling_speedup(cells: &[ShardCell], routing: &str) -> Option<f64> {
    let max_shards = cells
        .iter()
        .filter(|c| c.stream == "diurnal" && c.routing == routing)
        .map(|c| c.shards)
        .max()?;
    let top = weak_throughput(cells, routing, max_shards)?;
    let base = weak_throughput(cells, routing, 1)?;
    Some(top / base)
}

/// Renders a shard report as aligned text tables (weak scaling, then the
/// skewed rows) plus a speedup footnote.
pub fn shard_report(report: &ShardReport) -> String {
    let mut out = format!(
        "Sharded-federation benchmark: seed {}, {} dispatcher threads, {} requests/shard \
         (weak scaling)\n\n",
        report.seed, report.threads, report.weak_requests_per_shard
    );
    let mut t = TextTable::new(vec![
        "Stream", "Routing", "shards", "requests", "accepted", "acc rate", "J/job", "wall s",
        "req/s", "events/s", "max/mean", "p95/mean", "stolen",
    ]);
    for c in &report.cells {
        t.add_row(vec![
            c.stream.clone(),
            c.routing.clone(),
            c.shards.to_string(),
            c.requests.to_string(),
            c.accepted.to_string(),
            format!("{:.3}", c.acceptance_rate),
            format!("{:.2}", c.energy_per_job),
            format!("{:.2}", c.wall_seconds),
            format!("{:.0}", c.requests_per_second),
            format!("{:.0}", c.events_per_second),
            format!("{:.2}", c.imbalance_max_over_mean),
            format!("{:.2}", c.imbalance_p95_over_mean),
            c.stolen.to_string(),
        ]);
    }
    out.push_str(&t.to_string());
    if let Some(speedup) = weak_scaling_speedup(&report.cells, "RoundRobin") {
        let max_shards = report
            .cells
            .iter()
            .filter(|c| c.stream == "diurnal")
            .map(|c| c.shards)
            .max()
            .unwrap_or(1);
        out.push_str(&format!(
            "\nweak-scaling speedup (RoundRobin, {max_shards} shards vs 1): {speedup:.2}x\n"
        ));
    }
    out
}

/// Writes a shard report as pretty-printed JSON.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_json(path: impl AsRef<std::path::Path>, report: &ShardReport) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), report)
        .map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library() -> Vec<AppRef> {
        amrm_dataflow::apps::benchmark_suite(&Platform::odroid_xu4())
    }

    #[test]
    fn weak_grid_covers_every_policy_and_shard_count() {
        let cells = weak_scaling_grid(&library(), 40, &[1, 2], 7, 1);
        assert_eq!(cells.len(), 8);
        for c in &cells {
            assert_eq!(c.stream, "diurnal");
            assert_eq!(c.requests, 40 * c.shards);
            assert_eq!(c.shard_routed.len(), c.shards);
            assert_eq!(c.shard_accepted.len(), c.shards);
            assert_eq!(c.shard_energy.len(), c.shards);
            assert_eq!(c.shard_routed.iter().sum::<usize>(), c.requests);
            assert!(c.accepted <= c.requests);
            assert!((0.0..=1.0).contains(&c.acceptance_rate));
            assert!(c.requests_per_second > 0.0);
            assert!(c.events_per_second > 0.0);
            assert!(c.imbalance_max_over_mean >= 1.0 - 1e-12);
            assert!(c.imbalance_p95_over_mean <= c.imbalance_max_over_mean + 1e-12);
        }
        let labels: Vec<&str> = cells[..4].iter().map(|c| c.routing.as_str()).collect();
        assert_eq!(labels, ["RoundRobin", "JSQ", "EnergyAware", "HashAffinity"]);
        assert!(weak_scaling_speedup(&cells, "RoundRobin").is_some());
    }

    #[test]
    fn skewed_gate_feedback_routing_beats_round_robin_at_seed_2020() {
        // The acceptance gate of `repro shard`: on the hotspot stream at
        // the pinned seed, join-shortest-queue or energy-aware routing
        // must strictly beat blind round-robin on acceptance rate.  Uses
        // the same request count as `repro shard --quick` so the test
        // exercises the exact stream the CLI gate reports.
        let cells = skewed_grid(&library(), 2000, 2020, 1);
        assert_eq!(cells.len(), 5);
        let rate = |label: &str| {
            cells
                .iter()
                .find(|c| c.routing == label && c.stream == "hotspot")
                .expect("cell present")
                .acceptance_rate
        };
        let rr = rate("RoundRobin");
        let best = rate("JSQ").max(rate("EnergyAware"));
        assert!(
            best > rr,
            "feedback routing must beat RoundRobin: JSQ {:.3} / EA {:.3} vs RR {rr:.3}",
            rate("JSQ"),
            rate("EnergyAware"),
        );
        // The stealing row actually steals and decides everything.
        let steal = cells.last().unwrap();
        assert_eq!(steal.stream, "hotspot+steal");
        assert_eq!(steal.shard_routed.iter().sum::<usize>(), steal.requests);
        assert!(steal.stolen > 0, "affinity overload must trigger steals");
    }

    #[test]
    fn hot_app_is_the_most_expensive() {
        let lib = library();
        let hot = hot_app_index(&lib);
        for app in &lib {
            assert!(lib[hot].min_time() >= app.min_time());
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = ShardReport {
            seed: 3,
            threads: 2,
            quick: true,
            weak_requests_per_shard: 40,
            cells: weak_scaling_grid(&library(), 30, &[2], 3, 2),
        };
        let path = std::env::temp_dir().join("amrm_shard_roundtrip.json");
        write_json(&path, &report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let back: ShardReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.seed, 3);
        assert_eq!(back.cells.len(), report.cells.len());
        assert_eq!(back.cells[0].routing, report.cells[0].routing);
        assert_eq!(back.cells[0].shard_routed, report.cells[0].shard_routed);
        let rendered = shard_report(&back);
        assert!(rendered.contains("RoundRobin"));
        assert!(rendered.contains("req/s"));
    }
}
