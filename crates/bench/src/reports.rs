//! Text reports regenerating each table and figure of the paper.
//!
//! Every report that consumes suite results takes a
//! [`SuiteEvaluation`] and renders one column (or block) per scheduler the
//! evaluation ran, in registry order — adding an algorithm to the registry
//! changes the reports without touching this module.

use amrm_baselines::{FixedMapper, EXMEM_NAME};
use amrm_core::{MmkpMdf, ReactivationPolicy};
use amrm_metrics::{geometric_mean, BoxplotStats, SCurve, TextTable};
use amrm_model::AppRef;
use amrm_sim::run_scenario;
use amrm_workload::{scenarios, tabulate, DeadlineLevel, TestCase};

use crate::runner::SuiteEvaluation;

/// Regenerates Table II: the operating points of λ1 and λ2, including the
/// progressed-state triples (0%, 18.87%, 62.08%) the paper prints for λ1.
pub fn table2_report() -> String {
    let mut out = String::from("Table II: application parameters (motivational example)\n\n");
    let progress_states = [0.0, 0.1887, 0.6208];
    for (app, show_progress) in [(scenarios::lambda1(), true), (scenarios::lambda2(), false)] {
        out.push_str(&format!("{}:\n", app.name()));
        let mut t = TextTable::new(vec!["#L", "#B", "τ [s]", "ξ [J]"]);
        for p in app.points() {
            let fmt_triple = |full: f64| -> String {
                if show_progress {
                    progress_states
                        .iter()
                        .map(|&pr| format!("{:.2}", full * (1.0 - pr)))
                        .collect::<Vec<_>>()
                        .join(" - ")
                } else {
                    format!("{full:.2}")
                }
            };
            t.add_row(vec![
                p.resources()[0].to_string(),
                p.resources()[1].to_string(),
                fmt_triple(p.time()),
                fmt_triple(p.energy()),
            ]);
        }
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

/// Regenerates the motivational example (Table I + Figure 1): the three
/// resource-management scenarios with Gantt charts and overall energies,
/// plus the S2 feasibility comparison.
pub fn motivation_report() -> String {
    let platform = scenarios::platform();
    let mut out = String::from(
        "Figure 1: three resource management scenarios (S1: σ1=⟨λ1,0,9⟩, σ2=⟨λ2,1,5⟩)\n\n",
    );
    let runs: [(&str, f64); 3] = [
        (
            "(a) Fixed mapper, remap @ application start",
            scenarios::fig1::FIXED_AT_START_J,
        ),
        (
            "(b) Fixed mapper, remap @ start and finish",
            scenarios::fig1::FIXED_AT_START_AND_FINISH_J,
        ),
        (
            "(c) Adaptive mapper (MMKP-MDF)",
            scenarios::fig1::ADAPTIVE_J,
        ),
    ];
    for (i, (title, paper)) in runs.iter().enumerate() {
        let outcome = match i {
            0 => run_scenario(
                platform.clone(),
                FixedMapper::new(),
                ReactivationPolicy::OnArrival,
                &scenarios::scenario_s1(),
            ),
            1 => run_scenario(
                platform.clone(),
                FixedMapper::new(),
                ReactivationPolicy::OnArrivalAndCompletion,
                &scenarios::scenario_s1(),
            ),
            _ => run_scenario(
                platform.clone(),
                MmkpMdf::new(),
                ReactivationPolicy::OnArrival,
                &scenarios::scenario_s1(),
            ),
        };
        out.push_str(&format!(
            "{title}\n  energy = {:.2} J (paper: {:.2} J)\n",
            outcome.total_energy, paper
        ));
        out.push_str(&outcome.gantt(&platform));
        out.push('\n');
    }

    out.push_str("Scenario S2 (σ2 deadline tightened to 4):\n");
    let fixed = run_scenario(
        platform.clone(),
        FixedMapper::new(),
        ReactivationPolicy::OnArrival,
        &scenarios::scenario_s2(),
    );
    let adaptive = run_scenario(
        platform.clone(),
        MmkpMdf::new(),
        ReactivationPolicy::OnArrival,
        &scenarios::scenario_s2(),
    );
    out.push_str(&format!(
        "  fixed mapper:    {} of 2 requests admitted (paper: rejects σ2)\n",
        fixed.accepted()
    ));
    out.push_str(&format!(
        "  adaptive mapper: {} of 2 requests admitted, energy {:.2} J\n",
        adaptive.accepted(),
        adaptive.total_energy
    ));
    out
}

/// Regenerates Table III: test-case counts by job count and deadline level.
pub fn table3_report(cases: &[TestCase]) -> String {
    let mut out = String::from("Table III: number of test cases\n\n");
    let mut t = TextTable::new(vec!["Deadline level", "1", "2", "3", "4", "total"]);
    for (level, counts) in tabulate(cases) {
        let total: usize = counts.iter().sum();
        t.add_row(vec![
            level.name().to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            counts[3].to_string(),
            total.to_string(),
        ]);
    }
    out.push_str(&t.to_string());
    let singles = cases.iter().filter(|c| c.is_single_app()).count();
    let initials = cases.iter().filter(|c| c.is_all_initial()).count();
    out.push_str(&format!(
        "\n{} cases total; {:.1}% single-application, {:.1}% all-initial progress\n",
        cases.len(),
        100.0 * singles as f64 / cases.len() as f64,
        100.0 * initials as f64 / cases.len() as f64,
    ));
    out
}

fn rate_table(eval: &SuiteEvaluation, level: DeadlineLevel) -> TextTable {
    let mut header = vec!["# Jobs".to_string()];
    header.extend(eval.scheduler_names.iter().cloned());
    let mut t = TextTable::new(header);
    for jobs in 1..=4 {
        if let Some(rates) = eval.scheduling_rate(level, jobs) {
            let mut row = vec![jobs.to_string()];
            row.extend(rates.iter().map(|r| format!("{r:.1}")));
            t.add_row(row);
        }
    }
    t
}

/// Regenerates Fig. 2: scheduling success rates for tight deadlines (and,
/// as a cross-check, the weak-deadline rates the paper reports as 100%).
pub fn fig2_report(eval: &SuiteEvaluation) -> String {
    let mut out = String::from("Figure 2: scheduling rate [%], tight deadlines\n\n");
    out.push_str(&rate_table(eval, DeadlineLevel::Tight).to_string());
    out.push_str("\nWeak deadlines (paper: all 100% for EX-MEM/MMKP-LR/MMKP-MDF):\n");
    out.push_str(&rate_table(eval, DeadlineLevel::Weak).to_string());
    out
}

/// The schedulers compared against the optimal reference: everything in
/// the evaluation except EX-MEM itself.
fn challengers(eval: &SuiteEvaluation) -> Vec<&str> {
    eval.scheduler_names
        .iter()
        .map(String::as_str)
        .filter(|n| *n != EXMEM_NAME)
        .collect()
}

/// Regenerates Table IV: geometric means of relative energy vs EX-MEM.
pub fn table4_report(eval: &SuiteEvaluation) -> String {
    let mut out =
        String::from("Table IV: geometric mean of relative energy consumption vs EX-MEM\n\n");
    if eval.index_of(EXMEM_NAME).is_none() {
        out.push_str("(EX-MEM not in this evaluation; no reference to compare against)\n");
        return out;
    }
    let names = challengers(eval);
    let mut header = vec!["# Jobs".to_string()];
    for name in &names {
        header.push(format!("{name} weak"));
        header.push(format!("{name} tight"));
    }
    let mut t = TextTable::new(header);
    let gm = |name: &str, level: Option<DeadlineLevel>, jobs: Option<usize>| -> String {
        match geometric_mean(&eval.relative_energies(name, EXMEM_NAME, level, jobs)) {
            Some(g) => format!("{g:.4}"),
            None => "-".to_string(),
        }
    };
    for jobs in 1..=4 {
        let mut row = vec![jobs.to_string()];
        for name in &names {
            row.push(gm(name, Some(DeadlineLevel::Weak), Some(jobs)));
            row.push(gm(name, Some(DeadlineLevel::Tight), Some(jobs)));
        }
        t.add_row(row);
    }
    let mut row = vec!["Overall".to_string()];
    for name in &names {
        row.push(gm(name, Some(DeadlineLevel::Weak), None));
        row.push(gm(name, Some(DeadlineLevel::Tight), None));
    }
    t.add_row(row);
    let mut row = vec!["(all levels)".to_string()];
    for name in &names {
        row.push(gm(name, None, None));
        row.push(String::new());
    }
    t.add_row(row);
    out.push_str(&t.to_string());
    out.push_str("\nPaper: LR overall 1.1452 (weak) / 1.1923 (tight) / 1.1665 (all);\n");
    out.push_str("       MDF overall 1.0042 (weak) / 1.0756 (tight) / 1.0356 (all).\n");
    out
}

/// Regenerates Fig. 3: S-curves of relative energy vs EX-MEM.
pub fn fig3_report(eval: &SuiteEvaluation) -> String {
    let mut out =
        String::from("Figure 3: S-curves of relative energy vs EX-MEM (lower is better)\n\n");
    for name in challengers(eval) {
        let rel = eval.relative_energies(name, EXMEM_NAME, None, None);
        let curve = SCurve::new(rel);
        let optimal = curve.count_at_or_below(1.0);
        out.push_str(&format!(
            "{}: {} scheduled cases, optimal in {} ({:.1}%)\n",
            name,
            curve.len(),
            optimal,
            if curve.is_empty() {
                0.0
            } else {
                100.0 * optimal as f64 / curve.len() as f64
            },
        ));
        if !curve.is_empty() {
            let samples = curve.sampled(13);
            let line: Vec<String> = samples.iter().map(|v| format!("{v:.3}")).collect();
            out.push_str(&format!("  percentiles 0..100: {}\n", line.join(" ")));
        }
    }
    out.push_str("\nPaper: MMKP-MDF optimal for 69.6% of scheduled tests, MMKP-LR for 9.0%.\n");
    out
}

/// Regenerates Fig. 4: box plots (five-number summaries + mean) of the
/// scheduling overhead per algorithm and job count.
pub fn fig4_report(eval: &SuiteEvaluation) -> String {
    let mut out = String::from("Figure 4: search time statistics [ms]\n\n");
    let mut t = TextTable::new(vec![
        "Scheduler",
        "# Jobs",
        "min",
        "q1",
        "median",
        "q3",
        "max",
        "mean",
    ]);
    for name in &eval.scheduler_names {
        for jobs in 1..=4 {
            let times = eval.search_times(name, jobs);
            if let Some(s) = BoxplotStats::from_samples(&times) {
                let ms = |v: f64| format!("{:.3}", v * 1e3);
                t.add_row(vec![
                    name.clone(),
                    jobs.to_string(),
                    ms(s.min),
                    ms(s.q1),
                    ms(s.median),
                    ms(s.q3),
                    ms(s.max),
                    ms(s.mean),
                ]);
            }
        }
    }
    out.push_str(&t.to_string());
    out.push_str(
        "\nPaper (Python prototype): EX-MEM avg 152 s @4 jobs; MMKP-LR ~163 ms; MMKP-MDF 5.7 ms\n(avg @4 jobs, worst case 21.6 ms). Shapes, not absolute values, are comparable.\n",
    );
    out
}

/// Summary block listing the application library used for the suite.
pub fn library_report(apps: &[AppRef]) -> String {
    let mut out = String::from("Application library (characterized by amrm-dataflow):\n");
    let mut t = TextTable::new(vec![
        "Application",
        "Pareto points",
        "τ range [s]",
        "ξ range [J]",
    ]);
    for app in apps {
        let tmin = app
            .points()
            .iter()
            .map(|p| p.time())
            .fold(f64::INFINITY, f64::min);
        let tmax = app.points().iter().map(|p| p.time()).fold(0.0, f64::max);
        let emin = app
            .points()
            .iter()
            .map(|p| p.energy())
            .fold(f64::INFINITY, f64::min);
        let emax = app.points().iter().map(|p| p.energy()).fold(0.0, f64::max);
        t.add_row(vec![
            app.name().to_string(),
            app.num_points().to_string(),
            format!("{tmin:.1}–{tmax:.1}"),
            format!("{emin:.1}–{emax:.1}"),
        ]);
    }
    out.push_str(&t.to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::evaluate_suite;
    use amrm_baselines::standard_registry;
    use amrm_workload::{generate_suite, SuiteSpec};

    #[test]
    fn table2_contains_paper_values() {
        let report = table2_report();
        assert!(report.contains("16.80"));
        assert!(report.contains("8.90"));
        assert!(report.contains("5.73"));
    }

    #[test]
    fn motivation_report_matches_paper_energies() {
        let report = motivation_report();
        assert!(report.contains("16.96"));
        assert!(report.contains("15.49"));
        assert!(report.contains("14.63"));
        assert!(report.contains("2 of 2 requests admitted"));
    }

    #[test]
    fn all_reports_render_on_a_small_suite() {
        let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
        let spec = SuiteSpec {
            weak_counts: [2, 2, 1, 0],
            tight_counts: [2, 2, 1, 0],
            ..SuiteSpec::default()
        };
        let cases = generate_suite(&lib, &spec, 3);
        let eval = evaluate_suite(&cases, &scenarios::platform(), 2, &standard_registry());
        for report in [
            table3_report(&cases),
            fig2_report(&eval),
            table4_report(&eval),
            fig3_report(&eval),
            fig4_report(&eval),
            library_report(&lib),
        ] {
            assert!(!report.is_empty());
        }
    }

    #[test]
    fn reports_include_every_registered_scheduler() {
        let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
        let spec = SuiteSpec {
            weak_counts: [1, 1, 0, 0],
            tight_counts: [1, 1, 0, 0],
            ..SuiteSpec::default()
        };
        let cases = generate_suite(&lib, &spec, 5);
        let eval = evaluate_suite(&cases, &scenarios::platform(), 1, &standard_registry());
        let fig2 = fig2_report(&eval);
        let fig4 = fig4_report(&eval);
        for name in &eval.scheduler_names {
            assert!(fig2.contains(name.as_str()), "fig2 missing {name}");
            assert!(fig4.contains(name.as_str()), "fig4 missing {name}");
        }
        // Table IV compares the challengers against EX-MEM.
        let table4 = table4_report(&eval);
        assert!(table4.contains("FIXED weak"));
        assert!(table4.contains("INCREMENTAL tight"));
    }
}
