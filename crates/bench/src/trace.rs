//! Deterministic event-journal trace of a federated META run
//! (`repro trace`).
//!
//! [`run_trace`] drives a bursty arrival stream through a small
//! federation — [`TRACE_SHARDS`] shards running META under batched
//! admission, hash-affinity routing with work stealing — with the
//! structured journal enabled end to end: each shard's kernel records
//! request lifecycles (arrival → window → flush → decision →
//! admit/reject → completion) and scheduler decisions (META regime and
//! budget switches, EX-MEM memo aggregates when present), while the
//! dispatcher records epoch barriers, per-request routing verdicts and
//! steals on its own track.
//!
//! The per-track journals export to Chrome trace-event JSON
//! (Perfetto-loadable; shards as processes, regimes as counter tracks)
//! via [`write_chrome`], and the aggregate per-kind / per-reject-reason
//! counts condense into a [`TraceReport`] that embeds into the perf
//! baseline (`BENCH_baseline.json`) as its `trace` section.

use amrm_baselines::{standard_registry, META_NAME};
use amrm_core::{BatchK, HashAffinity, ReactivationPolicy, Scheduler, SearchBudget};
use amrm_metrics::journal::{self, EventKind, JournalConfig, RejectReason};
use amrm_metrics::{Journal, TextTable, TraceSink};
use amrm_platform::Platform;
use amrm_sim::{Federation, FederationConfig, Simulation};
use amrm_workload::{ArrivalStream, StreamSpec};
use serde::{Deserialize, Serialize};

/// Shards in the traced federation.
pub const TRACE_SHARDS: usize = 4;

// The traced stream alternates dense bursts with idle valleys: the
// on-window load exceeds what BatchK shards can admit (so windows
// tighten, joint schedules fail and queues build deep enough to steal
// from), while the off-window lets META's signals relax back — both
// regime directions show up in one run.
const ON_INTERARRIVAL: f64 = 0.08;
const OFF_INTERARRIVAL: f64 = 2.0;
const WINDOW: f64 = 30.0;
const SLACK_RANGE: (f64, f64) = (1.2, 2.2);
const BATCH: usize = 8;
const EPOCH: usize = 2;
const STEAL_THRESHOLD: usize = 4;

/// One aggregate journal counter: `category` is `"event"` (per
/// [`EventKind`]) or `"reject"` (per [`RejectReason`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCount {
    /// `"event"` or `"reject"`.
    pub category: String,
    /// Stable machine-readable kind/reason name (e.g. `"regime_switch"`,
    /// `"queue_deadline"`).
    pub name: String,
    /// Occurrences summed over the dispatcher and every shard journal.
    pub count: u64,
}

/// Aggregate statistics of one traced run, ready to serialize
/// (`repro trace --json`) and to embed into the perf baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceReport {
    /// RNG seed of the bursty stream.
    pub seed: u64,
    /// Whether the quick (shrunken) request count was used.
    pub quick: bool,
    /// Requests offered to the federation.
    pub requests: usize,
    /// 1-in-N request sampling (0 = every request journaled).
    pub sample: u64,
    /// Shards in the federation.
    pub shards: usize,
    /// Requests admitted across all shards.
    pub accepted: usize,
    /// Requests that migrated between shards through work stealing.
    pub stolen: usize,
    /// Events journaled across all tracks (exact, ring eviction aside).
    pub total_events: u64,
    /// Events overwritten by the bounded rings across all tracks.
    pub dropped_events: u64,
    /// Per-kind event counts followed by per-reason reject counts; every
    /// kind and reason appears, zero counts included.
    pub counts: Vec<TraceCount>,
}

/// A traced run: the aggregate report plus the labelled per-track
/// journals (dispatcher first, then one per shard) for export.
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// Aggregate statistics over every track.
    pub report: TraceReport,
    /// `("dispatch", …)`, then `("shard0", …)` … in shard order.
    pub tracks: Vec<(String, Journal)>,
}

/// Runs the traced federation scenario at the standard request counts
/// (20k; quick: 2k).
///
/// # Panics
///
/// Panics if the META scheduler is not registered.
pub fn run_trace(quick: bool, seed: u64, sample: u64) -> TraceRun {
    run_trace_with(if quick { 2_000 } else { 20_000 }, quick, seed, sample)
}

/// [`run_trace`] over an explicit request count (tests use tiny runs).
///
/// # Panics
///
/// Panics if `requests` is zero or META is not registered.
pub fn run_trace_with(requests: usize, quick: bool, seed: u64, sample: u64) -> TraceRun {
    assert!(requests > 0, "trace needs at least one request");
    let platform = Platform::odroid_xu4();
    let library = amrm_dataflow::apps::benchmark_suite(&platform);
    let spec = StreamSpec {
        requests,
        slack_range: SLACK_RANGE,
    };
    let stream = ArrivalStream::bursty_window(
        &library,
        ON_INTERARRIVAL,
        OFF_INTERARRIVAL,
        WINDOW,
        &spec,
        seed,
    );
    let config = JournalConfig {
        sample,
        ..JournalConfig::default()
    };
    let pool: Vec<_> = (0..TRACE_SHARDS)
        .map(|_| {
            let mut shard: Simulation<Box<dyn Scheduler + Send>, _> = Simulation::open(
                platform.clone(),
                standard_registry()
                    .create(META_NAME)
                    .expect("META is registered"),
                ReactivationPolicy::OnArrival,
                BatchK(BATCH),
            )
            .with_search_budget(SearchBudget::online())
            .aggregated();
            shard.install_journal(TraceSink::enabled(config), config.sample);
            shard
        })
        .collect();
    let outcome = Federation::new(pool, Box::new(HashAffinity::new()))
        .with_config(FederationConfig {
            threads: 1,
            epoch: EPOCH,
            steal_threshold: Some(STEAL_THRESHOLD),
        })
        .with_trace(TraceSink::enabled(config))
        .run(stream);

    let mut tracks: Vec<(String, Journal)> = Vec::with_capacity(TRACE_SHARDS + 1);
    tracks.push((
        "dispatch".to_string(),
        outcome.journal.clone().expect("dispatcher journal enabled"),
    ));
    for (i, shard) in outcome.shards.iter().enumerate() {
        tracks.push((
            format!("shard{i}"),
            shard.journal.clone().expect("shard journal enabled"),
        ));
    }

    let mut counts = Vec::with_capacity(EventKind::ALL.len() + RejectReason::ALL.len());
    for kind in EventKind::ALL {
        counts.push(TraceCount {
            category: "event".to_string(),
            name: kind.name().to_string(),
            count: tracks.iter().map(|(_, j)| j.count_of(kind)).sum(),
        });
    }
    for reason in RejectReason::ALL {
        counts.push(TraceCount {
            category: "reject".to_string(),
            name: reason.name().to_string(),
            count: tracks.iter().map(|(_, j)| j.rejects_for(reason)).sum(),
        });
    }
    let report = TraceReport {
        seed,
        quick,
        requests,
        sample,
        shards: TRACE_SHARDS,
        accepted: outcome.accepted(),
        stolen: outcome.stolen,
        total_events: tracks.iter().map(|(_, j)| j.total()).sum(),
        dropped_events: tracks.iter().map(|(_, j)| j.dropped()).sum(),
        counts,
    };
    TraceRun { report, tracks }
}

/// Renders a trace report as aligned text tables: events by kind, then
/// rejects by reason.
pub fn trace_report(report: &TraceReport) -> String {
    let mut out = format!(
        "Event-journal trace: {} bursty requests over {} META shards \
         (seed {}, {}, {} events journaled, {} dropped)\n\n",
        report.requests,
        report.shards,
        report.seed,
        if report.sample <= 1 {
            "every request".to_string()
        } else {
            format!("1-in-{} request sampling", report.sample)
        },
        report.total_events,
        report.dropped_events,
    );
    let mut events = TextTable::new(vec!["Event", "count"]);
    let mut rejects = TextTable::new(vec!["Reject reason", "count"]);
    for c in &report.counts {
        if c.category == "event" {
            events.add_row(vec![c.name.clone(), c.count.to_string()]);
        } else {
            rejects.add_row(vec![c.name.clone(), c.count.to_string()]);
        }
    }
    out.push_str(&events.to_string());
    out.push('\n');
    out.push_str(&rejects.to_string());
    out.push_str(&format!(
        "\naccepted {} / {} requests; {} stolen between shards\n",
        report.accepted, report.requests, report.stolen
    ));
    out
}

/// Writes a trace report as pretty-printed JSON.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_json(path: impl AsRef<std::path::Path>, report: &TraceReport) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), report)
        .map_err(std::io::Error::other)
}

/// Writes the per-track journals as one Chrome trace-event document —
/// open it at <https://ui.perfetto.dev> (or `chrome://tracing`).
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_chrome(
    path: impl AsRef<std::path::Path>,
    tracks: &[(String, Journal)],
) -> std::io::Result<()> {
    let borrowed: Vec<(&str, &Journal)> = tracks.iter().map(|(l, j)| (l.as_str(), j)).collect();
    let file = std::fs::File::create(path)?;
    journal::write_chrome_trace(&borrowed, &mut std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    use super::*;

    #[test]
    fn trace_covers_the_event_kinds_and_lifecycles_are_complete() {
        // The acceptance gate of `repro trace`: the quick scenario at the
        // default seed must produce every headline event family —
        // request lifecycles, META regime switches, routing verdicts and
        // steals — and every journaled request's lifecycle must be
        // complete on its shard.
        let run = run_trace_with(2_000, true, 2020, 0);
        let count = |kind| {
            run.tracks
                .iter()
                .map(|(_, j)| j.count_of(kind))
                .sum::<u64>()
        };
        assert!(count(EventKind::Arrival) > 0, "no lifecycle events");
        assert!(count(EventKind::RegimeSwitch) > 0, "no regime switches");
        assert!(count(EventKind::Route) > 0, "no routing verdicts");
        assert!(count(EventKind::Steal) > 0, "no steals");
        let kinds_present = EventKind::ALL.iter().filter(|&&k| count(k) > 0).count();
        assert!(kinds_present >= 4, "only {kinds_present} event kinds");
        // Dispatcher routed every request exactly once.
        assert_eq!(count(EventKind::Route), 2_000);
        for (label, journal) in &run.tracks[1..] {
            assert_eq!(journal.dropped(), 0, "{label} ring-evicted events");
            journal
                .validate_lifecycles()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
        }
        // The aggregate counts mirror the per-track tallies.
        let arrival = run
            .report
            .counts
            .iter()
            .find(|c| c.category == "event" && c.name == "arrival")
            .expect("arrival row present");
        assert_eq!(arrival.count, count(EventKind::Arrival));
    }

    #[test]
    fn sampling_thins_lifecycles_but_not_decisions() {
        let full = run_trace_with(600, true, 7, 0);
        let sampled = run_trace_with(600, true, 7, 8);
        let lifecycle = |run: &TraceRun| {
            run.tracks
                .iter()
                .map(|(_, j)| j.count_of(EventKind::Arrival))
                .sum::<u64>()
        };
        assert!(lifecycle(&sampled) < lifecycle(&full) / 4);
        // Sampling is observation-only: admissions are bit-identical.
        assert_eq!(full.report.accepted, sampled.report.accepted);
        assert_eq!(full.report.stolen, sampled.report.stolen);
        // Sampled lifecycles still validate.
        for (label, journal) in &sampled.tracks[1..] {
            journal
                .validate_lifecycles()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }

    #[test]
    fn traced_runs_are_deterministic_per_seed() {
        let a = run_trace_with(400, true, 11, 0);
        let b = run_trace_with(400, true, 11, 0);
        assert_eq!(a.tracks.len(), b.tracks.len());
        for ((la, ja), (lb, jb)) in a.tracks.iter().zip(&b.tracks) {
            assert_eq!(la, lb);
            assert_eq!(ja.events(), jb.events(), "{la} journals diverge");
        }
        assert_eq!(a.report.accepted, b.report.accepted);
    }

    #[test]
    fn chrome_export_carries_every_track() {
        let run = run_trace_with(300, true, 3, 0);
        let path = std::env::temp_dir().join("amrm_trace_chrome.json");
        write_chrome(&path, &run.tracks).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("traceEvents"));
        assert!(text.contains("dispatch"));
        assert!(text.contains("shard3"));
        assert!(text.contains("regime"));
    }

    #[test]
    fn report_roundtrips_through_json() {
        let run = run_trace_with(300, true, 5, 4);
        let path = std::env::temp_dir().join("amrm_trace_roundtrip.json");
        write_json(&path, &run.report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let back: TraceReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.seed, 5);
        assert_eq!(back.sample, 4);
        assert_eq!(back.counts, run.report.counts);
        let rendered = trace_report(&back);
        assert!(rendered.contains("regime_switch"));
        assert!(rendered.contains("queue_deadline"));
    }

    #[test]
    #[ignore = "wall-clock overhead gate; run with --release -- --ignored"]
    fn sampled_journal_keeps_most_of_the_throughput() {
        // The overhead gate: 1-in-64 sampling must keep ≥ 80% of the
        // journal-off throughput on the quick trace scenario.
        let timed = |sample: Option<u64>| {
            let t0 = Instant::now();
            let requests = 20_000;
            match sample {
                Some(s) => {
                    let _ = run_trace_with(requests, true, 2020, s);
                }
                None => {
                    // Journal-free control: the same federation without
                    // any sink installed.
                    let platform = Platform::odroid_xu4();
                    let library = amrm_dataflow::apps::benchmark_suite(&platform);
                    let spec = StreamSpec {
                        requests,
                        slack_range: SLACK_RANGE,
                    };
                    let stream = ArrivalStream::bursty_window(
                        &library,
                        ON_INTERARRIVAL,
                        OFF_INTERARRIVAL,
                        WINDOW,
                        &spec,
                        2020,
                    );
                    let pool: Vec<_> = (0..TRACE_SHARDS)
                        .map(|_| {
                            let shard: Simulation<Box<dyn Scheduler + Send>, _> = Simulation::open(
                                platform.clone(),
                                standard_registry()
                                    .create(META_NAME)
                                    .expect("META is registered"),
                                ReactivationPolicy::OnArrival,
                                BatchK(BATCH),
                            )
                            .with_search_budget(SearchBudget::online())
                            .aggregated();
                            shard
                        })
                        .collect();
                    let _ = Federation::new(pool, Box::new(HashAffinity::new()))
                        .with_config(FederationConfig {
                            threads: 1,
                            epoch: EPOCH,
                            steal_threshold: Some(STEAL_THRESHOLD),
                        })
                        .run(stream);
                }
            }
            t0.elapsed().as_secs_f64()
        };
        // Warm up, then measure.
        let _ = timed(None);
        let off = timed(None);
        let on = timed(Some(64));
        assert!(
            on <= off / 0.8,
            "1-in-64 journal costs too much: {on:.3} s vs {off:.3} s journal-off"
        );
    }
}
