//! First-class load sweeps: acceptance/energy curves over an offered-load
//! grid × registry schedulers × admission policies.
//!
//! [`sweep_grid`] crosses every registered scheduler with every admission
//! policy and replays the same seeded Poisson stream shape at each mean
//! inter-arrival time, producing one [`SweepCell`] per (policy ×
//! scheduler × load) point. The per-(policy × scheduler) curves are
//! computed by [`amrm_sim::load_sweep_with`] and the independent curves
//! fan out over OS threads via the shared
//! [`for_each_cell`](amrm_core::fanout::for_each_cell) work index.
//!
//! Every cell runs under [`SearchBudget::online`]-style budgets supplied
//! by the caller, so the anytime EX-MEM (and the META selector's exact
//! regime) sweep alongside the heuristics instead of sitting out. The
//! `repro sweep` subcommand renders [`sweep_report`] and `--json`
//! persists a [`SweepReport`].

use amrm_core::fanout::for_each_cell;
use amrm_core::{ReactivationPolicy, SchedulerRegistry, SearchBudget};
use amrm_metrics::{instrument, CounterSnapshot, TextTable};
use amrm_model::AppRef;
use amrm_platform::Platform;
use amrm_sim::{load_sweep_streams, poisson_streams};
use amrm_workload::StreamSpec;
use serde::{Deserialize, Serialize};

use crate::admission::PolicyFactory;

/// One (admission policy × scheduler × offered load) point of a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell {
    /// Admission-policy label (e.g. `"AdaptiveBatch"`).
    pub policy: String,
    /// Scheduler (registry) name.
    pub scheduler: String,
    /// Mean inter-arrival time of the Poisson stream at this point.
    pub mean_interarrival: f64,
    /// Requests offered.
    pub requests: usize,
    /// Requests admitted.
    pub accepted: usize,
    /// Acceptance rate in `[0, 1]`.
    pub acceptance_rate: f64,
    /// Energy per admitted job, in joules (0.0 if nothing admitted).
    pub energy_per_job: f64,
    /// Scheduler activations over the run.
    pub activations: usize,
    /// Requests dropped from the admission queue at their deadline.
    pub queue_deadline_drops: usize,
    /// Admitted jobs that finished late (0 unless a scheduler misbehaved).
    pub deadline_misses: usize,
    /// Hot-path instrumentation counters for this cell alone: the
    /// thread-local counters are *drained* around every point, so cells
    /// sharing a worker thread no longer bleed counts into each other.
    pub counters: CounterSnapshot,
}

/// A whole sweep run plus its provenance, ready to serialize as a JSON
/// artifact (`repro sweep --json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// RNG seed of the request streams.
    pub seed: u64,
    /// Whether the quick grid was used.
    pub quick: bool,
    /// Requests per load point.
    pub requests_per_point: usize,
    /// The offered-load grid (mean inter-arrival seconds), densest first.
    pub interarrivals: Vec<f64>,
    /// One cell per (policy × scheduler × load), policies outermost,
    /// schedulers in registry order, loads in grid order innermost.
    pub cells: Vec<SweepCell>,
}

/// Runs the (policy × scheduler × load) sweep grid. Cells are grouped as
/// (policy × scheduler) curves — each curve replays identical seeded
/// streams over `interarrivals` via [`load_sweep_with`] — and the curves
/// fan out over `threads` OS threads. `budget` bounds every scheduler
/// activation (pass [`SearchBudget::online`] so exhaustive search cannot
/// stall a dense-load cell).
///
/// # Panics
///
/// Panics if `threads` is zero, the registry or policy set is empty,
/// `interarrivals` is empty, or the stream spec is invalid.
#[allow(clippy::too_many_arguments)]
pub fn sweep_grid(
    platform: &Platform,
    registry: &SchedulerRegistry,
    policies: &[PolicyFactory],
    apps: &[AppRef],
    interarrivals: &[f64],
    spec: &StreamSpec,
    seed: u64,
    threads: usize,
    budget: SearchBudget,
) -> Vec<SweepCell> {
    assert!(!registry.is_empty(), "registry must not be empty");
    assert!(!policies.is_empty(), "need at least one admission policy");
    let columns = registry.len();
    let names = registry.names();
    // Every (policy × scheduler) curve replays identical seeded streams,
    // so generate them exactly once and share across all curves.
    let streams = poisson_streams(apps, interarrivals, spec, seed);
    let curves = for_each_cell(policies.len() * columns, threads, |curve| {
        let policy_idx = curve / columns;
        let sched_idx = curve % columns;
        let factory = registry
            .iter()
            .nth(sched_idx)
            .expect("scheduler index in range")
            .1;
        let label = policies[policy_idx]().label();
        let mut out = Vec::with_capacity(interarrivals.len());
        // One point per call so the thread-local counters can be drained
        // around each cell: consecutive cells on the same worker thread
        // must not leak counts into each other.
        for i in 0..interarrivals.len() {
            let _ = instrument::take();
            let points = load_sweep_streams(
                platform,
                || factory(),
                ReactivationPolicy::OnArrival,
                || policies[policy_idx](),
                &interarrivals[i..=i],
                &streams[i..=i],
                budget,
                1,
            );
            let counters = instrument::take();
            for p in points {
                out.push(SweepCell {
                    policy: label.clone(),
                    scheduler: names[sched_idx].to_string(),
                    mean_interarrival: p.mean_interarrival,
                    requests: p.outcome.admissions.len(),
                    accepted: p.outcome.accepted(),
                    acceptance_rate: p.acceptance_rate,
                    energy_per_job: p.energy_per_job,
                    activations: p.outcome.stats.activations,
                    queue_deadline_drops: p.outcome.queue_deadline_drops,
                    deadline_misses: p.outcome.stats.deadline_misses,
                    counters,
                });
            }
        }
        out
    });
    curves.into_iter().flatten().collect()
}

/// Renders sweep cells as acceptance/energy curves: one row per (policy,
/// scheduler), one acceptance and energy column pair per load point.
pub fn sweep_report(cells: &[SweepCell], interarrivals: &[f64]) -> String {
    let mut out = String::from(
        "Load sweep: acceptance rate and energy/job over offered load \
         (Poisson mean inter-arrival, seconds)\n\n",
    );
    let mut header = vec!["Policy".to_string(), "Scheduler".to_string()];
    for &mean in interarrivals {
        header.push(format!("acc@{mean}"));
        header.push(format!("J/job@{mean}"));
    }
    let mut t = TextTable::new(header.iter().map(String::as_str).collect());
    let mut row_keys: Vec<(String, String)> = Vec::new();
    for c in cells {
        let key = (c.policy.clone(), c.scheduler.clone());
        if !row_keys.contains(&key) {
            row_keys.push(key);
        }
    }
    for (policy, scheduler) in row_keys {
        let mut row = vec![policy.clone(), scheduler.clone()];
        for &mean in interarrivals {
            let cell = cells.iter().find(|c| {
                c.policy == policy && c.scheduler == scheduler && c.mean_interarrival == mean
            });
            match cell {
                Some(c) => {
                    row.push(format!("{:.2}", c.acceptance_rate));
                    row.push(format!("{:.2}", c.energy_per_job));
                }
                None => {
                    row.push("-".to_string());
                    row.push("-".to_string());
                }
            }
        }
        t.add_row(row);
    }
    out.push_str(&t.to_string());
    out.push_str(
        "\nDenser load (smaller mean inter-arrival) stresses admission: \
         adaptive scheduling holds acceptance longer and budgeted EX-MEM\n\
         (and META's exact regime) now sweep alongside the heuristics \
         under the online search budget.\n",
    );
    out
}

/// Writes a sweep report as pretty-printed JSON.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_json(path: impl AsRef<std::path::Path>, report: &SweepReport) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), report)
        .map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_baselines::{standard_registry, FIXED_NAME, MDF_NAME, META_NAME};
    use amrm_core::{BatchK, Immediate};
    use amrm_workload::scenarios;

    fn tiny_policies() -> Vec<PolicyFactory> {
        vec![
            Box::new(|| Box::new(Immediate)),
            Box::new(|| Box::new(BatchK(2))),
        ]
    }

    fn lib() -> Vec<AppRef> {
        vec![scenarios::lambda1(), scenarios::lambda2()]
    }

    #[test]
    fn grid_covers_policy_times_scheduler_times_load() {
        let registry = standard_registry().subset(&[MDF_NAME, FIXED_NAME]);
        let spec = StreamSpec {
            requests: 8,
            slack_range: (1.5, 2.5),
        };
        let loads = [2.0, 8.0];
        let cells = sweep_grid(
            &scenarios::platform(),
            &registry,
            &tiny_policies(),
            &lib(),
            &loads,
            &spec,
            11,
            2,
            SearchBudget::online(),
        );
        assert_eq!(cells.len(), 2 * 2 * 2);
        // Policies outermost, schedulers next, loads innermost.
        assert_eq!(cells[0].policy, "Immediate");
        assert_eq!(cells[0].scheduler, MDF_NAME);
        assert_eq!(cells[0].mean_interarrival, 2.0);
        assert_eq!(cells[1].mean_interarrival, 8.0);
        assert_eq!(cells[2].scheduler, FIXED_NAME);
        assert_eq!(cells[4].policy, "BatchK(2)");
        for c in &cells {
            assert!((0.0..=1.0).contains(&c.acceptance_rate));
            assert!(c.accepted <= c.requests);
            assert_eq!(c.deadline_misses, 0);
        }
    }

    #[test]
    fn serial_and_parallel_sweeps_agree_bitwise() {
        let registry = standard_registry().subset(&[MDF_NAME, META_NAME]);
        let spec = StreamSpec {
            requests: 10,
            slack_range: (1.4, 2.8),
        };
        let loads = [1.5, 6.0];
        let run = |threads| {
            sweep_grid(
                &scenarios::platform(),
                &registry,
                &tiny_policies(),
                &lib(),
                &loads,
                &spec,
                7,
                threads,
                SearchBudget::online(),
            )
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.scheduler, b.scheduler);
            assert_eq!(a.accepted, b.accepted);
            assert_eq!(a.acceptance_rate.to_bits(), b.acceptance_rate.to_bits());
            assert_eq!(a.energy_per_job.to_bits(), b.energy_per_job.to_bits());
        }
    }

    #[test]
    fn report_renders_a_row_per_policy_scheduler_pair() {
        let registry = standard_registry().subset(&[MDF_NAME]);
        let spec = StreamSpec {
            requests: 6,
            slack_range: (1.5, 2.5),
        };
        let loads = [3.0, 9.0];
        let cells = sweep_grid(
            &scenarios::platform(),
            &registry,
            &tiny_policies(),
            &lib(),
            &loads,
            &spec,
            3,
            1,
            SearchBudget::online(),
        );
        let report = sweep_report(&cells, &loads);
        assert!(report.contains("Immediate"));
        assert!(report.contains("BatchK(2)"));
        assert!(report.contains(MDF_NAME));
        assert!(report.contains("acc@3"));
        assert!(report.contains("J/job@9"));
    }

    #[test]
    fn sweep_report_roundtrips_through_json() {
        let registry = standard_registry().subset(&[MDF_NAME]);
        let spec = StreamSpec {
            requests: 5,
            slack_range: (1.5, 2.5),
        };
        let loads = vec![4.0];
        let report = SweepReport {
            seed: 3,
            quick: true,
            requests_per_point: spec.requests,
            interarrivals: loads.clone(),
            cells: sweep_grid(
                &scenarios::platform(),
                &registry,
                &tiny_policies(),
                &lib(),
                &loads,
                &spec,
                3,
                1,
                SearchBudget::online(),
            ),
        };
        let path = std::env::temp_dir().join("amrm_sweep_roundtrip.json");
        write_json(&path, &report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let back: SweepReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.seed, 3);
        assert_eq!(back.cells.len(), report.cells.len());
        assert_eq!(back.cells[0].policy, report.cells[0].policy);
        assert_eq!(back.interarrivals, vec![4.0]);
    }
}
