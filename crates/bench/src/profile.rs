//! Million-request throughput profile of the streaming event kernel
//! (`repro profile`).
//!
//! [`run_profile`] drives a lazily generated diurnal
//! [`ArrivalStream`](amrm_workload::ArrivalStream) — never materialized —
//! through the event kernel for each profiled scheduler (MMKP-MDF and
//! META under the online search budget) in lean outcome mode, and reports
//! wall-clock throughput (requests/s, events/s) together with the
//! thread-local instrumentation counters the kernel, the runtime manager
//! and EX-MEM's memo table bump on their hot paths. Cells run *serially*
//! on the calling thread — the counters are thread-local, and a
//! throughput measurement shares no cores.
//!
//! When the `repro` binary is built with the `count-alloc` feature the
//! counting global allocator is installed and the report additionally
//! carries allocation deltas per cell and the process-wide peak; in the
//! default build those fields are zero.

use std::time::Instant;

use amrm_baselines::{standard_registry, EXMEM_NAME, MDF_NAME, META_NAME};
use amrm_core::{Immediate, ReactivationPolicy, SearchBudget};
use amrm_metrics::{instrument, CounterSnapshot, CountingAllocator, TextTable};
use amrm_platform::Platform;
use amrm_sim::Simulation;
use amrm_workload::{ArrivalStream, StreamSpec};
use serde::{Deserialize, Serialize};

/// The diurnal stream shape every profile run uses: mean inter-arrival
/// 0.5 s swinging ×3 over a 600 s period — dense enough to keep the
/// platform saturated (so admission exercises both accept and reject
/// paths) while the bounded job set keeps activations O(1).
const MEAN_INTERARRIVAL: f64 = 0.5;
const PEAK_FACTOR: f64 = 3.0;
const PERIOD: f64 = 600.0;
const SLACK_RANGE: (f64, f64) = (1.5, 3.0);

/// Throughput and operation mix of one scheduler over the profile stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileCell {
    /// Scheduler (registry) name.
    pub scheduler: String,
    /// Requests streamed through the kernel.
    pub requests: usize,
    /// Requests admitted.
    pub accepted: usize,
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
    /// Requests decided per wall-clock second.
    pub requests_per_second: f64,
    /// Kernel events handled per wall-clock second.
    pub events_per_second: f64,
    /// Hot-path instrumentation counters for this run.
    pub counters: CounterSnapshot,
    /// Bytes allocated during this run (0 unless the counting allocator
    /// is installed — build `repro` with `--features count-alloc`).
    pub allocated_bytes: u64,
    /// Allocation calls during this run (0 unless counting).
    pub allocation_calls: u64,
}

/// A whole profile run plus its provenance, embedded into the perf
/// baseline (`BENCH_baseline.json`) and written standalone by
/// `repro profile --json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileReport {
    /// RNG seed of the diurnal stream.
    pub seed: u64,
    /// Requests per cell.
    pub requests: usize,
    /// One cell per profiled scheduler.
    pub cells: Vec<ProfileCell>,
    /// Process-wide live-bytes high-water mark at the end of the run
    /// (0 unless the counting allocator is installed).
    pub peak_alloc_bytes: u64,
}

/// The EX-MEM exact-path profile cell runs at `requests /
/// EXACT_PROFILE_DIVISOR` arrivals: a budgeted exhaustive activation
/// costs orders of magnitude more than a heuristic one, and the cell
/// exists to watch the *per-activation* cost of the capped ranked search
/// (and its memo hit rate), not to race the streaming kernel.
pub const EXACT_PROFILE_DIVISOR: usize = 100;

/// Runs the throughput profile: `requests` diurnal arrivals through the
/// streaming kernel once per profiled scheduler (MMKP-MDF, META), in lean
/// outcome mode under [`SearchBudget::online`], plus an EX-MEM exact-path
/// cell at `requests / `[`EXACT_PROFILE_DIVISOR`] arrivals (each cell's
/// own `requests` field records its count).
///
/// # Panics
///
/// Panics if `requests` is zero.
pub fn run_profile(requests: usize, seed: u64) -> ProfileReport {
    let mut report = run_profile_with(requests, seed, &[MDF_NAME, META_NAME]);
    let exact = run_profile_with(
        (requests / EXACT_PROFILE_DIVISOR).max(1),
        seed,
        &[EXMEM_NAME],
    );
    report.cells.extend(exact.cells);
    report.peak_alloc_bytes = report.peak_alloc_bytes.max(exact.peak_alloc_bytes);
    report
}

/// [`run_profile`] over an explicit registry subset — the 1M-request
/// smoke test profiles MMKP-MDF alone to keep its wall-clock bound tight.
///
/// # Panics
///
/// Panics if `requests` is zero or a name is not registered.
pub fn run_profile_with(requests: usize, seed: u64, schedulers: &[&str]) -> ProfileReport {
    assert!(requests > 0, "profile needs at least one request");
    let platform = Platform::odroid_xu4();
    let library = amrm_dataflow::apps::benchmark_suite(&platform);
    let spec = StreamSpec {
        requests,
        slack_range: SLACK_RANGE,
    };
    let registry = standard_registry().subset(schedulers);
    let cells = registry
        .iter()
        .map(|(name, factory)| {
            let stream = ArrivalStream::diurnal(
                &library,
                MEAN_INTERARRIVAL,
                PEAK_FACTOR,
                PERIOD,
                &spec,
                seed,
            );
            // Drain (not just read) the thread-local counters around the
            // cell: a leftover snapshot from an earlier run on this thread
            // must not bleed into this cell, and this cell's counts must
            // not bleed into the next.
            let _ = instrument::take();
            let alloc0 = CountingAllocator::total_allocated_bytes();
            let calls0 = CountingAllocator::allocation_calls();
            let t0 = Instant::now();
            let outcome = Simulation::from_stream(
                platform.clone(),
                factory(),
                ReactivationPolicy::OnArrival,
                Immediate,
                stream,
            )
            .with_search_budget(SearchBudget::online())
            .without_trace()
            .run();
            let wall = t0.elapsed().as_secs_f64().max(f64::EPSILON);
            let counters = instrument::take();
            ProfileCell {
                scheduler: name.to_string(),
                requests,
                accepted: outcome.accepted(),
                wall_seconds: wall,
                requests_per_second: requests as f64 / wall,
                events_per_second: counters.events as f64 / wall,
                counters,
                allocated_bytes: CountingAllocator::total_allocated_bytes() - alloc0,
                allocation_calls: CountingAllocator::allocation_calls() - calls0,
            }
        })
        .collect();
    ProfileReport {
        seed,
        requests,
        cells,
        peak_alloc_bytes: CountingAllocator::peak_bytes(),
    }
}

/// Renders a profile report as an aligned text table plus an allocator
/// footnote.
pub fn profile_report(report: &ProfileReport) -> String {
    let mut out = format!(
        "Streaming-kernel throughput profile: {} diurnal requests per heuristic \
         scheduler, 1/{} of that on the EX-MEM exact path (seed {})\n\n",
        report.requests, EXACT_PROFILE_DIVISOR, report.seed
    );
    let mut t = TextTable::new(vec![
        "Scheduler",
        "requests",
        "accepted",
        "wall s",
        "req/s",
        "events/s",
        "events",
        "pushes",
        "flushes",
        "activations",
        "memo hits",
        "peak queue",
    ]);
    for c in &report.cells {
        t.add_row(vec![
            c.scheduler.clone(),
            c.requests.to_string(),
            c.accepted.to_string(),
            format!("{:.2}", c.wall_seconds),
            format!("{:.0}", c.requests_per_second),
            format!("{:.0}", c.events_per_second),
            c.counters.events.to_string(),
            c.counters.heap_pushes.to_string(),
            c.counters.flushes.to_string(),
            c.counters.schedule_calls.to_string(),
            c.counters.memo_hits.to_string(),
            c.counters.peak_queue_depth.to_string(),
        ]);
    }
    out.push_str(&t.to_string());
    if CountingAllocator::installed() {
        out.push_str(&format!(
            "\npeak live allocation: {:.1} MiB",
            report.peak_alloc_bytes as f64 / (1024.0 * 1024.0)
        ));
        for c in &report.cells {
            out.push_str(&format!(
                "\n  {}: {:.1} MiB allocated over {} calls",
                c.scheduler,
                c.allocated_bytes as f64 / (1024.0 * 1024.0),
                c.allocation_calls
            ));
        }
        out.push('\n');
    } else {
        out.push_str(
            "\nallocation counters inactive (build with --features count-alloc to enable)\n",
        );
    }
    out
}

/// The fraction of a recorded baseline's events/s a run may drop to
/// before the floor guard fails. Deliberately loose: the guard catches
/// order-of-magnitude regressions (an accidentally quadratic hot path,
/// re-materialized streams), not machine-to-machine noise.
pub const FLOOR_FRACTION: f64 = 0.2;

/// Compares a fresh profile against the cells recorded in the committed
/// perf baseline: every scheduler present in both must reach at least
/// [`FLOOR_FRACTION`] of the recorded events/s.
///
/// # Errors
///
/// Returns a message naming every scheduler below its floor. A baseline
/// without profile cells (or with disjoint schedulers) passes vacuously.
pub fn check_floor(current: &[ProfileCell], baseline: &[ProfileCell]) -> Result<(), String> {
    let mut failures = Vec::new();
    for cell in current {
        let Some(recorded) = baseline.iter().find(|b| b.scheduler == cell.scheduler) else {
            continue;
        };
        let floor = recorded.events_per_second * FLOOR_FRACTION;
        if cell.events_per_second < floor {
            failures.push(format!(
                "{}: {:.0} events/s is below the floor of {:.0} (recorded {:.0})",
                cell.scheduler, cell.events_per_second, floor, recorded.events_per_second
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Writes a profile report as pretty-printed JSON.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_json(
    path: impl AsRef<std::path::Path>,
    report: &ProfileReport,
) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), report)
        .map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_measures_throughput_and_counters() {
        let report = run_profile(200, 7);
        assert_eq!(report.requests, 200);
        assert_eq!(report.cells.len(), 3);
        assert_eq!(report.cells[0].scheduler, MDF_NAME);
        assert_eq!(report.cells[1].scheduler, META_NAME);
        assert_eq!(report.cells[2].scheduler, EXMEM_NAME);
        // The exact-path cell runs at the reduced request count; its own
        // `requests` field records it.
        let exact = &report.cells[2];
        assert_eq!(exact.requests, 200 / EXACT_PROFILE_DIVISOR);
        assert!(exact.accepted <= exact.requests);
        assert!(exact.wall_seconds > 0.0);
        assert!(exact.counters.schedule_calls > 0);
        for c in &report.cells[..2] {
            assert_eq!(c.requests, 200);
            assert!(c.accepted <= c.requests);
            assert!(c.wall_seconds > 0.0);
            assert!(c.requests_per_second > 0.0);
            assert!(c.events_per_second > 0.0);
            // Every request arrives exactly once; completions add more.
            assert!(c.counters.events >= 200);
            assert!(c.counters.heap_pushes >= 200);
            // Immediate admission: one flush and one decision per request.
            assert_eq!(c.counters.flushes, 200);
            assert!(c.counters.schedule_calls > 0);
            assert!(c.counters.peak_queue_depth >= 1);
        }
    }

    #[test]
    fn profile_is_deterministic_per_seed_on_admissions() {
        let a = run_profile(150, 3);
        let b = run_profile(150, 3);
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.scheduler, y.scheduler);
            assert_eq!(x.accepted, y.accepted);
            assert_eq!(x.counters.events, y.counters.events);
            assert_eq!(x.counters.schedule_calls, y.counters.schedule_calls);
        }
    }

    #[test]
    fn floor_guard_flags_only_regressions() {
        let fast = run_profile(100, 1);
        // A run can never be 5× below itself.
        check_floor(&fast.cells, &fast.cells).unwrap();
        // Vacuous against an empty or disjoint baseline.
        check_floor(&fast.cells, &[]).unwrap();
        // A synthetic 10× faster baseline must trip the guard.
        let mut inflated = fast.cells.clone();
        for c in &mut inflated {
            c.events_per_second *= 10.0;
        }
        let err = check_floor(&fast.cells, &inflated).unwrap_err();
        assert!(err.contains("below the floor"));
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = run_profile(80, 5);
        let path = std::env::temp_dir().join("amrm_profile_roundtrip.json");
        write_json(&path, &report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let back: ProfileReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.seed, 5);
        assert_eq!(back.cells.len(), report.cells.len());
        assert_eq!(
            back.cells[0].counters.events,
            report.cells[0].counters.events
        );
        let rendered = profile_report(&back);
        assert!(rendered.contains(MDF_NAME));
        assert!(rendered.contains("events/s"));
    }
}
