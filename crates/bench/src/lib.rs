//! Benchmark and experiment-regeneration harness.
//!
//! One module per concern:
//!
//! * [`runner`] — evaluates every scheduler in a
//!   [`SchedulerRegistry`](amrm_core::SchedulerRegistry) over a workload
//!   suite, collecting feasibility, energy and wall-clock search time;
//! * [`admission`] — A/B-evaluates batched-admission policies × registry
//!   schedulers on one seeded online stream (acceptance, energy/job,
//!   activations);
//! * [`reports`] — renders each table/figure of the paper from those
//!   results, one column per registered scheduler;
//! * [`sweep`] — acceptance/energy curves over an offered-load grid ×
//!   schedulers × admission policies (`repro sweep`);
//! * [`tune`] — deterministic grid/random parameter fitting for the
//!   adaptive policies and the META thresholds (`repro tune`), scored in
//!   the sweep's acceptance/energy currency;
//! * [`profile`] — million-request streaming-kernel throughput profile
//!   with hot-path instrumentation counters (`repro profile`);
//! * [`shard`] — sharded-federation weak-scaling benchmark: shard counts
//!   × routing policies over one dispatched arrival stream
//!   (`repro shard`);
//! * [`trace`] — deterministic event-journal trace of a federated META
//!   run with Chrome trace-event (Perfetto) export (`repro trace`);
//! * [`exact`] — EX-MEM exact-path A/B: capped candidate ranking vs the
//!   uncapped enumeration on the bursty grid stream, and cold-solve vs
//!   warm-start replay from a persisted mapping cache (`repro exact`);
//! * [`baseline`] — condenses an evaluation into the machine-readable
//!   perf baseline (`BENCH_baseline.json`).
//!
//! The `repro` binary drives all of them; Criterion benches under
//! `benches/` measure steady-state scheduler overhead (Fig. 4), the
//! execution-engine hot path, and ablations. Grid-shaped evaluations
//! share one work-stealing fan-out helper, re-exported here as
//! [`fanout`].

pub mod ablation;
pub mod admission;
pub mod baseline;
pub mod exact;
pub mod profile;
pub mod reports;
pub mod runner;
pub mod shard;
pub mod sweep;
pub mod trace;
pub mod tune;

pub use amrm_core::fanout;

pub use crate::admission::{admission_grid, admission_report, standard_policies, AdmissionCell};
pub use crate::baseline::{summarize, write_json, PerfBaseline, SchedulerBaseline};
pub use crate::exact::{exact_report, run_exact, run_exact_with, ExactCell, ExactReport};
pub use crate::profile::{
    check_floor, profile_report, run_profile, run_profile_with, ProfileCell, ProfileReport,
};
pub use crate::runner::{evaluate_case, evaluate_suite, CaseResult, SchedResult, SuiteEvaluation};
pub use crate::shard::{
    run_shard_bench, shard_report, weak_scaling_speedup, ShardCell, ShardReport,
};
pub use crate::sweep::{sweep_grid, sweep_report, SweepCell, SweepReport};
pub use crate::trace::{run_trace, trace_report, TraceCount, TraceReport, TraceRun};
pub use crate::tune::{tune_grid, tune_report, TuneOptions, TuneReport};
