//! Benchmark and experiment-regeneration harness.
//!
//! One module per concern:
//!
//! * [`runner`] — evaluates every scheduler in a
//!   [`SchedulerRegistry`](amrm_core::SchedulerRegistry) over a workload
//!   suite, collecting feasibility, energy and wall-clock search time;
//! * [`admission`] — A/B-evaluates batched-admission policies × registry
//!   schedulers on one seeded online stream (acceptance, energy/job,
//!   activations);
//! * [`reports`] — renders each table/figure of the paper from those
//!   results, one column per registered scheduler;
//! * [`baseline`] — condenses an evaluation into the machine-readable
//!   perf baseline (`BENCH_baseline.json`).
//!
//! The `repro` binary drives all three; Criterion benches under `benches/`
//! measure steady-state scheduler overhead (Fig. 4), the execution-engine
//! hot path, and ablations.

pub mod ablation;
pub mod admission;
pub mod baseline;
pub mod reports;
pub mod runner;

pub use crate::admission::{admission_grid, admission_report, standard_policies, AdmissionCell};
pub use crate::baseline::{summarize, write_json, PerfBaseline, SchedulerBaseline};
pub use crate::runner::{evaluate_case, evaluate_suite, CaseResult, SchedResult, SuiteEvaluation};
