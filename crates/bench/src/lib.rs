//! Benchmark and experiment-regeneration harness.
//!
//! One module per concern:
//!
//! * [`runner`] — evaluates every scheduler over a workload suite,
//!   collecting feasibility, energy and wall-clock search time;
//! * [`reports`] — renders each table/figure of the paper from those
//!   results (see `DESIGN.md` for the experiment index).
//!
//! The `repro` binary drives both; Criterion benches under `benches/`
//! measure steady-state scheduler overhead (Fig. 4) and ablations.

pub mod ablation;
pub mod reports;
pub mod runner;

pub use crate::runner::{
    evaluate_case, evaluate_suite, relative_energies, scheduler_names, scheduling_rate,
    search_times, CaseResult, SchedResult, EXMEM, LR, MDF,
};
