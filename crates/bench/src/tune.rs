//! Parameter fitting for the adaptive subsystems: a deterministic
//! grid-plus-random search over the AIMD constants ([`AdaptiveBatch`]),
//! the [`SlackAware`] margin and the META regime thresholds
//! ([`MetaConfig`]), scored with the same acceptance/energy currency the
//! `repro sweep` curves report.
//!
//! The ROADMAP's standing complaint — and the argument of E-Mapper
//! (Smejkal & Castrillon) and of Nejat et al.'s coordinated budget/
//! configuration tuning — is that these knobs were hand-picked, not
//! measured. [`tune_grid`] replaces folklore with measurement:
//!
//! 1. a **candidate list** per family is generated serially — the shipped
//!    default first, then a coarse grid, then a few random samples drawn
//!    from a seeded [`StdRng`] — so the list is a pure function of the
//!    seed;
//! 2. every candidate is **scored** on three seeded streams (steady
//!    Poisson, bursty on/off windows, diurnal modulation) under
//!    [`SearchBudget::online`]; policy candidates run under MMKP-MDF,
//!    META candidates run under per-request *and* adaptive batched
//!    admission. The score is mean acceptance, with mean energy per
//!    admitted job as the tiebreak — the two axes of the sweep curves;
//! 3. candidates fan out over OS threads via the shared
//!    [`for_each_cell`] work index. Scores are pure per-candidate
//!    functions and the winner reduction is serial, so the resulting
//!    [`TuneReport`] is **bit-identical across thread counts** (pinned by
//!    `tests/tune_determinism.rs`).
//!
//! The winners ship as constructors — [`AdaptiveBatch::fitted`],
//! [`SlackAware::fitted`], [`MetaConfig::fitted`] — and the
//! `repro tune [--quick] [--json]` subcommand emits the report artifact
//! with the fitted-vs-shipped diff.

use amrm_baselines::{ExMem, MetaConfig, MetaScheduler};
use amrm_core::fanout::for_each_cell;
use amrm_core::{
    AdaptiveBatch, AdmissionPolicy, Immediate, ReactivationPolicy, Scheduler, SearchBudget,
    SlackAware,
};
use amrm_metrics::journal::{EventKind, JournalConfig};
use amrm_metrics::{TextTable, TraceSink};
use amrm_model::AppRef;
use amrm_platform::Platform;
use amrm_sim::Simulation;
use amrm_workload::{bursty_window_stream, diurnal_stream, poisson_stream, StreamSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Acceptance differences below this are ties (energy breaks them).
const ACCEPTANCE_EPS: f64 = 1e-9;
/// Energy differences below this are ties (candidate order breaks them).
const ENERGY_EPS: f64 = 1e-9;

/// Options of one tuning run.
#[derive(Debug, Clone, Copy)]
pub struct TuneOptions {
    /// RNG seed: drives both the scored streams and the random samples.
    pub seed: u64,
    /// Quick mode: shorter streams (30 requests instead of 80).
    pub quick: bool,
    /// Worker threads for the candidate fan-out (must not change the
    /// report — see `tests/tune_determinism.rs`).
    pub threads: usize,
}

/// A candidate's fitness: the two axes of the sweep curves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuneScore {
    /// Mean acceptance rate over the scored cells (higher is better).
    pub acceptance: f64,
    /// Mean energy per admitted job over the scored cells, in joules
    /// (lower is better; the tiebreak).
    pub energy_per_job: f64,
}

impl TuneScore {
    /// Strict dominance in the tuning order: higher acceptance first,
    /// lower energy as the tiebreak. Ties in both leave the incumbent.
    pub fn beats(&self, other: &TuneScore) -> bool {
        if (self.acceptance - other.acceptance).abs() > ACCEPTANCE_EPS {
            return self.acceptance > other.acceptance;
        }
        other.energy_per_job - self.energy_per_job > ENERGY_EPS
    }
}

/// The tunable knobs of [`AdaptiveBatch`] (bounds stay at the shipped
/// `min_batch = 1`; everything else is searched).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveBatchParams {
    /// Upper bound for the AIMD batch size.
    pub max_batch: usize,
    /// Target gathering time in simulated seconds.
    pub gather_target: f64,
    /// Rolling acceptance below which the batch halves.
    pub low_acceptance: f64,
    /// Rolling acceptance at/above which the batch grows.
    pub high_acceptance: f64,
}

impl AdaptiveBatchParams {
    /// The shipped default, as searchable parameters.
    pub fn shipped() -> Self {
        AdaptiveBatchParams::of(&AdaptiveBatch::default())
    }

    fn of(p: &AdaptiveBatch) -> Self {
        AdaptiveBatchParams {
            max_batch: p.max_batch,
            gather_target: p.gather_target,
            low_acceptance: p.low_acceptance,
            high_acceptance: p.high_acceptance,
        }
    }

    /// Instantiates the policy these parameters describe.
    pub fn policy(&self) -> AdaptiveBatch {
        AdaptiveBatch::with_constants(
            self.max_batch,
            self.gather_target,
            self.low_acceptance,
            self.high_acceptance,
        )
    }
}

/// The tunable knobs of [`SlackAware`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlackAwareParams {
    /// Upper bound on the gathering window, simulated seconds.
    pub max_window: f64,
    /// Multiplier on the activation-latency EWMA.
    pub margin: f64,
}

impl SlackAwareParams {
    /// The shipped default, as searchable parameters.
    pub fn shipped() -> Self {
        let p = SlackAware::default();
        SlackAwareParams {
            max_window: p.max_window,
            margin: p.margin,
        }
    }

    /// Instantiates the policy these parameters describe.
    pub fn policy(&self) -> SlackAware {
        SlackAware {
            max_window: self.max_window,
            margin: self.margin,
        }
    }
}

/// The tunable META regime thresholds (the budget-regime knobs and the
/// exact-regime size limits keep their shipped values).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaParams {
    /// Heavy-regime enter threshold on the EWMA arrival rate.
    pub heavy_enter_rate: f64,
    /// Heavy-regime exit threshold on the arrival rate.
    pub heavy_exit_rate: f64,
    /// Heavy-regime enter threshold on the EWMA utilization.
    pub heavy_enter_util: f64,
    /// Heavy-regime exit threshold on the utilization.
    pub heavy_exit_util: f64,
    /// Minimum per-job slack for the exact regime, simulated seconds.
    pub exact_min_slack: f64,
}

impl MetaParams {
    /// The shipped default, as searchable parameters.
    pub fn shipped() -> Self {
        MetaParams::of(&MetaConfig::default())
    }

    fn of(c: &MetaConfig) -> Self {
        MetaParams {
            heavy_enter_rate: c.heavy_enter_rate,
            heavy_exit_rate: c.heavy_exit_rate,
            heavy_enter_util: c.heavy_enter_util,
            heavy_exit_util: c.heavy_exit_util,
            exact_min_slack: c.exact_min_slack,
        }
    }

    /// Instantiates the configuration these thresholds describe.
    pub fn config(&self) -> MetaConfig {
        MetaConfig {
            heavy_enter_rate: self.heavy_enter_rate,
            heavy_exit_rate: self.heavy_exit_rate,
            heavy_enter_util: self.heavy_enter_util,
            heavy_exit_util: self.heavy_exit_util,
            exact_min_slack: self.exact_min_slack,
            ..MetaConfig::default()
        }
    }
}

/// The tunable knobs of EX-MEM's capped exact path: how many ranked
/// first-segment candidates survive to full evaluation per node, and how
/// large the cross-activation memo may grow before bounded eviction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExMemParams {
    /// Online rank cap (first-segment candidates fully evaluated).
    pub rank_cap: usize,
    /// Memo entries beyond which bounded eviction runs.
    pub memo_cap: usize,
}

impl ExMemParams {
    /// The shipped defaults, as searchable parameters.
    pub fn shipped() -> Self {
        ExMemParams {
            rank_cap: SearchBudget::ONLINE_RANK_CAP,
            memo_cap: ExMem::DEFAULT_MEMO_CAP,
        }
    }

    /// Instantiates the scheduler these parameters describe. The rank
    /// cap travels in the instance's own [`SearchBudget`], composed
    /// min-wise with the context's online budget at every activation.
    pub fn scheduler(&self) -> ExMem {
        ExMem::new()
            .with_budget(SearchBudget::unbounded().with_rank_cap(self.rank_cap))
            .with_memo_cap(self.memo_cap)
    }
}

/// One scored [`AdaptiveBatch`] candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveBatchCandidate {
    /// The candidate's knobs.
    pub params: AdaptiveBatchParams,
    /// Its fitness on the tuning streams.
    pub score: TuneScore,
}

/// One scored [`SlackAware`] candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlackAwareCandidate {
    /// The candidate's knobs.
    pub params: SlackAwareParams,
    /// Its fitness on the tuning streams.
    pub score: TuneScore,
}

/// One scored META-threshold candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetaCandidate {
    /// The candidate's thresholds.
    pub params: MetaParams,
    /// Its fitness on the tuning streams.
    pub score: TuneScore,
}

/// One scored EX-MEM exact-path candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExMemCandidate {
    /// The candidate's knobs.
    pub params: ExMemParams,
    /// Its fitness on the tuning streams.
    pub score: TuneScore,
    /// Budget truncations across the tuning streams — the contract axis:
    /// a candidate may only win if it keeps at least the 2× truncation
    /// drop against the uncapped reference (see [`exmem_eligible`]).
    pub truncations: u64,
}

/// Search outcome of the [`AdaptiveBatch`] family: the shipped default,
/// the winner, and whether the winner strictly dominates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveBatchOutcome {
    /// Candidates evaluated (shipped default + grid + random samples).
    pub evaluated: usize,
    /// The shipped default and its score.
    pub shipped: AdaptiveBatchCandidate,
    /// The best-scoring candidate (the shipped default when nothing
    /// strictly beats it).
    pub winner: AdaptiveBatchCandidate,
    /// `true` when the winner strictly beats the shipped default — the
    /// signal for updating the shipped constants.
    pub winner_dominates: bool,
}

/// Search outcome of the [`SlackAware`] family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlackAwareOutcome {
    /// Candidates evaluated.
    pub evaluated: usize,
    /// The shipped default and its score.
    pub shipped: SlackAwareCandidate,
    /// The best-scoring candidate.
    pub winner: SlackAwareCandidate,
    /// `true` when the winner strictly beats the shipped default.
    pub winner_dominates: bool,
}

/// Search outcome of the META-threshold family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetaOutcome {
    /// Candidates evaluated.
    pub evaluated: usize,
    /// The shipped default and its score.
    pub shipped: MetaCandidate,
    /// The best-scoring candidate.
    pub winner: MetaCandidate,
    /// `true` when the winner strictly beats the shipped default.
    pub winner_dominates: bool,
}

/// Search outcome of the EX-MEM exact-path family. Unlike the policy
/// families, acceptance alone cannot pick this winner: a cap wide enough
/// stops pruning, the node budget truncates instead, truncated
/// activations memoize only `Anytime` results, and the warm-start proof
/// cache silently dies. So the search also pins the truncation count of
/// the *uncapped* reference, and only candidates that preserve the ≥2×
/// truncation drop of the capped path are eligible to win.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExMemOutcome {
    /// Candidates evaluated.
    pub evaluated: usize,
    /// Budget truncations of the uncapped reference over the same
    /// streams — the bar [`exmem_eligible`] holds candidates to.
    pub uncapped_truncations: u64,
    /// The shipped default and its score.
    pub shipped: ExMemCandidate,
    /// The best-scoring candidate.
    pub winner: ExMemCandidate,
    /// `true` when the winner strictly beats the shipped default.
    pub winner_dominates: bool,
}

/// The whole tuning run plus its provenance — the `repro tune --json`
/// artifact. Thread-count independent by construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuneReport {
    /// RNG seed of the streams and the random candidate samples.
    pub seed: u64,
    /// Whether the quick streams were used.
    pub quick: bool,
    /// Requests per tuning stream.
    pub requests_per_stream: usize,
    /// Labels of the scored streams, in evaluation order.
    pub streams: Vec<String>,
    /// The AIMD-constant search.
    pub adaptive_batch: AdaptiveBatchOutcome,
    /// The slack-margin search.
    pub slack_aware: SlackAwareOutcome,
    /// The META-threshold search.
    pub meta: MetaOutcome,
    /// The EX-MEM exact-path search (rank cap × memo cap).
    pub exmem: ExMemOutcome,
}

/// The three seeded streams every candidate is scored on: the steady and
/// bursty shapes of the admission grid plus a diurnal swing, so a winner
/// must hold up across load regimes instead of overfitting one.
pub fn tune_streams(
    library: &[AppRef],
    quick: bool,
    seed: u64,
) -> Vec<(&'static str, Vec<amrm_workload::ScenarioRequest>)> {
    let spec = StreamSpec {
        requests: if quick { 30 } else { 80 },
        slack_range: (1.5, 3.0),
    };
    vec![
        ("poisson", poisson_stream(library, 2.0, &spec, seed)),
        (
            "bursty",
            bursty_window_stream(library, 1.0, 8.0, 15.0, &spec, seed),
        ),
        (
            "diurnal",
            diurnal_stream(library, 2.0, 3.0, 60.0, &spec, seed),
        ),
    ]
}

/// The batched-admission policy META candidates are scored under
/// (besides [`Immediate`]). Pinned to literal constants — deliberately
/// *not* [`AdaptiveBatch::default`] — so META candidate scores are a
/// pure function of the tune seed and never shift when a future fitting
/// round moves the shipped AIMD defaults; that independence is what
/// makes the committed `TUNE_baseline.json` a stable fixed point. (The
/// pinned values equal the 2020-fitted constants at the time of
/// pinning.)
fn meta_reference_batch_policy() -> AdaptiveBatch {
    AdaptiveBatch::with_constants(
        17,
        2.4343004440087355,
        0.388003278411439,
        0.7996502860683732,
    )
}

/// Scores one run: acceptance and energy/job of a single simulation
/// under the given context [`SearchBudget`]. Policy and META candidates
/// run under [`SearchBudget::online`]; EX-MEM candidates run under the
/// bare online *node* budget — their rank cap travels in the scheduler
/// instance, and the context must not clamp it to the shipped value.
fn run_cell<S: Scheduler, A: AdmissionPolicy>(
    platform: &Platform,
    scheduler: S,
    policy: A,
    stream: &[amrm_workload::ScenarioRequest],
    budget: SearchBudget,
) -> (f64, f64) {
    let outcome = Simulation::new(
        platform.clone(),
        scheduler,
        ReactivationPolicy::OnArrival,
        policy,
        stream,
    )
    .with_search_budget(budget)
    .run();
    (outcome.acceptance_rate(), outcome.energy_per_job())
}

/// Scores one EX-MEM run — acceptance, energy/job and the budget
/// truncation count, the last via an observation-only journal (journals
/// cannot perturb the simulation, so scores stay bit-identical to
/// unjournaled runs). The context budget carries only the online node
/// limit; the candidate's rank cap rides in the scheduler instance.
fn run_exmem_cell(
    platform: &Platform,
    scheduler: ExMem,
    stream: &[amrm_workload::ScenarioRequest],
) -> (f64, f64, u64) {
    let config = JournalConfig::default();
    let mut sim = Simulation::new(
        platform.clone(),
        scheduler,
        ReactivationPolicy::OnArrival,
        Immediate,
        stream,
    )
    .with_search_budget(SearchBudget::nodes(SearchBudget::ONLINE_WORK_UNITS));
    sim.install_journal(TraceSink::enabled(config), config.sample);
    let outcome = sim.run();
    let truncations = outcome
        .journal
        .as_ref()
        .map(|j| j.count_of(EventKind::Truncation))
        .unwrap_or(0);
    (
        outcome.acceptance_rate(),
        outcome.energy_per_job(),
        truncations,
    )
}

/// The exact-path contract an EX-MEM candidate must honor to win: at
/// most half the uncapped reference's budget truncations over the tuning
/// streams. Truncated activations memoize only `Anytime` results — no
/// `Exact` proofs, nothing for the persistent cache to replay — so a cap
/// that stops cutting truncations has stopped doing its job no matter
/// how well it scores on acceptance.
fn exmem_eligible(truncations: u64, uncapped_truncations: u64) -> bool {
    truncations * 2 <= uncapped_truncations
}

/// Means over `(acceptance, energy)` cells into a [`TuneScore`].
fn mean_score(cells: &[(f64, f64)]) -> TuneScore {
    let n = cells.len() as f64;
    TuneScore {
        acceptance: cells.iter().map(|c| c.0).sum::<f64>() / n,
        energy_per_job: cells.iter().map(|c| c.1).sum::<f64>() / n,
    }
}

/// The deterministic candidate list of the [`AdaptiveBatch`] family:
/// shipped default, coarse grid, then `extra` seeded random samples.
fn adaptive_batch_candidates(rng: &mut StdRng, extra: usize) -> Vec<AdaptiveBatchParams> {
    let mut out = vec![AdaptiveBatchParams::shipped()];
    for &gather_target in &[2.0, 4.0, 6.0] {
        for &max_batch in &[8usize, 12, 16] {
            for &(low, high) in &[(0.4, 0.85), (0.5, 0.9), (0.6, 0.95)] {
                out.push(AdaptiveBatchParams {
                    max_batch,
                    gather_target,
                    low_acceptance: low,
                    high_acceptance: high,
                });
            }
        }
    }
    for _ in 0..extra {
        out.push(AdaptiveBatchParams {
            max_batch: rng.gen_range(4usize..=20),
            gather_target: rng.gen_range(1.0..8.0),
            low_acceptance: rng.gen_range(0.2..0.6),
            high_acceptance: rng.gen_range(0.7..1.0),
        });
    }
    out
}

/// The deterministic candidate list of the [`SlackAware`] family.
fn slack_aware_candidates(rng: &mut StdRng, extra: usize) -> Vec<SlackAwareParams> {
    let mut out = vec![SlackAwareParams::shipped()];
    for &max_window in &[1.0, 2.0, 4.0] {
        for &margin in &[0.5, 1.0, 2.0, 3.0] {
            out.push(SlackAwareParams { max_window, margin });
        }
    }
    for _ in 0..extra {
        out.push(SlackAwareParams {
            max_window: rng.gen_range(0.5..6.0),
            margin: rng.gen_range(0.0..4.0),
        });
    }
    out
}

/// The deterministic candidate list of the META-threshold family. Exit
/// thresholds scale with their enter thresholds so every grid point keeps
/// a hysteresis band and passes [`MetaConfig::validate`].
fn meta_candidates(rng: &mut StdRng, extra: usize) -> Vec<MetaParams> {
    let mut out = vec![MetaParams::shipped()];
    for &enter_rate in &[1.0, 1.5, 2.0] {
        for &enter_util in &[0.7, 0.85] {
            for &exact_min_slack in &[3.0, 4.0] {
                out.push(MetaParams {
                    heavy_enter_rate: enter_rate,
                    heavy_exit_rate: 0.6 * enter_rate,
                    heavy_enter_util: enter_util,
                    heavy_exit_util: 0.7 * enter_util,
                    exact_min_slack,
                });
            }
        }
    }
    for _ in 0..extra {
        let enter_rate = rng.gen_range(0.8..2.5);
        let enter_util = rng.gen_range(0.6..0.95);
        out.push(MetaParams {
            heavy_enter_rate: enter_rate,
            heavy_exit_rate: rng.gen_range(0.3..0.9) * enter_rate,
            heavy_enter_util: enter_util,
            heavy_exit_util: rng.gen_range(0.5..0.9) * enter_util,
            exact_min_slack: rng.gen_range(2.0..6.0),
        });
    }
    out
}

/// The deterministic candidate list of the EX-MEM exact-path family: the
/// shipped pair first, then a rank-cap × memo-cap grid around it, then
/// `extra` seeded random samples. Memo caps are powers of two — eviction
/// granularity, not a fine-grained knob.
fn exmem_candidates(rng: &mut StdRng, extra: usize) -> Vec<ExMemParams> {
    let mut out = vec![ExMemParams::shipped()];
    for &rank_cap in &[8usize, 12, 16, 32, 48, 64] {
        for &memo_cap in &[1usize << 16, 1 << 20] {
            out.push(ExMemParams { rank_cap, memo_cap });
        }
    }
    for _ in 0..extra {
        out.push(ExMemParams {
            rank_cap: rng.gen_range(4usize..=96),
            memo_cap: 1usize << rng.gen_range(14u32..22),
        });
    }
    out
}

/// Index of the best score; earlier candidates win ties, so the shipped
/// default (index 0) is only displaced by a strict improvement.
fn argbest(scores: &[TuneScore]) -> usize {
    let mut best = 0;
    for (i, score) in scores.iter().enumerate().skip(1) {
        if score.beats(&scores[best]) {
            best = i;
        }
    }
    best
}

/// Runs the whole three-family search and assembles the report.
///
/// Candidate lists are generated serially from the seed; scoring fans out
/// over `opts.threads` via [`for_each_cell`]; the winner reduction is
/// serial again — so the report is a pure function of `(library, opts
/// minus threads)` and bit-identical across thread counts.
///
/// # Panics
///
/// Panics if `opts.threads` is zero or `library` is empty.
pub fn tune_grid(platform: &Platform, library: &[AppRef], opts: &TuneOptions) -> TuneReport {
    assert!(!library.is_empty(), "application library must not be empty");
    let streams = tune_streams(library, opts.quick, opts.seed);
    let requests_per_stream = streams.first().map(|(_, s)| s.len()).unwrap_or(0);

    // Candidate generation is serial and seeded: the random tail of each
    // family draws from its own deterministic sub-seed.
    let extra = if opts.quick { 6 } else { 12 };
    let ab = adaptive_batch_candidates(&mut StdRng::seed_from_u64(opts.seed ^ 0xadba), extra);
    let sa = slack_aware_candidates(&mut StdRng::seed_from_u64(opts.seed ^ 0x51ac), extra / 2);
    let meta = meta_candidates(&mut StdRng::seed_from_u64(opts.seed ^ 0x3e7a), extra / 2);
    let ex = exmem_candidates(&mut StdRng::seed_from_u64(opts.seed ^ 0xe0e0), extra / 2);

    // The uncapped EX-MEM reference pins the truncation bar every capped
    // candidate must clear (see [`exmem_eligible`]). Three serial runs
    // before the fan-out: cheap, and trivially thread-independent.
    let uncapped_truncations: u64 = streams
        .iter()
        .map(|(_, stream)| {
            run_exmem_cell(
                platform,
                ExMem::new().with_budget(SearchBudget::unbounded()),
                stream,
            )
            .2
        })
        .sum();

    // One flat work index over all families, so slow META and EX-MEM
    // cells steal time from fast policy cells instead of serializing
    // their family. Policy-family cells (AdaptiveBatch, SlackAware)
    // share one scoring loop under MMKP-MDF; META and EX-MEM cells are
    // scored with their own schedulers below. Cells yield
    // `(score, truncations)`; the truncation axis is only meaningful —
    // and only nonzero — for EX-MEM cells.
    let total = ab.len() + sa.len() + meta.len() + ex.len();
    // lint:serial-merge — `truncations` below is a per-cell local,
    // returned with the cell and merged serially via `scores`.
    let scores = for_each_cell(total, opts.threads, |cell| {
        // A fresh policy instance per stream — the adaptive policies are
        // stateful, and state must not leak across scored streams.
        let policy_factory: Option<Box<dyn Fn() -> Box<dyn AdmissionPolicy>>> = if cell < ab.len() {
            let params = &ab[cell];
            Some(Box::new(move || Box::new(params.policy())))
        } else if cell < ab.len() + sa.len() {
            let params = &sa[cell - ab.len()];
            Some(Box::new(move || Box::new(params.policy())))
        } else {
            None
        };
        if let Some(factory) = policy_factory {
            let cells: Vec<(f64, f64)> = streams
                .iter()
                .map(|(_, stream)| {
                    run_cell(
                        platform,
                        amrm_core::MmkpMdf::new(),
                        factory(),
                        stream,
                        SearchBudget::online(),
                    )
                })
                .collect();
            return (mean_score(&cells), 0);
        }
        if cell < ab.len() + sa.len() + meta.len() {
            let params = &meta[cell - ab.len() - sa.len()];
            let mut cells = Vec::with_capacity(streams.len() * 2);
            for (_, stream) in &streams {
                cells.push(run_cell(
                    platform,
                    MetaScheduler::with_config(params.config()),
                    Immediate,
                    stream,
                    SearchBudget::online(),
                ));
                cells.push(run_cell(
                    platform,
                    MetaScheduler::with_config(params.config()),
                    meta_reference_batch_policy(),
                    stream,
                    SearchBudget::online(),
                ));
            }
            return (mean_score(&cells), 0);
        }
        // EX-MEM cells: the candidate's rank cap rides in the scheduler
        // instance, so the context budget carries only the online node
        // limit — `tightest()` must not clamp caps above the shipped
        // default.
        let params = &ex[cell - ab.len() - sa.len() - meta.len()];
        let mut cells = Vec::with_capacity(streams.len());
        let mut truncations = 0u64;
        for (_, stream) in &streams {
            let (acceptance, energy, trunc) = run_exmem_cell(platform, params.scheduler(), stream);
            cells.push((acceptance, energy));
            truncations += trunc;
        }
        (mean_score(&cells), truncations)
    });

    let (ab_cells, rest) = scores.split_at(ab.len());
    let (sa_cells, rest) = rest.split_at(sa.len());
    let (meta_cells, ex_cells) = rest.split_at(meta.len());
    let strip =
        |cells: &[(TuneScore, u64)]| -> Vec<TuneScore> { cells.iter().map(|c| c.0).collect() };
    let (ab_scores, sa_scores, meta_scores) = (strip(ab_cells), strip(sa_cells), strip(meta_cells));
    let ex_scores = strip(ex_cells);
    // Ineligible EX-MEM candidates (contract breakers) are ranked with a
    // sentinel score no real run can reach, so they can never displace
    // the shipped default; their *true* scores still go in the report.
    let ex_ranked: Vec<TuneScore> = ex_cells
        .iter()
        .map(|&(score, truncations)| {
            if exmem_eligible(truncations, uncapped_truncations) {
                score
            } else {
                TuneScore {
                    acceptance: -1.0,
                    energy_per_job: f64::MAX,
                }
            }
        })
        .collect();

    let ab_best = argbest(&ab_scores);
    let sa_best = argbest(&sa_scores);
    let meta_best = argbest(&meta_scores);
    let ex_best = argbest(&ex_ranked);

    TuneReport {
        seed: opts.seed,
        quick: opts.quick,
        requests_per_stream,
        streams: streams.iter().map(|(label, _)| label.to_string()).collect(),
        adaptive_batch: AdaptiveBatchOutcome {
            evaluated: ab.len(),
            shipped: AdaptiveBatchCandidate {
                params: ab[0].clone(),
                score: ab_scores[0],
            },
            winner: AdaptiveBatchCandidate {
                params: ab[ab_best].clone(),
                score: ab_scores[ab_best],
            },
            winner_dominates: ab_best != 0,
        },
        slack_aware: SlackAwareOutcome {
            evaluated: sa.len(),
            shipped: SlackAwareCandidate {
                params: sa[0].clone(),
                score: sa_scores[0],
            },
            winner: SlackAwareCandidate {
                params: sa[sa_best].clone(),
                score: sa_scores[sa_best],
            },
            winner_dominates: sa_best != 0,
        },
        meta: MetaOutcome {
            evaluated: meta.len(),
            shipped: MetaCandidate {
                params: meta[0].clone(),
                score: meta_scores[0],
            },
            winner: MetaCandidate {
                params: meta[meta_best].clone(),
                score: meta_scores[meta_best],
            },
            winner_dominates: meta_best != 0,
        },
        exmem: ExMemOutcome {
            evaluated: ex.len(),
            uncapped_truncations,
            shipped: ExMemCandidate {
                params: ex[0].clone(),
                score: ex_scores[0],
                truncations: ex_cells[0].1,
            },
            winner: ExMemCandidate {
                params: ex[ex_best].clone(),
                score: ex_scores[ex_best],
                truncations: ex_cells[ex_best].1,
            },
            winner_dominates: ex_best != 0,
        },
    }
}

/// Renders the tuning outcome: one shipped-vs-winner row pair per family,
/// with the knobs spelled out and the score axes side by side.
pub fn tune_report(report: &TuneReport) -> String {
    let mut out = format!(
        "Parameter fitting over {} streams ({} requests each, seed {}): \
         grid + seeded random search, scored by mean acceptance with \
         energy/job as the tiebreak\n\n",
        report.streams.join("/"),
        report.requests_per_stream,
        report.seed,
    );
    let mut t = TextTable::new(vec![
        "Family",
        "Row",
        "Parameters",
        "acceptance",
        "J/job",
        "dominates",
    ]);
    let score_cols = |s: &TuneScore| {
        (
            format!("{:.4}", s.acceptance),
            format!("{:.2}", s.energy_per_job),
        )
    };
    let ab_params = |p: &AdaptiveBatchParams| {
        format!(
            "max_batch={} gather={} low={} high={}",
            p.max_batch, p.gather_target, p.low_acceptance, p.high_acceptance
        )
    };
    let sa_params = |p: &SlackAwareParams| format!("window={} margin={}", p.max_window, p.margin);
    let ex_params = |p: &ExMemParams| format!("rank_cap={} memo_cap={}", p.rank_cap, p.memo_cap);
    let meta_params = |p: &MetaParams| {
        format!(
            "rate={}/{} util={}/{} slack={}",
            p.heavy_enter_rate,
            p.heavy_exit_rate,
            p.heavy_enter_util,
            p.heavy_exit_util,
            p.exact_min_slack
        )
    };
    let mut row = |family: &str, kind: &str, params: String, score: &TuneScore, dominates: &str| {
        let (acc, energy) = score_cols(score);
        t.add_row(vec![
            family.to_string(),
            kind.to_string(),
            params,
            acc,
            energy,
            dominates.to_string(),
        ]);
    };
    let flag = |d: bool| if d { "yes" } else { "no" };
    row(
        "AdaptiveBatch",
        "shipped",
        ab_params(&report.adaptive_batch.shipped.params),
        &report.adaptive_batch.shipped.score,
        "-",
    );
    row(
        "AdaptiveBatch",
        "winner",
        ab_params(&report.adaptive_batch.winner.params),
        &report.adaptive_batch.winner.score,
        flag(report.adaptive_batch.winner_dominates),
    );
    row(
        "SlackAware",
        "shipped",
        sa_params(&report.slack_aware.shipped.params),
        &report.slack_aware.shipped.score,
        "-",
    );
    row(
        "SlackAware",
        "winner",
        sa_params(&report.slack_aware.winner.params),
        &report.slack_aware.winner.score,
        flag(report.slack_aware.winner_dominates),
    );
    row(
        "META",
        "shipped",
        meta_params(&report.meta.shipped.params),
        &report.meta.shipped.score,
        "-",
    );
    row(
        "META",
        "winner",
        meta_params(&report.meta.winner.params),
        &report.meta.winner.score,
        flag(report.meta.winner_dominates),
    );
    row(
        "EX-MEM",
        "shipped",
        format!(
            "{} trunc={}",
            ex_params(&report.exmem.shipped.params),
            report.exmem.shipped.truncations
        ),
        &report.exmem.shipped.score,
        "-",
    );
    row(
        "EX-MEM",
        "winner",
        format!(
            "{} trunc={}",
            ex_params(&report.exmem.winner.params),
            report.exmem.winner.truncations
        ),
        &report.exmem.winner.score,
        flag(report.exmem.winner_dominates),
    );
    out.push_str(&t.to_string());
    out.push_str(&format!(
        "\nCandidates evaluated: {} AdaptiveBatch, {} SlackAware, {} META, \
         {} EX-MEM. A \"yes\" in `dominates` means the winner strictly \
         beats the shipped default on these streams — the fitted() \
         constructors and the shipped exact-path caps record such \
         winners. EX-MEM candidates must additionally keep a ≥2× drop in \
         budget truncations against the uncapped reference ({} over these \
         streams) — an over-wide cap stops producing Exact proofs and \
         starves the warm-start cache.\n",
        report.adaptive_batch.evaluated,
        report.slack_aware.evaluated,
        report.meta.evaluated,
        report.exmem.evaluated,
        report.exmem.uncapped_truncations,
    ));
    out
}

/// Writes a tune report as pretty-printed JSON.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_json(path: impl AsRef<std::path::Path>, report: &TuneReport) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), report)
        .map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_workload::scenarios;

    fn tiny_library() -> Vec<AppRef> {
        vec![scenarios::lambda1(), scenarios::lambda2()]
    }

    #[test]
    fn candidate_lists_start_with_the_shipped_defaults() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            adaptive_batch_candidates(&mut rng, 2)[0],
            AdaptiveBatchParams::shipped()
        );
        assert_eq!(
            slack_aware_candidates(&mut rng, 2)[0],
            SlackAwareParams::shipped()
        );
        assert_eq!(meta_candidates(&mut rng, 2)[0], MetaParams::shipped());
        assert_eq!(exmem_candidates(&mut rng, 2)[0], ExMemParams::shipped());
    }

    #[test]
    fn exmem_candidates_are_seed_deterministic_and_sane() {
        let a = exmem_candidates(&mut StdRng::seed_from_u64(9), 4);
        let b = exmem_candidates(&mut StdRng::seed_from_u64(9), 4);
        assert_eq!(a, b);
        let c = exmem_candidates(&mut StdRng::seed_from_u64(10), 4);
        assert_ne!(a, c, "different seeds must explore different samples");
        for params in &a {
            assert!(params.rank_cap >= 1, "a zero rank cap evaluates nothing");
            assert!(params.memo_cap.is_power_of_two());
        }
    }

    #[test]
    fn exmem_eligibility_is_the_two_x_truncation_contract() {
        // Calm streams (no uncapped truncations) demand a clean run.
        assert!(exmem_eligible(0, 0));
        assert!(!exmem_eligible(1, 0));
        // Busy streams demand at least a 2× drop.
        assert!(exmem_eligible(7, 15));
        assert!(!exmem_eligible(8, 15));
    }

    #[test]
    fn exmem_candidate_budget_survives_online_composition() {
        // The candidate's cap must govern when composed with the bare
        // online node budget the EX-MEM cells are scored under; the
        // shipped `online()` budget would clamp caps above 24.
        let candidate = ExMemParams {
            rank_cap: 64,
            memo_cap: 1 << 16,
        };
        let own = SearchBudget::unbounded().with_rank_cap(candidate.rank_cap);
        let context = SearchBudget::nodes(SearchBudget::ONLINE_WORK_UNITS);
        assert_eq!(own.tightest(context).rank_cap(), Some(64));
        assert_eq!(
            own.tightest(SearchBudget::online()).rank_cap(),
            Some(SearchBudget::ONLINE_RANK_CAP),
            "the shipped online budget clamps — the reason cells use nodes()"
        );
    }

    #[test]
    fn candidate_lists_are_seed_deterministic() {
        let a = meta_candidates(&mut StdRng::seed_from_u64(9), 4);
        let b = meta_candidates(&mut StdRng::seed_from_u64(9), 4);
        assert_eq!(a, b);
        let c = meta_candidates(&mut StdRng::seed_from_u64(10), 4);
        assert_ne!(a, c, "different seeds must explore different samples");
    }

    #[test]
    fn every_meta_candidate_validates() {
        let mut rng = StdRng::seed_from_u64(77);
        for params in meta_candidates(&mut rng, 16) {
            params
                .config()
                .validate()
                .unwrap_or_else(|e| panic!("candidate {params:?} invalid: {e}"));
        }
    }

    #[test]
    fn every_policy_candidate_validates() {
        let mut rng = StdRng::seed_from_u64(78);
        for params in adaptive_batch_candidates(&mut rng, 16) {
            params
                .policy()
                .validate()
                .unwrap_or_else(|e| panic!("candidate {params:?} invalid: {e}"));
        }
        for params in slack_aware_candidates(&mut rng, 16) {
            params
                .policy()
                .validate()
                .unwrap_or_else(|e| panic!("candidate {params:?} invalid: {e}"));
        }
    }

    #[test]
    fn score_order_prefers_acceptance_then_energy() {
        let better_acc = TuneScore {
            acceptance: 0.9,
            energy_per_job: 50.0,
        };
        let worse_acc = TuneScore {
            acceptance: 0.8,
            energy_per_job: 10.0,
        };
        assert!(better_acc.beats(&worse_acc));
        assert!(!worse_acc.beats(&better_acc));
        let cheaper = TuneScore {
            acceptance: 0.9,
            energy_per_job: 40.0,
        };
        assert!(cheaper.beats(&better_acc));
        assert!(!better_acc.beats(&better_acc), "a tie must not dominate");
        assert_eq!(argbest(&[worse_acc, better_acc, cheaper, cheaper]), 2);
    }

    #[test]
    fn tune_streams_cover_three_shapes() {
        let streams = tune_streams(&tiny_library(), true, 3);
        let labels: Vec<&str> = streams.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["poisson", "bursty", "diurnal"]);
        assert!(streams.iter().all(|(_, s)| s.len() == 30));
    }

    #[test]
    fn report_renders_all_families() {
        // A miniature end-to-end run on the cheap scenario library.
        let report = tune_grid(
            &scenarios::platform(),
            &tiny_library(),
            &TuneOptions {
                seed: 5,
                quick: true,
                threads: 2,
            },
        );
        assert_eq!(report.streams.len(), 3);
        assert!(report.adaptive_batch.evaluated > 27);
        assert!(report.slack_aware.evaluated > 12);
        assert!(report.meta.evaluated > 12);
        assert!(report.exmem.evaluated > 12);
        let text = tune_report(&report);
        assert!(text.contains("AdaptiveBatch"));
        assert!(text.contains("SlackAware"));
        assert!(text.contains("META"));
        assert!(text.contains("EX-MEM"));
        assert!(text.contains("rank_cap="));
        assert!(text.contains("shipped"));
        assert!(text.contains("winner"));
    }

    #[test]
    fn report_roundtrips_through_serde_json() {
        let report = tune_grid(
            &scenarios::platform(),
            &tiny_library(),
            &TuneOptions {
                seed: 2,
                quick: true,
                threads: 1,
            },
        );
        let text = serde_json::to_string(&report).unwrap();
        let back: TuneReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.seed, report.seed);
        assert_eq!(back.streams, report.streams);
        assert_eq!(
            back.adaptive_batch.winner.params,
            report.adaptive_batch.winner.params
        );
        assert_eq!(
            back.meta.winner.score.acceptance.to_bits(),
            report.meta.winner.score.acceptance.to_bits()
        );
        assert_eq!(back.exmem.winner.params, report.exmem.winner.params);
    }
}
