//! Machine-readable performance baselines.
//!
//! [`summarize`] condenses a [`SuiteEvaluation`] into per-scheduler
//! feasibility, energy and search-time aggregates; [`write_json`] persists
//! them (conventionally to `BENCH_baseline.json` in the repo root) so
//! later changes have a recorded trajectory to compare against.

use std::io::BufWriter;
use std::path::Path;

use amrm_baselines::EXMEM_NAME;
use amrm_metrics::{geometric_mean, mean};
use serde::{Deserialize, Serialize};

use crate::runner::SuiteEvaluation;

/// Aggregates for one scheduler over one suite run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedulerBaseline {
    /// Scheduler (registry) name.
    pub scheduler: String,
    /// Cases for which a feasible, validated schedule was found.
    pub scheduled: usize,
    /// Total cases evaluated.
    pub cases: usize,
    /// Geometric-mean energy relative to EX-MEM over co-scheduled cases;
    /// `None` when EX-MEM is absent or nothing was co-scheduled (written
    /// as `null`).
    pub geomean_energy_vs_exmem: Option<f64>,
    /// Mean wall-clock search time, in seconds.
    pub mean_search_seconds: f64,
    /// Worst-case wall-clock search time, in seconds.
    pub max_search_seconds: f64,
}

/// A whole suite run, ready to serialize as the repo's perf baseline.
///
/// `Deserialize` is hand-written (the vendored serde stub has no
/// `#[serde(default)]`): a baseline written before the admission grid
/// existed simply lacks the `admission` key and reads back as empty.
#[derive(Debug, Clone, Serialize)]
pub struct PerfBaseline {
    /// RNG seed the suite was generated with.
    pub seed: u64,
    /// Worker threads used for the evaluation.
    pub threads: usize,
    /// Whether the quick (divided-counts) suite was used.
    pub quick: bool,
    /// Number of test cases evaluated.
    pub cases: usize,
    /// Wall-clock seconds for the whole evaluation.
    pub evaluation_seconds: f64,
    /// Per-scheduler aggregates, in registry order.
    pub schedulers: Vec<SchedulerBaseline>,
    /// Admission-policy × scheduler grid on the seeded online stream
    /// (empty when the producing command skipped the online A/B, or the
    /// file predates the grid).
    pub admission: Vec<crate::admission::AdmissionCell>,
    /// Streaming-kernel throughput cells (`repro profile`; empty when the
    /// producing command skipped the profile, or the file predates it).
    pub profile: Vec<crate::profile::ProfileCell>,
    /// Sharded-federation cells (`repro shard`; empty when the producing
    /// command skipped the shard bench, or the file predates it).
    pub shard: Vec<crate::shard::ShardCell>,
    /// Event-journal counts of the traced federated run (`repro trace`;
    /// empty when the producing command skipped the trace, or the file
    /// predates it).
    pub trace: Vec<crate::trace::TraceCount>,
    /// EX-MEM exact-path cells: capped-vs-uncapped ranking and
    /// cold-vs-warm cache replay (`repro exact`; empty when the
    /// producing command skipped the exact bench, or the file predates
    /// it).
    pub exact: Vec<crate::exact::ExactCell>,
}

impl serde::Deserialize for PerfBaseline {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let Some(fields) = v.as_obj() else {
            return Err(serde::Error::new("expected PerfBaseline object"));
        };
        let field = |name: &str| serde::value::get_field(fields, name);
        Ok(PerfBaseline {
            seed: u64::from_value(field("seed")?)?,
            threads: usize::from_value(field("threads")?)?,
            quick: bool::from_value(field("quick")?)?,
            cases: usize::from_value(field("cases")?)?,
            evaluation_seconds: f64::from_value(field("evaluation_seconds")?)?,
            schedulers: Vec::from_value(field("schedulers")?)?,
            // Absent in baselines written before the grid existed.
            admission: match field("admission") {
                Ok(value) => Vec::from_value(value)?,
                Err(_) => Vec::new(),
            },
            // Absent in baselines written before `repro profile` existed.
            profile: match field("profile") {
                Ok(value) => Vec::from_value(value)?,
                Err(_) => Vec::new(),
            },
            // Absent in baselines written before `repro shard` existed.
            shard: match field("shard") {
                Ok(value) => Vec::from_value(value)?,
                Err(_) => Vec::new(),
            },
            // Absent in baselines written before `repro trace` existed.
            trace: match field("trace") {
                Ok(value) => Vec::from_value(value)?,
                Err(_) => Vec::new(),
            },
            // Absent in baselines written before `repro exact` existed.
            exact: match field("exact") {
                Ok(value) => Vec::from_value(value)?,
                Err(_) => Vec::new(),
            },
        })
    }
}

/// Condenses `eval` into a [`PerfBaseline`].
pub fn summarize(
    eval: &SuiteEvaluation,
    seed: u64,
    threads: usize,
    quick: bool,
    evaluation_seconds: f64,
) -> PerfBaseline {
    let cases = eval.results.len();
    let schedulers = eval
        .scheduler_names
        .iter()
        .enumerate()
        .map(|(idx, name)| {
            let times: Vec<f64> = eval
                .results
                .iter()
                .map(|r| r.schedulers[idx].seconds)
                .collect();
            SchedulerBaseline {
                scheduler: name.clone(),
                scheduled: eval
                    .results
                    .iter()
                    .filter(|r| r.schedulers[idx].feasible)
                    .count(),
                cases,
                geomean_energy_vs_exmem: geometric_mean(
                    &eval.relative_energies(name, EXMEM_NAME, None, None),
                ),
                mean_search_seconds: mean(&times).unwrap_or(0.0),
                max_search_seconds: times.iter().copied().fold(0.0, f64::max),
            }
        })
        .collect();
    PerfBaseline {
        seed,
        threads,
        quick,
        cases,
        evaluation_seconds,
        schedulers,
        admission: Vec::new(),
        profile: Vec::new(),
        shard: Vec::new(),
        trace: Vec::new(),
        exact: Vec::new(),
    }
}

/// Writes a baseline as pretty-printed JSON.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_json(path: impl AsRef<Path>, baseline: &PerfBaseline) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(BufWriter::new(file), baseline).map_err(std::io::Error::other)
}

/// Reads a baseline back from JSON.
///
/// # Errors
///
/// Returns any I/O or deserialization error.
pub fn read_json(path: impl AsRef<Path>) -> std::io::Result<PerfBaseline> {
    let file = std::fs::File::open(path)?;
    serde_json::from_reader::<_, PerfBaseline>(std::io::BufReader::new(file))
        .map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::evaluate_suite;
    use amrm_baselines::standard_registry;
    use amrm_workload::{generate_suite, scenarios, SuiteSpec};

    fn tiny_eval() -> SuiteEvaluation {
        let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
        let spec = SuiteSpec {
            weak_counts: [2, 2, 0, 0],
            tight_counts: [1, 1, 0, 0],
            ..SuiteSpec::default()
        };
        let cases = generate_suite(&lib, &spec, 13);
        evaluate_suite(&cases, &scenarios::platform(), 1, &standard_registry())
    }

    #[test]
    fn summary_covers_every_scheduler() {
        let eval = tiny_eval();
        let baseline = summarize(&eval, 13, 1, true, 0.5);
        assert_eq!(baseline.schedulers.len(), eval.scheduler_names.len());
        assert_eq!(baseline.cases, eval.results.len());
        for s in &baseline.schedulers {
            assert!(s.scheduled <= s.cases);
            assert!(s.mean_search_seconds >= 0.0);
            assert!(s.max_search_seconds >= s.mean_search_seconds);
        }
        // EX-MEM relative to itself is exactly 1.
        let exmem = &baseline.schedulers[0];
        assert_eq!(exmem.scheduler, EXMEM_NAME);
        if let Some(g) = exmem.geomean_energy_vs_exmem {
            assert!((g - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn legacy_baseline_without_admission_field_still_parses() {
        // The exact shape `repro --json` wrote before the admission grid
        // existed — it must read back with an empty grid, not error.
        let legacy = r#"{
            "seed": 2020, "threads": 1, "quick": true, "cases": 2,
            "evaluation_seconds": 0.5,
            "schedulers": [{
                "scheduler": "MMKP-MDF", "scheduled": 2, "cases": 2,
                "geomean_energy_vs_exmem": null,
                "mean_search_seconds": 0.001, "max_search_seconds": 0.002
            }]
        }"#;
        let back: PerfBaseline = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.seed, 2020);
        assert_eq!(back.schedulers.len(), 1);
        assert!(back.admission.is_empty());
        assert!(back.profile.is_empty());
        assert!(back.shard.is_empty());
        assert!(back.trace.is_empty());
        assert!(back.exact.is_empty());
    }

    #[test]
    fn pre_shard_baseline_with_profile_cells_still_parses() {
        // The shape written between `repro profile` and `repro shard`:
        // profile cells present, no `shard` key — reads back with an
        // empty shard section, not an error.
        let pre_shard = r#"{
            "seed": 2020, "threads": 1, "quick": true, "cases": 1,
            "evaluation_seconds": 0.1,
            "schedulers": [{
                "scheduler": "MMKP-MDF", "scheduled": 1, "cases": 1,
                "geomean_energy_vs_exmem": null,
                "mean_search_seconds": 0.001, "max_search_seconds": 0.002
            }],
            "admission": [],
            "profile": [{
                "scheduler": "MMKP-MDF", "requests": 10, "accepted": 9,
                "wall_seconds": 0.01, "requests_per_second": 1000.0,
                "events_per_second": 2000.0,
                "counters": {
                    "events": 20, "heap_pushes": 20, "flushes": 10,
                    "schedule_calls": 10, "memo_hits": 0,
                    "peak_queue_depth": 1
                },
                "allocated_bytes": 0, "allocation_calls": 0
            }]
        }"#;
        let back: PerfBaseline = serde_json::from_str(pre_shard).unwrap();
        assert_eq!(back.profile.len(), 1);
        assert!(back.shard.is_empty());
        // A pre-trace baseline reads back with empty newer sections.
        assert!(back.trace.is_empty());
        assert!(back.exact.is_empty());
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let mut baseline = summarize(&tiny_eval(), 13, 2, false, 1.25);
        // Attach a small policy grid, as `repro --json` does.
        let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
        let spec = amrm_workload::StreamSpec {
            requests: 6,
            slack_range: (1.3, 2.5),
        };
        let stream = amrm_workload::poisson_stream(&lib, 5.0, &spec, 13);
        baseline.admission = crate::admission::admission_grid(
            &scenarios::platform(),
            &standard_registry().subset(&[amrm_baselines::MDF_NAME]),
            &crate::admission::standard_policies(),
            &[("poisson", &stream)],
            1,
            amrm_core::SearchBudget::unbounded(),
        );
        let path = std::env::temp_dir().join("amrm_baseline_roundtrip.json");
        write_json(&path, &baseline).unwrap();
        let back = read_json(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back.seed, 13);
        assert_eq!(back.threads, 2);
        assert!(!back.quick);
        assert_eq!(back.schedulers.len(), baseline.schedulers.len());
        for (a, b) in baseline.schedulers.iter().zip(&back.schedulers) {
            assert_eq!(a.scheduler, b.scheduler);
            assert_eq!(a.scheduled, b.scheduled);
        }
        assert_eq!(
            back.admission.len(),
            crate::admission::standard_policies().len()
        );
        for (a, b) in baseline.admission.iter().zip(&back.admission) {
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.accepted, b.accepted);
            assert_eq!(a.activations, b.activations);
        }
    }
}
