//! EX-MEM exact-path benchmark: capped candidate ranking and persistent
//! warm-start mapping cache (`repro exact`).
//!
//! Two A/B pairs, one report:
//!
//! 1. **Ranking** — the bursty admission-grid stream runs through EX-MEM
//!    twice at the *same* node budget: once uncapped (the pre-cap
//!    `online()` shape) and once under the shipped rank cap. The capped
//!    run spends its nodes on the cheapest-bound candidates instead of
//!    exhausting them on wide first segments, so its budget-truncation
//!    count (MDF fallbacks) must drop — the quick `--seed 2020`
//!    configuration is pinned by `capped_ranking_halves_truncations` to
//!    drop ≥ 2× without losing a single admission.
//! 2. **Warm start** — a calm Poisson stream is solved cold (every
//!    activation exactly, nothing truncated), the mapping cache is saved
//!    to disk, reloaded, and the same stream replays warm. The warm run
//!    must be bit-identical to the cold one (admissions, energy bits,
//!    executed trace) while serving its roots from disk-loaded proofs —
//!    and, with search skipped, finish faster (the ≥ 1.5× wall-clock
//!    gate is a release-mode `#[ignore]` test, like the profile floor).
//!
//! `repro exact --cache-out F` persists the cold cache for later
//! `--warm-cache F` runs, which is how a recorded workload's proofs are
//! reused across processes; the cells embed into the perf baseline
//! (`BENCH_baseline.json`) as its `exact` section.

use std::path::Path;
use std::time::Instant;

use amrm_baselines::{ExMem, MappingCache};
use amrm_core::{Immediate, ReactivationPolicy, SearchBudget};
use amrm_metrics::journal::{EventKind, JournalConfig};
use amrm_metrics::{TextTable, TraceSink};
use amrm_model::AppRef;
use amrm_platform::Platform;
use amrm_sim::{SimOutcome, Simulation};
use amrm_workload::{poisson_stream, ScenarioRequest, StreamSpec};
use serde::{Deserialize, Serialize};

use crate::admission;

/// The calm replay stream: sparse enough that the uncapped online node
/// budget solves every activation exactly (no truncation, no pruning),
/// which is the precondition making warm-vs-cold bit-identity a theorem
/// — every persisted entry is a proof, and replaying proofs cannot
/// diverge.
const REPLAY_INTERARRIVAL: f64 = 10.0;
const REPLAY_SLACK: (f64, f64) = (1.4, 2.8);
/// The replay pair's node budget: 8× the online work units, deep enough
/// that the calm stream's occasional overlap stacks still solve to
/// proofs instead of truncating (truncated roots memoize `Anytime` and
/// would not persist).
const REPLAY_NODE_BUDGET: u64 = SearchBudget::ONLINE_WORK_UNITS * 8;

/// One measured EX-MEM run of the exact-path A/B pairs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExactCell {
    /// `"uncapped"` / `"capped"` (ranking pair on the bursty stream) or
    /// `"cold"` / `"warm"` (replay pair on the calm stream).
    pub phase: String,
    /// Requests offered.
    pub requests: usize,
    /// Requests admitted.
    pub accepted: usize,
    /// Activations that exhausted the node budget (MDF fallbacks).
    pub truncations: u64,
    /// Activations where the rank cap pruned first-segment candidates.
    pub rank_pruned: u64,
    /// Activations that served at least one disk-loaded proof.
    pub cache_warm_hits: u64,
    /// Wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// Energy per admitted job, in joules.
    pub energy_per_job: f64,
}

/// The whole exact-path benchmark — the `repro exact --json` artifact
/// and the `exact` section of the perf baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExactReport {
    /// RNG seed of both streams.
    pub seed: u64,
    /// Whether the quick request counts were used.
    pub quick: bool,
    /// Cells in pair order: uncapped, capped, cold, warm.
    pub cells: Vec<ExactCell>,
    /// Whether the warm replay reproduced the cold run bit for bit
    /// (admissions, energy bits, end time, counters, executed trace).
    pub bit_identical: bool,
    /// Cold wall-clock over warm wall-clock (> 1 means warm is faster).
    pub warm_speedup: f64,
    /// Proof entries the cold run persisted to disk.
    pub cache_proofs: usize,
}

impl ExactReport {
    /// Factor by which the rank cap reduced budget truncations on the
    /// bursty stream; `None` when the capped run never truncated (an
    /// infinite improvement) or the pair is missing.
    pub fn truncation_drop(&self) -> Option<f64> {
        let t = |phase: &str| {
            self.cells
                .iter()
                .find(|c| c.phase == phase)
                .map(|c| c.truncations)
        };
        match (t("uncapped")?, t("capped")?) {
            (_, 0) => None,
            (uncapped, capped) => Some(uncapped as f64 / capped as f64),
        }
    }
}

/// One journaled EX-MEM run under `Immediate` admission, warm-started
/// from `cache` when given. Returns the outcome, the scheduler (for its
/// mapping cache) and the wall-clock seconds.
fn run_exmem(
    platform: &Platform,
    stream: &[ScenarioRequest],
    budget: SearchBudget,
    cache: Option<MappingCache>,
) -> (SimOutcome, ExMem, f64) {
    let scheduler = match cache {
        Some(cache) => ExMem::new().with_cache(cache),
        None => ExMem::new(),
    };
    let config = JournalConfig::default();
    let mut sim = Simulation::new(
        platform.clone(),
        scheduler,
        ReactivationPolicy::OnArrival,
        Immediate,
        stream,
    )
    .with_search_budget(budget);
    sim.install_journal(TraceSink::enabled(config), config.sample);
    let t0 = Instant::now();
    let (outcome, scheduler) = sim.run_with_scheduler();
    let wall = t0.elapsed().as_secs_f64().max(f64::EPSILON);
    (outcome, scheduler, wall)
}

fn cell_of(phase: &str, stream_len: usize, outcome: &SimOutcome, wall: f64) -> ExactCell {
    let journal = outcome.journal.as_ref().expect("journal installed");
    ExactCell {
        phase: phase.to_string(),
        requests: stream_len,
        accepted: outcome.accepted(),
        truncations: journal.count_of(EventKind::Truncation),
        rank_pruned: journal.count_of(EventKind::RankPrune),
        cache_warm_hits: journal.count_of(EventKind::CacheWarmHit),
        wall_seconds: wall,
        energy_per_job: outcome.energy_per_job(),
    }
}

fn bit_identical(a: &SimOutcome, b: &SimOutcome) -> bool {
    a.admissions == b.admissions
        && a.total_energy.to_bits() == b.total_energy.to_bits()
        && a.end_time.to_bits() == b.end_time.to_bits()
        && a.stats == b.stats
        && a.trace == b.trace
}

/// Runs the exact-path benchmark at the standard request counts (the
/// admission grid's EX-MEM-bounded stream lengths).
///
/// `warm_cache` replays from a previously saved cache file instead of
/// the cold run's own; `cache_out` persists the cold cache there (a
/// deterministic temp file otherwise, so the warm run always exercises
/// the real disk roundtrip).
///
/// # Errors
///
/// Returns any I/O or serialization error from the cache roundtrip.
pub fn run_exact(
    quick: bool,
    seed: u64,
    warm_cache: Option<&Path>,
    cache_out: Option<&Path>,
) -> std::io::Result<ExactReport> {
    let replay_requests = if quick { 30 } else { 90 };
    run_exact_with(quick, seed, replay_requests, warm_cache, cache_out)
}

/// [`run_exact`] over an explicit replay-stream length (tests use tiny
/// runs).
///
/// # Errors
///
/// Returns any I/O or serialization error from the cache roundtrip.
///
/// # Panics
///
/// Panics if `replay_requests` is zero.
pub fn run_exact_with(
    quick: bool,
    seed: u64,
    replay_requests: usize,
    warm_cache: Option<&Path>,
    cache_out: Option<&Path>,
) -> std::io::Result<ExactReport> {
    assert!(replay_requests > 0, "replay needs at least one request");
    let platform = Platform::odroid_xu4();
    let library = amrm_dataflow::apps::benchmark_suite(&platform);

    // Ranking pair: the bursty grid stream at one node budget, fan-out
    // uncapped vs capped at the shipped online rank cap.
    let streams = admission::standard_streams(&library, quick, seed, true);
    let (_, bursty) = streams
        .into_iter()
        .find(|(label, _)| *label == "bursty")
        .expect("standard streams include a bursty shape");
    let node_budget = SearchBudget::nodes(SearchBudget::ONLINE_WORK_UNITS);
    let (uncapped, _, uncapped_wall) = run_exmem(&platform, &bursty, node_budget, None);
    let (capped, _, capped_wall) = run_exmem(&platform, &bursty, SearchBudget::online(), None);

    // Replay pair: solve the calm stream cold, persist the proofs,
    // reload and replay warm.
    let calm = replay_stream(&library, replay_requests, seed);
    let replay_budget = SearchBudget::nodes(REPLAY_NODE_BUDGET);
    let (cold, cold_ex, cold_wall) = run_exmem(&platform, &calm, replay_budget, None);
    let default_path =
        std::env::temp_dir().join(format!("amrm_exact_cache_{seed}_{replay_requests}.json"));
    let cache_path = cache_out.unwrap_or(&default_path);
    cold_ex.cache().save(cache_path)?;
    let loaded = MappingCache::load(warm_cache.unwrap_or(cache_path))?;
    let (warm, _, warm_wall) = run_exmem(&platform, &calm, replay_budget, Some(loaded));

    Ok(ExactReport {
        seed,
        quick,
        cells: vec![
            cell_of("uncapped", bursty.len(), &uncapped, uncapped_wall),
            cell_of("capped", bursty.len(), &capped, capped_wall),
            cell_of("cold", calm.len(), &cold, cold_wall),
            cell_of("warm", calm.len(), &warm, warm_wall),
        ],
        bit_identical: bit_identical(&cold, &warm),
        warm_speedup: cold_wall / warm_wall,
        cache_proofs: cold_ex.cache().proof_count(),
    })
}

/// The calm Poisson stream of the replay pair.
pub fn replay_stream(library: &[AppRef], requests: usize, seed: u64) -> Vec<ScenarioRequest> {
    let spec = StreamSpec {
        requests,
        slack_range: REPLAY_SLACK,
    };
    poisson_stream(library, REPLAY_INTERARRIVAL, &spec, seed)
}

/// Renders an exact-path report: one row per cell plus the two verdicts.
pub fn exact_report(report: &ExactReport) -> String {
    let mut out = format!(
        "EX-MEM exact path at scale: capped ranking and warm-start cache (seed {})\n\n",
        report.seed
    );
    let mut t = TextTable::new(vec![
        "Phase",
        "accepted",
        "trunc",
        "pruned",
        "warm hits",
        "wall s",
        "J/job",
    ]);
    for c in &report.cells {
        t.add_row(vec![
            c.phase.clone(),
            format!("{}/{}", c.accepted, c.requests),
            c.truncations.to_string(),
            c.rank_pruned.to_string(),
            c.cache_warm_hits.to_string(),
            format!("{:.3}", c.wall_seconds),
            format!("{:.2}", c.energy_per_job),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str(&format!(
        "\nranking: budget truncations {} on the bursty stream; \
         replay: {} proofs persisted, warm run {} and {:.2}x the cold \
         wall-clock\n",
        match report.truncation_drop() {
            Some(drop) => format!("dropped {drop:.1}x"),
            None => "eliminated".to_string(),
        },
        report.cache_proofs,
        if report.bit_identical {
            "bit-identical"
        } else {
            "DIVERGED"
        },
        report.warm_speedup,
    ));
    out
}

/// Writes an exact-path report as pretty-printed JSON.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_json(path: impl AsRef<Path>, report: &ExactReport) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(std::io::BufWriter::new(file), report)
        .map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_ranking_halves_truncations_without_losing_admissions() {
        // The PR's ranking acceptance gate, pinned at the committed
        // baseline's `--quick --seed 2020` configuration: at the same
        // node budget, the shipped rank cap must cut the bursty stream's
        // budget truncations (MDF fallbacks) at least in half while
        // admitting no fewer requests.
        let report = run_exact_with(true, 2020, 10, None, None).unwrap();
        let cell = |phase: &str| {
            report
                .cells
                .iter()
                .find(|c| c.phase == phase)
                .unwrap_or_else(|| panic!("missing {phase} cell"))
        };
        let (uncapped, capped) = (cell("uncapped"), cell("capped"));
        assert!(
            capped.truncations * 2 <= uncapped.truncations,
            "rank cap only cut truncations {} -> {}",
            uncapped.truncations,
            capped.truncations
        );
        assert!(uncapped.truncations > 0, "the uncapped run never truncated");
        assert!(
            capped.accepted >= uncapped.accepted,
            "rank cap lost admissions: {} -> {}",
            uncapped.accepted,
            capped.accepted
        );
        assert!(capped.rank_pruned > 0, "the cap never pruned");
    }

    #[test]
    fn warm_replay_is_bit_identical_and_serves_disk_proofs() {
        let report = run_exact_with(true, 2020, 12, None, None).unwrap();
        assert!(report.bit_identical, "warm replay diverged from cold");
        assert!(report.cache_proofs > 0);
        let warm = report.cells.iter().find(|c| c.phase == "warm").unwrap();
        assert!(warm.cache_warm_hits > 0, "warm run served no disk proofs");
        let cold = report.cells.iter().find(|c| c.phase == "cold").unwrap();
        assert_eq!(cold.cache_warm_hits, 0);
        assert_eq!(cold.truncations, 0, "replay stream must stay exact");
    }

    #[test]
    fn cache_out_and_warm_cache_roundtrip_through_explicit_paths() {
        let dir = std::env::temp_dir().join("amrm_exact_bench");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("explicit.cache.json");
        let saved = run_exact_with(true, 7, 8, None, Some(&path)).unwrap();
        assert!(path.exists(), "--cache-out file missing");
        let replayed = run_exact_with(true, 7, 8, Some(&path), None).unwrap();
        assert!(replayed.bit_identical);
        assert_eq!(saved.cache_proofs, replayed.cache_proofs);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = run_exact_with(true, 3, 6, None, None).unwrap();
        let path = std::env::temp_dir().join("amrm_exact_roundtrip.json");
        write_json(&path, &report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let back: ExactReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.seed, 3);
        assert_eq!(back.cells.len(), 4);
        assert_eq!(back.bit_identical, report.bit_identical);
        let rendered = exact_report(&back);
        assert!(rendered.contains("uncapped"));
        assert!(rendered.contains("warm"));
        assert!(rendered.contains("proofs persisted"));
    }

    #[test]
    #[ignore = "wall-clock speedup gate; run with --release -- --ignored"]
    fn warm_replay_is_at_least_1_5x_faster_than_cold() {
        // The PR's replay acceptance gate: with every root served from a
        // disk-loaded proof, the warm run skips the search entirely and
        // must finish at least 1.5x faster than the cold run. Warmed up
        // once to keep allocator and page-cache noise out.
        let _ = run_exact(true, 2020, None, None).unwrap();
        let report = run_exact(false, 2020, None, None).unwrap();
        assert!(report.bit_identical);
        assert!(
            report.warm_speedup >= 1.5,
            "warm replay only {:.2}x faster than cold",
            report.warm_speedup
        );
    }
}
