//! Ablation studies for the design choices called out in DESIGN.md:
//! the MDF job-order policy, the value of adaptivity at admission time
//! (incremental/fixed/LR/MDF under load), and DVFS-aware characterization.

use amrm_baselines::{standard_registry, EXMEM_NAME, FIXED_NAME};
use amrm_core::{JobOrderPolicy, MmkpVariant, ReactivationPolicy, Scheduler, SchedulerRegistry};
use amrm_dataflow::{apps, characterize, characterize_dvfs, odroid_xu4_dvfs, CharacterizeConfig};
use amrm_metrics::{geometric_mean, TextTable};
use amrm_platform::Platform;
use amrm_sim::run_scenario;
use amrm_workload::{generate_suite, poisson_stream, scenarios, StreamSpec, SuiteSpec, TestCase};

/// Compares job-order policies (the "MDF" in MMKP-MDF) on a generated
/// suite: geometric-mean energy relative to the MDF policy over cases all
/// policies schedule.
pub fn job_order_report(cases: &[TestCase], platform: &Platform) -> String {
    let policies = [
        JobOrderPolicy::MaxDifference,
        JobOrderPolicy::EarliestDeadline,
        JobOrderPolicy::CheapestFirst,
        JobOrderPolicy::InsertionOrder,
    ];
    let mut per_policy_energy: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    let mut scheduled = vec![0usize; policies.len()];
    for case in cases {
        let jobs = case.to_job_set();
        let schedules: Vec<Option<f64>> = policies
            .iter()
            .map(|&p| {
                MmkpVariant::new(p)
                    .schedule_at(&jobs, platform, 0.0)
                    .map(|s| s.energy(&jobs))
            })
            .collect();
        for (i, s) in schedules.iter().enumerate() {
            if s.is_some() {
                scheduled[i] += 1;
            }
        }
        if let Some(base) = schedules[0] {
            for (i, s) in schedules.iter().enumerate() {
                if let Some(e) = s {
                    per_policy_energy[i].push((e / base).max(1e-12));
                }
            }
        }
    }

    let mut out = String::from("Ablation: job-order policy inside Algorithm 1\n\n");
    let mut t = TextTable::new(vec!["Policy", "scheduled", "geomean energy vs MDF"]);
    for (i, p) in policies.iter().enumerate() {
        t.add_row(vec![
            p.name().to_string(),
            scheduled[i].to_string(),
            geometric_mean(&per_policy_energy[i])
                .map(|g| format!("{g:.4}"))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str("\nMDF ≤ 1.0 rows mean the alternative ordering wastes energy.\n");
    out
}

/// The registry for online-load ablations: every standard scheduler except
/// EX-MEM, whose exponential search is not an online candidate once more
/// than a handful of jobs overlap.
pub fn online_registry() -> SchedulerRegistry {
    let standard = standard_registry();
    let names: Vec<&str> = standard
        .names()
        .into_iter()
        .filter(|n| *n != EXMEM_NAME)
        .collect();
    standard.subset(&names)
}

/// Compares admission quality of the registered RM classes under an online
/// Poisson load (extension: the paper evaluates static snapshots).
///
/// The fixed mapper re-activates at completions as well (its Fig. 1(b)
/// best case); every other scheduler re-activates on arrivals only.
pub fn online_admission_report(
    platform: &Platform,
    seed: u64,
    registry: &SchedulerRegistry,
) -> String {
    let library = apps::benchmark_suite(platform);
    let spec = StreamSpec {
        requests: 40,
        slack_range: (1.2, 3.0),
    };
    let stream = poisson_stream(&library, 5.0, &spec, seed);

    let mut out = String::from("Ablation: online admission under Poisson load (mean 5 s)\n\n");
    let mut t = TextTable::new(vec!["RM class", "accepted", "energy/job [J]", "misses"]);
    for (name, scheduler) in registry.instantiate_all() {
        let policy = if name == FIXED_NAME {
            ReactivationPolicy::OnArrivalAndCompletion
        } else {
            ReactivationPolicy::OnArrival
        };
        let outcome = run_scenario(platform.clone(), scheduler, policy, &stream);
        t.add_row(vec![
            name.to_string(),
            format!("{}/{}", outcome.accepted(), stream.len()),
            format!("{:.2}", outcome.energy_per_job()),
            outcome.stats.deadline_misses.to_string(),
        ]);
    }
    out.push_str(&t.to_string());
    out
}

/// Compares fixed-frequency vs DVFS-swept characterization.
pub fn dvfs_report() -> String {
    let platform = odroid_xu4_dvfs();
    let cfg = CharacterizeConfig::default();
    let mut out = String::from("Ablation: DVFS-aware characterization (extension)\n\n");
    let mut t = TextTable::new(vec![
        "Application",
        "fixed-freq points",
        "DVFS points",
        "min ξ fixed [J]",
        "min ξ DVFS [J]",
    ]);
    for graph in apps::all_graphs() {
        let fixed = characterize(&graph, &platform, &cfg);
        let dvfs = characterize_dvfs(&graph, &platform, &cfg);
        let min_e = |a: &amrm_model::Application| {
            a.points()
                .iter()
                .map(|p| p.energy())
                .fold(f64::INFINITY, f64::min)
        };
        t.add_row(vec![
            graph.name().to_string(),
            fixed.num_points().to_string(),
            dvfs.num_points().to_string(),
            format!("{:.2}", min_e(&fixed)),
            format!("{:.2}", min_e(&dvfs)),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str("\nDown-clocked clusters add strictly more frugal Pareto points.\n");
    out
}

/// Generates a small Table-II-based suite for the job-order ablation.
pub fn ablation_suite(seed: u64) -> Vec<TestCase> {
    let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
    let spec = SuiteSpec {
        weak_counts: [5, 40, 40, 25],
        tight_counts: [5, 40, 40, 25],
        ..SuiteSpec::default()
    };
    generate_suite(&lib, &spec, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_order_report_runs_and_mdf_is_reference() {
        let cases = ablation_suite(1)[..40].to_vec();
        let report = job_order_report(&cases, &scenarios::platform());
        assert!(report.contains("MDF"));
        assert!(report.contains("cheapest-first"));
    }

    #[test]
    fn online_registry_runs_everything_but_exmem() {
        let registry = online_registry();
        assert!(!registry.names().contains(&EXMEM_NAME));
        assert_eq!(registry.len(), standard_registry().len() - 1);
        let report =
            online_admission_report(&scenarios::platform(), 7, &registry.subset(&[FIXED_NAME]));
        assert!(report.contains("FIXED"));
    }

    #[test]
    fn dvfs_report_lists_all_apps() {
        let report = dvfs_report();
        assert!(report.contains("speaker_recognition"));
        assert!(report.contains("audio_filter"));
        assert!(report.contains("pedestrian_recognition"));
    }
}
