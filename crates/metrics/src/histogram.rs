//! Log-bucketed streaming histograms: O(1)-memory distribution sketches
//! for per-request latencies.
//!
//! A [`LogHistogram`] spreads the positive reals over [`BUCKETS`] = 64
//! power-of-two buckets: bucket 0 collects zero, negative and
//! below-range values, bucket `i` (1..=63) covers
//! `[2^(i-33), 2^(i-32))` seconds — from ~2.3e-10 s up to 2^31 s, far
//! beyond any sim horizon — and the top bucket absorbs everything
//! larger. Bucket selection reads the IEEE-754 exponent field directly
//! (`floor(log2 v)` exactly, no libm call), so two runs that record the
//! same bit-identical values always produce the same bit-identical
//! histogram regardless of platform math libraries.
//!
//! Unlike the bounded sample rings behind
//! [`Telemetry`](crate::Telemetry)'s interpolated percentiles, a
//! histogram sees *every* sample of a stream at constant memory, which
//! is what bench reporting wants for multi-million-request aggregated
//! runs. Quantiles are bucket-resolved (returned as the containing
//! bucket's upper edge, clamped to the observed min/max), trading ≤ 2×
//! value resolution for the flat footprint.

use serde::{Deserialize, Serialize};

/// Number of buckets, including the below-range catch-all at index 0.
pub const BUCKETS: usize = 64;

// Bucket `i` (for `i >= 1`) holds values whose binary exponent is
// `i + MIN_EXP - 1`, i.e. the bucket's upper edge is `2^(i + MIN_EXP)`.
const MIN_EXP: i64 = -32;

/// Exact `2^e` for `|e|` well inside the normal f64 exponent range.
fn pow2(e: i64) -> f64 {
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// A fixed-size log2-bucketed histogram of non-negative samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Per-bucket sample counts.
    counts: [u64; BUCKETS],
    /// Total samples recorded.
    count: u64,
    /// Sum of all recorded values.
    sum: f64,
    /// Smallest recorded value (0.0 when empty).
    min: f64,
    /// Largest recorded value (0.0 when empty).
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// The bucket index a value falls into, via direct IEEE-754
    /// exponent extraction (deterministic across platforms).
    pub fn bucket_of(value: f64) -> usize {
        if value <= 0.0 || !value.is_finite() {
            return 0; // zero, negative, NaN (NaN fails both the
                      // comparison and the finiteness check)
        }
        let biased = (value.to_bits() >> 52) & 0x7ff;
        if biased == 0 {
            return 0; // subnormal: below every bucket edge
        }
        let exp = biased as i64 - 1023;
        let idx = exp - MIN_EXP + 1;
        idx.clamp(0, BUCKETS as i64 - 1) as usize
    }

    /// The `[lower, upper)` value range of bucket `i`. Bucket 0's lower
    /// edge is 0, the top bucket's upper edge is unbounded (`INFINITY`).
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        assert!(i < BUCKETS, "bucket index out of range");
        if i == 0 {
            (0.0, pow2(MIN_EXP))
        } else if i == BUCKETS - 1 {
            (pow2(MIN_EXP + i as i64 - 1), f64::INFINITY)
        } else {
            (pow2(MIN_EXP + i as i64 - 1), pow2(MIN_EXP + i as i64))
        }
    }

    /// Records one sample. Negative or non-finite values count into the
    /// catch-all bucket but do not move the min/max/sum tracking.
    pub fn record(&mut self, value: f64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        if value.is_finite() && value >= 0.0 {
            if self.count == 1 || value < self.min {
                self.min = value;
            }
            if value > self.max {
                self.max = value;
            }
            self.sum += value;
        }
    }

    /// Folds another histogram into this one (bucket-wise).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bucket counts, index 0 first.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Smallest recorded value (0.0 when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded value (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-resolved quantile estimate for `q` in `[0, 1]`: the upper
    /// edge of the bucket containing the `ceil(q·n)`-th sample, clamped
    /// to the observed `[min, max]`. Resolution is one power of two.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i == 0 {
                    return self.min;
                }
                let (_, upper) = Self::bucket_bounds(i);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Condenses the histogram into the serializable summary embedded in
    /// telemetry summaries and bench cells.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

/// End-of-run aggregates of one [`LogHistogram`] — the flat shape bench
/// cells serialize.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Bucket-resolved median.
    pub p50: f64,
    /// Bucket-resolved 95th percentile.
    pub p95: f64,
    /// Bucket-resolved 99th percentile.
    pub p99: f64,
    /// Exact maximum.
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_exact_floor_log2() {
        assert_eq!(LogHistogram::bucket_of(0.0), 0);
        assert_eq!(LogHistogram::bucket_of(-1.0), 0);
        assert_eq!(LogHistogram::bucket_of(f64::NAN), 0);
        // 1.0 has exponent 0 → bucket 33; edges are half-open below.
        assert_eq!(LogHistogram::bucket_of(1.0), 33);
        assert_eq!(LogHistogram::bucket_of(1.999), 33);
        assert_eq!(LogHistogram::bucket_of(2.0), 34);
        assert_eq!(LogHistogram::bucket_of(0.5), 32);
        // Far below range collapses into the catch-all.
        assert_eq!(LogHistogram::bucket_of(1e-300), 0);
        // Far above range saturates the top bucket.
        assert_eq!(LogHistogram::bucket_of(1e300), BUCKETS - 1);
        let (lo, hi) = LogHistogram::bucket_bounds(33);
        assert_eq!(lo, 1.0);
        assert_eq!(hi, 2.0);
    }

    #[test]
    fn quantiles_are_bucket_resolved_and_clamped() {
        let mut h = LogHistogram::new();
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(100.0);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 10.9).abs() < 1e-9);
        // p50 lands in bucket [1,2): upper edge 2, clamped to max 100.
        assert_eq!(h.quantile(0.50), 2.0);
        // p95 lands in the 100.0 bucket [64,128): clamped to max.
        assert_eq!(h.quantile(0.95), 100.0);
        assert_eq!(h.max(), 100.0);
        assert_eq!(h.min(), 1.0);
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p95, 100.0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let values_a = [0.01, 0.5, 3.0, 700.0];
        let values_b = [0.0, 2.0, 2.0, 9.5, 1e-12];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in values_a {
            a.record(v);
            all.record(v);
        }
        for v in values_b {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging into an empty histogram is a copy.
        let mut empty = LogHistogram::new();
        empty.merge(&all);
        assert_eq!(empty, all);
    }

    #[test]
    fn histogram_roundtrips_through_json() {
        let mut h = LogHistogram::new();
        for v in [0.25, 1.5, 1.5, 40.0] {
            h.record(v);
        }
        let text = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&text).unwrap();
        assert_eq!(back, h);
        let s = serde_json::to_string(&h.summary()).unwrap();
        let sum: HistogramSummary = serde_json::from_str(&s).unwrap();
        assert_eq!(sum, h.summary());
    }

    #[test]
    fn identical_sample_streams_produce_bit_identical_histograms() {
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.037).collect();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for &v in &samples {
            a.record(v);
            b.record(v);
        }
        assert_eq!(a, b);
        assert_eq!(a.quantile(0.95).to_bits(), b.quantile(0.95).to_bits());
    }
}
