//! Deterministic structured event journal for online-decision tracing.
//!
//! Every interesting decision the stack makes — request lifecycle steps
//! in the sim kernel, admit/reject verdicts with their reason, META
//! regime flips with the triggering signal values, EX-MEM memo traffic,
//! federation routing verdicts and steals — can be emitted as a flat
//! [`JournalEvent`] through a [`TraceSink`]. The sink is a cheap
//! cloneable handle: disabled (the default) it is a single branch on the
//! hot path; enabled it appends into a shared ring-buffered [`Journal`].
//!
//! Determinism rules, enforced by convention and pinned by proptests in
//! `amrm-sim`:
//!
//! * event payloads carry **sim-time values only** — never wall-clock
//!   readings, so two runs at the same seed journal identically;
//! * optional 1-in-N sampling is keyed by the event's request id
//!   (`id % N == 0`), never by an RNG, so enabling or tuning sampling
//!   cannot perturb the simulation itself;
//! * memory stays flat: exact per-kind and per-reject-reason counters
//!   plus a bounded event ring (oldest events overwritten, tallied in
//!   [`Journal::dropped`]).
//!
//! Exporters: [`write_jsonl`] (one JSON object per line) and
//! [`write_chrome_trace`] (Chrome trace-event JSON, loadable in Perfetto
//! — one track per shard, regime switches doubled as counter tracks).

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use serde::value::Value;

/// Everything the stack journals, in rough lifecycle order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A request entered the kernel (value = absolute deadline).
    Arrival,
    /// An admission window opened (value = expiry instant).
    WindowOpen,
    /// An open admission window was superseded by a tighter/later expiry
    /// (value = new expiry instant).
    WindowTighten,
    /// A queue flush handed a batch to the runtime manager
    /// (detail = batch size).
    Flush,
    /// The scheduler produced a feasible joint schedule
    /// (detail = jobs scheduled, value = chosen candidate energy in J).
    ScheduleDecision,
    /// A request was admitted.
    Admit,
    /// A request was rejected (detail = [`RejectReason`] code).
    Reject,
    /// An admitted request's application completed.
    Completion,
    /// META switched algorithm regime (detail = regime code,
    /// value = EWMA arrival rate, aux = EWMA utilization).
    RegimeSwitch,
    /// META switched budget regime (detail = 0 generous / 1 tight,
    /// value = the triggering decision-latency signal).
    BudgetSwitch,
    /// EX-MEM memo lookup hit (detail = jobs in the key).
    MemoHit,
    /// EX-MEM memo lookup missed (detail = jobs in the key).
    MemoMiss,
    /// EX-MEM evicted memo entries to stay under its cap
    /// (detail = entries evicted).
    MemoEvict,
    /// EX-MEM's anytime search truncated on budget exhaustion.
    Truncation,
    /// EX-MEM's rank cap dropped first-segment candidates before full
    /// evaluation (detail = candidates dropped, value = the cap).
    RankPrune,
    /// EX-MEM served a conclusive memo hit from a disk-loaded warm-start
    /// cache entry (detail = warm hits this activation,
    /// value = warm entries resident).
    CacheWarmHit,
    /// The federation dispatcher advanced every shard to a lockstep
    /// barrier (detail = epoch ordinal, value = barrier instant).
    EpochBarrier,
    /// The dispatcher routed a request to a shard (detail = shard index,
    /// value = that shard's queue depth as seen by the policy).
    Route,
    /// Work-stealing migrated queued requests between shards
    /// (detail = thief shard, value = victim shard, aux = requests moved).
    Steal,
}

/// Number of [`EventKind`] variants (journal counter width).
pub const KIND_COUNT: usize = 19;

impl EventKind {
    /// Every kind, in declaration order (= counter index order).
    pub const ALL: [EventKind; KIND_COUNT] = [
        EventKind::Arrival,
        EventKind::WindowOpen,
        EventKind::WindowTighten,
        EventKind::Flush,
        EventKind::ScheduleDecision,
        EventKind::Admit,
        EventKind::Reject,
        EventKind::Completion,
        EventKind::RegimeSwitch,
        EventKind::BudgetSwitch,
        EventKind::MemoHit,
        EventKind::MemoMiss,
        EventKind::MemoEvict,
        EventKind::Truncation,
        EventKind::RankPrune,
        EventKind::CacheWarmHit,
        EventKind::EpochBarrier,
        EventKind::Route,
        EventKind::Steal,
    ];

    /// Stable machine-readable name (used by both exporters and CI greps).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Arrival => "arrival",
            EventKind::WindowOpen => "window_open",
            EventKind::WindowTighten => "window_tighten",
            EventKind::Flush => "flush",
            EventKind::ScheduleDecision => "schedule_decision",
            EventKind::Admit => "admit",
            EventKind::Reject => "reject",
            EventKind::Completion => "completion",
            EventKind::RegimeSwitch => "regime_switch",
            EventKind::BudgetSwitch => "budget_switch",
            EventKind::MemoHit => "memo_hit",
            EventKind::MemoMiss => "memo_miss",
            EventKind::MemoEvict => "memo_evict",
            EventKind::Truncation => "truncation",
            EventKind::RankPrune => "rank_pruned",
            EventKind::CacheWarmHit => "cache_warm_hit",
            EventKind::EpochBarrier => "epoch_barrier",
            EventKind::Route => "route",
            EventKind::Steal => "steal",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Why a request was rejected — the `detail` payload of
/// [`EventKind::Reject`] events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum RejectReason {
    /// The deadline had already passed when the batch was flushed.
    ExpiredBeforeFlush,
    /// No feasible joint schedule contained the request, even alone on
    /// top of the running set.
    InfeasibleJointSchedule,
    /// The request was provisionally accepted, then rolled back to make
    /// a later greedy retry feasible.
    RollbackVictim,
    /// The request's deadline expired while it sat in the admission
    /// queue (never reached the scheduler).
    QueueDeadline,
}

/// Number of [`RejectReason`] variants.
pub const REASON_COUNT: usize = 4;

impl RejectReason {
    /// Every reason, in declaration order (= counter index order).
    pub const ALL: [RejectReason; REASON_COUNT] = [
        RejectReason::ExpiredBeforeFlush,
        RejectReason::InfeasibleJointSchedule,
        RejectReason::RollbackVictim,
        RejectReason::QueueDeadline,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::ExpiredBeforeFlush => "expired_before_flush",
            RejectReason::InfeasibleJointSchedule => "infeasible_joint_schedule",
            RejectReason::RollbackVictim => "rollback_victim",
            RejectReason::QueueDeadline => "queue_deadline",
        }
    }

    /// Reason carried by a [`Reject`](EventKind::Reject) event's
    /// `detail`, if the code is in range.
    pub fn from_code(code: u32) -> Option<RejectReason> {
        RejectReason::ALL.get(code as usize).copied()
    }
}

/// One journaled decision: a flat, `Copy` record (sim-time only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalEvent {
    /// Sim-time instant of the decision.
    pub time: f64,
    /// What happened.
    pub kind: EventKind,
    /// Journal request id (arrival ordinal) the event belongs to, or -1
    /// for events not tied to one request (barriers, regime switches).
    pub request: i64,
    /// Kind-specific small payload (reason/regime/shard/batch size).
    pub detail: u32,
    /// Kind-specific primary value (deadline, energy, signal, depth).
    pub value: f64,
    /// Kind-specific secondary value.
    pub aux: f64,
}

impl JournalEvent {
    /// A bare event at `time`; chain the builders for payload fields.
    pub fn at(time: f64, kind: EventKind) -> Self {
        JournalEvent {
            time,
            kind,
            request: -1,
            detail: 0,
            value: 0.0,
            aux: 0.0,
        }
    }

    /// Ties the event to a journal request id (enables sampling).
    pub fn request(mut self, id: u64) -> Self {
        self.request = id as i64;
        self
    }

    /// Sets the kind-specific small payload.
    pub fn detail(mut self, detail: u32) -> Self {
        self.detail = detail;
        self
    }

    /// Sets the kind-specific primary value.
    pub fn value(mut self, value: f64) -> Self {
        self.value = value;
        self
    }

    /// Sets the kind-specific secondary value.
    pub fn aux(mut self, aux: f64) -> Self {
        self.aux = aux;
        self
    }
}

/// Journal shape: ring capacity and request sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalConfig {
    /// Maximum events retained; older events are overwritten (and
    /// tallied in [`Journal::dropped`]). Counters stay exact regardless.
    pub capacity: usize,
    /// Record request-tied events only for ids with `id % sample == 0`;
    /// `0` or `1` records every request. Keyed by the deterministic
    /// arrival ordinal — never an RNG — so sampling cannot perturb the
    /// simulation.
    pub sample: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            capacity: 65_536,
            sample: 0,
        }
    }
}

impl JournalConfig {
    /// The default config with 1-in-`sample` request sampling.
    pub fn sampled(sample: u64) -> Self {
        JournalConfig {
            sample,
            ..JournalConfig::default()
        }
    }
}

/// A bounded event journal with exact per-kind and per-reject-reason
/// counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    config: JournalConfig,
    events: Vec<JournalEvent>,
    head: usize,
    counts: [u64; KIND_COUNT],
    reject_reasons: [u64; REASON_COUNT],
    dropped: u64,
}

impl Journal {
    /// An empty journal with the given shape.
    pub fn new(config: JournalConfig) -> Self {
        assert!(config.capacity > 0, "journal capacity must be positive");
        Journal {
            config,
            events: Vec::new(),
            head: 0,
            counts: [0; KIND_COUNT],
            reject_reasons: [0; REASON_COUNT],
            dropped: 0,
        }
    }

    /// Whether the given request id passes the sampling filter.
    pub fn samples(&self, request: i64) -> bool {
        request < 0
            || self.config.sample <= 1
            || (request as u64).is_multiple_of(self.config.sample)
    }

    /// Appends an event (subject to request sampling).
    pub fn emit(&mut self, event: JournalEvent) {
        if !self.samples(event.request) {
            return;
        }
        self.counts[event.kind.index()] += 1;
        if event.kind == EventKind::Reject {
            if let Some(reason) = RejectReason::from_code(event.detail) {
                self.reject_reasons[reason as usize] += 1;
            }
        }
        if self.events.len() < self.config.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.config.capacity;
            self.dropped += 1;
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<JournalEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// Events retained in the ring right now.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was ever journaled.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Events recorded over the whole run (including ring-evicted ones).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Events overwritten by the bounded ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The journal's shape.
    pub fn config(&self) -> JournalConfig {
        self.config
    }

    /// Exact per-kind event counts, [`EventKind::ALL`] order.
    pub fn counts(&self) -> &[u64; KIND_COUNT] {
        &self.counts
    }

    /// Exact count for one kind.
    pub fn count_of(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Exact per-reason reject counts, [`RejectReason::ALL`] order.
    pub fn reject_reasons(&self) -> &[u64; REASON_COUNT] {
        &self.reject_reasons
    }

    /// Exact count for one reject reason.
    pub fn rejects_for(&self, reason: RejectReason) -> u64 {
        self.reject_reasons[reason as usize]
    }

    /// Checks that every sampled request's lifecycle in the retained
    /// events is complete: an `arrival` and a terminal event (`admit` +
    /// `completion`, a `reject`, or a `steal` — a stolen request leaves
    /// this shard and its lifecycle continues under a new id at the
    /// thief). Only meaningful when nothing was ring-evicted; returns
    /// `Ok` vacuously if events were dropped.
    ///
    /// # Errors
    ///
    /// Returns the ids of requests with a missing arrival or terminal.
    pub fn validate_lifecycles(&self) -> Result<(), String> {
        if self.dropped > 0 {
            return Ok(());
        }
        use std::collections::BTreeMap;
        // (has arrival, has terminal)
        let mut seen: BTreeMap<i64, (bool, bool)> = BTreeMap::new();
        for e in &self.events {
            if e.request < 0 {
                continue;
            }
            let entry = seen.entry(e.request).or_insert((false, false));
            match e.kind {
                EventKind::Arrival => entry.0 = true,
                EventKind::Reject | EventKind::Completion | EventKind::Steal => entry.1 = true,
                _ => {}
            }
        }
        let incomplete: Vec<String> = seen
            .iter()
            .filter(|(_, (arrived, terminal))| !(*arrived && *terminal))
            .map(|(id, _)| id.to_string())
            .collect();
        if incomplete.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "requests with incomplete lifecycles: {}",
                incomplete.join(", ")
            ))
        }
    }
}

/// A cheap cloneable handle through which any layer journals events.
///
/// Disabled (the default) the handle is a `None` check — the hot path
/// pays one branch. Enabled, all clones share one mutex-guarded
/// [`Journal`]; the whole handle is `Send + Sync` so it can ride inside
/// schedulers and shards that migrate across worker threads.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Mutex<Journal>>>,
}

impl TraceSink {
    /// The no-op sink.
    pub fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// A sink recording into a fresh journal of the given shape.
    pub fn enabled(config: JournalConfig) -> Self {
        TraceSink {
            inner: Some(Arc::new(Mutex::new(Journal::new(config)))),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Journals one event (no-op when disabled).
    pub fn emit(&self, event: JournalEvent) {
        if let Some(journal) = &self.inner {
            journal.lock().expect("journal mutex poisoned").emit(event);
        }
    }

    /// A copy of the journal as recorded so far (`None` when disabled).
    pub fn snapshot(&self) -> Option<Journal> {
        self.inner
            .as_ref()
            .map(|j| j.lock().expect("journal mutex poisoned").clone())
    }
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn event_value(e: &JournalEvent) -> Value {
    obj(vec![
        ("t", Value::Float(e.time)),
        ("kind", Value::Str(e.kind.name().to_string())),
        ("request", Value::Int(e.request)),
        ("detail", Value::UInt(e.detail as u64)),
        ("value", Value::Float(e.value)),
        ("aux", Value::Float(e.aux)),
    ])
}

/// Writes the retained events as JSON Lines, oldest first.
///
/// # Errors
///
/// Returns any I/O error.
pub fn write_jsonl<W: Write>(journal: &Journal, w: &mut W) -> io::Result<()> {
    for e in journal.events() {
        let line = serde_json::to_string(&event_value(&e)).map_err(io::Error::other)?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Builds a Chrome trace-event document (Perfetto-loadable) from one
/// journal per track: instant events on the track's thread, regime and
/// budget switches doubled as counter tracks, sim seconds mapped to
/// trace microseconds.
pub fn chrome_trace_value(tracks: &[(&str, &Journal)]) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for (pid, (label, journal)) in tracks.iter().enumerate() {
        let pid = pid as u64;
        events.push(obj(vec![
            ("name", Value::Str("process_name".to_string())),
            ("ph", Value::Str("M".to_string())),
            ("pid", Value::UInt(pid)),
            ("tid", Value::UInt(0)),
            ("args", obj(vec![("name", Value::Str(label.to_string()))])),
        ]));
        for e in journal.events() {
            let ts = Value::Float(e.time * 1e6);
            events.push(obj(vec![
                ("name", Value::Str(e.kind.name().to_string())),
                ("cat", Value::Str("amrm".to_string())),
                ("ph", Value::Str("i".to_string())),
                ("s", Value::Str("t".to_string())),
                ("ts", ts.clone()),
                ("pid", Value::UInt(pid)),
                ("tid", Value::UInt(0)),
                (
                    "args",
                    obj(vec![
                        ("request", Value::Int(e.request)),
                        ("detail", Value::UInt(e.detail as u64)),
                        ("value", Value::Float(e.value)),
                        ("aux", Value::Float(e.aux)),
                    ]),
                ),
            ]));
            let counter = match e.kind {
                EventKind::RegimeSwitch => Some("regime"),
                EventKind::BudgetSwitch => Some("budget_regime"),
                _ => None,
            };
            if let Some(name) = counter {
                events.push(obj(vec![
                    ("name", Value::Str(name.to_string())),
                    ("ph", Value::Str("C".to_string())),
                    ("ts", ts),
                    ("pid", Value::UInt(pid)),
                    ("args", obj(vec![(name, Value::UInt(e.detail as u64))])),
                ]));
            }
        }
    }
    obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", Value::Str("ms".to_string())),
    ])
}

/// Writes [`chrome_trace_value`] as pretty-printed JSON.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_chrome_trace<W: Write>(tracks: &[(&str, &Journal)], w: &mut W) -> io::Result<()> {
    serde_json::to_writer(w, &chrome_trace_value(tracks)).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lifecycle(journal: &mut Journal, id: u64, admit: bool) {
        let t = id as f64;
        journal.emit(
            JournalEvent::at(t, EventKind::Arrival)
                .request(id)
                .value(t + 5.0),
        );
        journal.emit(JournalEvent::at(t + 0.5, EventKind::Flush).detail(1));
        if admit {
            journal.emit(JournalEvent::at(t + 0.5, EventKind::Admit).request(id));
            journal.emit(JournalEvent::at(t + 2.0, EventKind::Completion).request(id));
        } else {
            journal.emit(
                JournalEvent::at(t + 0.5, EventKind::Reject)
                    .request(id)
                    .detail(RejectReason::InfeasibleJointSchedule as u32),
            );
        }
    }

    #[test]
    fn counters_stay_exact_when_the_ring_wraps() {
        let mut j = Journal::new(JournalConfig {
            capacity: 8,
            sample: 0,
        });
        for id in 0..10 {
            lifecycle(&mut j, id, id % 2 == 0);
        }
        assert_eq!(j.count_of(EventKind::Arrival), 10);
        assert_eq!(j.count_of(EventKind::Admit), 5);
        assert_eq!(j.count_of(EventKind::Reject), 5);
        assert_eq!(j.rejects_for(RejectReason::InfeasibleJointSchedule), 5);
        assert_eq!(j.len(), 8);
        assert!(j.dropped() > 0);
    }

    #[test]
    fn ring_returns_events_in_emission_order_after_wrapping() {
        let mut j = Journal::new(JournalConfig {
            capacity: 8,
            sample: 0,
        });
        for i in 0..11u64 {
            j.emit(JournalEvent::at(i as f64, EventKind::Flush).detail(i as u32));
        }
        let events = j.events();
        assert_eq!(events.len(), 8);
        let details: Vec<u32> = events.iter().map(|e| e.detail).collect();
        assert_eq!(details, (3..11).collect::<Vec<u32>>());
        assert_eq!(j.dropped(), 3);
        assert_eq!(j.count_of(EventKind::Flush), 11);
    }

    #[test]
    fn sampling_is_keyed_by_request_id() {
        let mut j = Journal::new(JournalConfig::sampled(4));
        for id in 0..16 {
            lifecycle(&mut j, id, true);
        }
        // 1-in-4 request-tied events; Flush has no request and always lands.
        assert_eq!(j.count_of(EventKind::Arrival), 4);
        assert_eq!(j.count_of(EventKind::Admit), 4);
        assert_eq!(j.count_of(EventKind::Flush), 16);
        // And the sampled requests' lifecycles stay complete.
        j.validate_lifecycles().unwrap();
    }

    #[test]
    fn lifecycle_validation_flags_missing_terminals() {
        let mut j = Journal::new(JournalConfig::default());
        lifecycle(&mut j, 0, true);
        j.emit(JournalEvent::at(9.0, EventKind::Arrival).request(9));
        let err = j.validate_lifecycles().unwrap_err();
        assert!(err.contains('9'));
    }

    #[test]
    fn disabled_sink_records_nothing_and_enabled_sink_shares_one_journal() {
        let off = TraceSink::disabled();
        assert!(!off.is_enabled());
        off.emit(JournalEvent::at(0.0, EventKind::Arrival).request(0));
        assert!(off.snapshot().is_none());

        let on = TraceSink::enabled(JournalConfig::default());
        let clone = on.clone();
        on.emit(JournalEvent::at(0.0, EventKind::Arrival).request(0));
        clone.emit(JournalEvent::at(1.0, EventKind::Completion).request(0));
        let journal = on.snapshot().unwrap();
        assert_eq!(journal.total(), 2);
    }

    #[test]
    fn jsonl_export_is_one_object_per_line_with_stable_names() {
        let mut j = Journal::new(JournalConfig::default());
        lifecycle(&mut j, 3, false);
        let mut buf = Vec::new();
        write_jsonl(&j, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"arrival\""));
        assert!(lines[2].contains("\"kind\":\"reject\""));
        for line in lines {
            let v: Value = serde_json::from_str(line).unwrap();
            assert!(v.as_obj().is_some());
        }
    }

    #[test]
    fn chrome_trace_has_tracks_instants_and_counters() {
        let mut a = Journal::new(JournalConfig::default());
        lifecycle(&mut a, 0, true);
        a.emit(
            JournalEvent::at(1.0, EventKind::RegimeSwitch)
                .detail(2)
                .value(0.8)
                .aux(0.6),
        );
        let mut b = Journal::new(JournalConfig::default());
        b.emit(JournalEvent::at(0.5, EventKind::Route).detail(0).value(1.0));
        let doc = chrome_trace_value(&[("dispatcher", &b), ("shard 0", &a)]);
        let mut buf = Vec::new();
        write_chrome_trace(&[("dispatcher", &b), ("shard 0", &a)], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Loadable JSON with the trace-event envelope.
        let back: Value = serde_json::from_str(&text).unwrap();
        assert!(back.as_obj().is_some());
        assert!(text.contains("traceEvents"));
        assert!(text.contains("process_name"));
        assert!(text.contains("regime_switch"));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("route"));
        // Two process-name metadata records, one per track.
        let Value::Obj(fields) = &doc else {
            panic!("expected object")
        };
        let Value::Arr(events) = &fields[0].1 else {
            panic!("expected traceEvents array")
        };
        let meta = events
            .iter()
            .filter(|e| serde_json::to_string(e).unwrap().contains("process_name"))
            .count();
        assert_eq!(meta, 2);
    }
}
