//! Online telemetry: O(1)-memory time series the runtime feeds and
//! adaptive admission policies read.
//!
//! The `amrm-sim` event kernel owns a [`Telemetry`] recorder and updates
//! it at every arrival, batch flush and window expiry: queue depth,
//! observed arrival rate, platform utilization (busy cores per type),
//! rolling acceptance, energy per admitted job and the admission
//! pipeline's activation latency. All series are either exponentially
//! weighted moving averages ([`Ewma`]) or bounded sample rings
//! ([`RingBuffer`]), so memory stays constant no matter how long the
//! stream runs.
//!
//! At each decision point the kernel hands policies a read-only
//! [`TelemetrySnapshot`]; at the end of a run
//! [`Telemetry::summary`] condenses the series into a serializable
//! [`TelemetrySummary`] (percentile queue waits, mean utilization, …).
//!
//! Everything a policy can observe through the snapshot is derived from
//! *simulated* time and state — never wall clocks — so adaptive policies
//! stay deterministic per seed. Wall-clock scheduler decision times are
//! recorded too, but only surface in the summary (reporting), never in
//! the snapshot.
//!
//! # Examples
//!
//! ```
//! use amrm_metrics::Telemetry;
//!
//! let mut t = Telemetry::new();
//! t.record_arrival(0.0);
//! t.record_arrival(2.0);
//! t.record_arrival(4.0);
//! let snap = t.snapshot(4.0, 1, Some(3.5), None);
//! assert!((snap.arrival_rate - 0.5).abs() < 1e-12);
//! assert_eq!(snap.queue_depth, 1);
//! ```

use serde::Serialize;

use crate::histogram::{HistogramSummary, LogHistogram};
use crate::stats::Percentiles;

/// A fixed-capacity ring of `f64` samples: pushing beyond capacity
/// overwrites the oldest sample, so memory is O(capacity) forever.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    data: Vec<f64>,
    capacity: usize,
    /// Write position once the ring is full.
    next: usize,
}

impl RingBuffer {
    /// Creates an empty ring holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer needs a positive capacity");
        RingBuffer {
            data: Vec::new(),
            capacity,
            next: 0,
        }
    }

    /// Appends a sample, evicting the oldest once full.
    pub fn push(&mut self, sample: f64) {
        if self.data.len() < self.capacity {
            self.data.push(sample);
        } else {
            self.data[self.next] = sample;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained samples, in no particular order (enough for order-
    /// insensitive statistics like means and percentiles).
    pub fn samples(&self) -> &[f64] {
        &self.data
    }

    /// The most recently pushed sample.
    pub fn last(&self) -> Option<f64> {
        if self.data.is_empty() {
            None
        } else if self.data.len() < self.capacity {
            self.data.last().copied()
        } else {
            Some(self.data[(self.next + self.capacity - 1) % self.capacity])
        }
    }

    /// Arithmetic mean of the retained samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }
}

/// An exponentially weighted moving average: `v ← α·x + (1−α)·v`, with
/// the first sample taken verbatim. O(1) memory, one multiply per update.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an empty average with smoothing factor `alpha ∈ (0, 1]`
    /// (1.0 degenerates to "latest sample wins").
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA smoothing factor must be in (0, 1], got {alpha}"
        );
        Ewma { alpha, value: None }
    }

    /// Folds a sample into the average and returns the new value.
    pub fn update(&mut self, sample: f64) -> f64 {
        let next = match self.value {
            Some(v) => self.alpha * sample + (1.0 - self.alpha) * v,
            None => sample,
        };
        self.value = Some(next);
        next
    }

    /// The current average, or `None` before the first sample.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The current average, defaulting to 0.0 before the first sample.
    pub fn get(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }
}

/// Read-only view of the telemetry series at one decision point, plus the
/// kernel's queue state (depth, tightest queued slack, open window).
///
/// Every field is derived from simulated time and state — handing this to
/// a stateful policy keeps its decisions deterministic per seed.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// The decision instant (simulated seconds).
    pub now: f64,
    /// Requests currently waiting in the admission queue (including the
    /// one that just arrived, at arrival decision points).
    pub queue_depth: usize,
    /// Tightest `deadline − now` over the queued requests, or `None` when
    /// the queue is empty.
    pub min_queued_slack: Option<f64>,
    /// Absolute expiry of the currently open gathering window, if any.
    pub window_expiry: Option<f64>,
    /// EWMA observed arrival rate in requests per simulated second (0.0
    /// until two arrivals have been seen).
    pub arrival_rate: f64,
    /// EWMA overall platform utilization in `[0, 1]` (busy cores over
    /// total cores).
    pub utilization: f64,
    /// Acceptance rate over the last [`Telemetry::ACCEPTANCE_WINDOW`]
    /// admission decisions; optimistically 1.0 before any decision.
    pub rolling_acceptance: f64,
    /// Metered energy per admitted job so far, in joules (0.0 before the
    /// first admission).
    pub energy_per_job: f64,
    /// EWMA activation latency in simulated seconds: the delay between a
    /// flushed batch's oldest arrival and its scheduler activation — how
    /// long the admission pipeline has recently held requests back.
    pub activation_latency: f64,
    /// 95th-percentile simulated queue wait (arrival → flush) over the
    /// most recent [`Telemetry::SAMPLE_CAPACITY`] flushed requests; 0.0
    /// before the first flush. Simulated time only — together with the
    /// activation-latency EWMA this is the *decision-latency* signal a
    /// budget-adaptive scheduler sizes its search effort from, without
    /// breaking per-seed determinism.
    pub queue_wait_p95: f64,
    /// Requests dropped from the queue at their deadline so far.
    pub queue_drops: usize,
    /// Arrivals observed so far.
    pub arrivals: usize,
    /// Scheduler activations triggered by batch flushes so far.
    pub activations: usize,
}

impl Default for TelemetrySnapshot {
    /// An idle snapshot at t = 0: empty queue, no window, no history
    /// (rolling acceptance starts optimistic at 1.0).
    fn default() -> Self {
        TelemetrySnapshot {
            now: 0.0,
            queue_depth: 0,
            min_queued_slack: None,
            window_expiry: None,
            arrival_rate: 0.0,
            utilization: 0.0,
            rolling_acceptance: 1.0,
            energy_per_job: 0.0,
            activation_latency: 0.0,
            queue_wait_p95: 0.0,
            queue_drops: 0,
            arrivals: 0,
            activations: 0,
        }
    }
}

/// End-of-run condensation of the telemetry series, embedded in
/// `SimOutcome` and (per admission-grid cell) in the perf baseline.
///
/// Percentiles are computed over bounded sample rings (the most recent
/// [`Telemetry::SAMPLE_CAPACITY`] samples) and default to 0.0 when a
/// series is empty. `decision_seconds_*` are wall-clock scheduler
/// decision times — machine-dependent, like the suite's search times;
/// everything else is simulated time and reproducible per seed.
///
/// The `*_hist` summaries come from streaming [`LogHistogram`]s that see
/// **every** sample of the run (not just the bounded rings), at O(1)
/// memory — the distribution aggregates bench reporting uses for
/// multi-million-request aggregated runs. `Deserialize` is hand-written
/// (the vendored serde stub has no `#[serde(default)]`): summaries
/// written before the histograms existed read back with empty ones.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TelemetrySummary {
    /// Arrivals observed.
    pub arrivals: usize,
    /// Batch flushes that reached the scheduler.
    pub activations: usize,
    /// Requests dropped from the admission queue at their deadline.
    pub queue_drops: usize,
    /// Final EWMA arrival rate, requests per simulated second.
    pub arrival_rate: f64,
    /// Final EWMA of the post-event queue depth (sampled after each
    /// directive takes effect, so a flushed queue contributes 0).
    pub queue_depth: f64,
    /// Final EWMA overall utilization in `[0, 1]`.
    pub utilization: f64,
    /// Final EWMA per-core-type utilization in `[0, 1]`.
    pub utilization_per_type: Vec<f64>,
    /// Acceptance rate over the most recent admission decisions.
    pub rolling_acceptance: f64,
    /// Final energy per admitted job, in joules.
    pub energy_per_job: f64,
    /// Final EWMA activation latency (batch gathering delay), simulated
    /// seconds.
    pub activation_latency: f64,
    /// Median queue wait (arrival → flush), simulated seconds.
    pub queue_wait_p50: f64,
    /// 95th-percentile queue wait, simulated seconds.
    pub queue_wait_p95: f64,
    /// 99th-percentile queue wait, simulated seconds.
    pub queue_wait_p99: f64,
    /// Median wall-clock scheduler decision time per activation, seconds.
    pub decision_seconds_p50: f64,
    /// 95th-percentile wall-clock decision time, seconds.
    pub decision_seconds_p95: f64,
    /// 99th-percentile wall-clock decision time, seconds.
    pub decision_seconds_p99: f64,
    /// Whole-run queue-wait distribution (simulated seconds), streamed
    /// through a log-bucketed histogram.
    pub queue_wait_hist: HistogramSummary,
    /// Whole-run wall-clock decision-time distribution (seconds) —
    /// machine-dependent, reporting only.
    pub decision_seconds_hist: HistogramSummary,
    /// Whole-run slack-at-admission distribution: `deadline − now` of
    /// each **admitted** request at its decision instant, simulated
    /// seconds.
    pub admission_slack_hist: HistogramSummary,
}

impl serde::Deserialize for TelemetrySummary {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let Some(fields) = v.as_obj() else {
            return Err(serde::Error::new("expected TelemetrySummary object"));
        };
        let field = |name: &str| serde::value::get_field(fields, name);
        // Histogram summaries are absent in files written before the
        // streaming histograms existed — default to empty.
        let hist = |name: &str| -> Result<HistogramSummary, serde::Error> {
            match field(name) {
                Ok(value) => HistogramSummary::from_value(value),
                Err(_) => Ok(HistogramSummary::default()),
            }
        };
        Ok(TelemetrySummary {
            arrivals: usize::from_value(field("arrivals")?)?,
            activations: usize::from_value(field("activations")?)?,
            queue_drops: usize::from_value(field("queue_drops")?)?,
            arrival_rate: f64::from_value(field("arrival_rate")?)?,
            queue_depth: f64::from_value(field("queue_depth")?)?,
            utilization: f64::from_value(field("utilization")?)?,
            utilization_per_type: Vec::from_value(field("utilization_per_type")?)?,
            rolling_acceptance: f64::from_value(field("rolling_acceptance")?)?,
            energy_per_job: f64::from_value(field("energy_per_job")?)?,
            activation_latency: f64::from_value(field("activation_latency")?)?,
            queue_wait_p50: f64::from_value(field("queue_wait_p50")?)?,
            queue_wait_p95: f64::from_value(field("queue_wait_p95")?)?,
            queue_wait_p99: f64::from_value(field("queue_wait_p99")?)?,
            decision_seconds_p50: f64::from_value(field("decision_seconds_p50")?)?,
            decision_seconds_p95: f64::from_value(field("decision_seconds_p95")?)?,
            decision_seconds_p99: f64::from_value(field("decision_seconds_p99")?)?,
            queue_wait_hist: hist("queue_wait_hist")?,
            decision_seconds_hist: hist("decision_seconds_hist")?,
            admission_slack_hist: hist("admission_slack_hist")?,
        })
    }
}

/// The online telemetry recorder owned by the simulation kernel.
///
/// All series are O(1) memory: EWMAs for the rates and levels, bounded
/// rings for the sample distributions. The kernel calls the `record_*`
/// methods as events are handled; policies only ever see the read-only
/// [`TelemetrySnapshot`].
#[derive(Debug, Clone)]
pub struct Telemetry {
    last_arrival: Option<f64>,
    arrival_gap: Ewma,
    queue_depth: Ewma,
    utilization: Ewma,
    utilization_per_type: Vec<Ewma>,
    activation_latency: Ewma,
    /// 1.0 per accepted / 0.0 per rejected request, most recent
    /// [`Telemetry::ACCEPTANCE_WINDOW`] decisions.
    acceptance: RingBuffer,
    queue_wait: RingBuffer,
    /// Cached queue-wait p95, invalidated on each recorded wait: the
    /// snapshot is taken on every kernel event, and sorting the sample
    /// ring there would put an O(n log n) pass on the hot event path.
    /// A `Cell` because the lazily recomputed value must be stored from
    /// the `&self` snapshot path (the recorder stays `Send`).
    queue_wait_p95_cache: std::cell::Cell<Option<f64>>,
    decision_seconds: RingBuffer,
    /// Whole-run streaming distributions (the rings above cap at
    /// [`Telemetry::SAMPLE_CAPACITY`]; these see every sample at O(1)
    /// memory).
    queue_wait_hist: LogHistogram,
    decision_seconds_hist: LogHistogram,
    admission_slack_hist: LogHistogram,
    total_energy: f64,
    total_accepted: usize,
    queue_drops: usize,
    arrivals: usize,
    activations: usize,
}

impl Telemetry {
    /// EWMA smoothing factor for all rate/level series.
    pub const ALPHA: f64 = 0.2;
    /// Rolling-acceptance window: decisions remembered for the rate.
    pub const ACCEPTANCE_WINDOW: usize = 64;
    /// Ring capacity for the percentile sample series.
    pub const SAMPLE_CAPACITY: usize = 512;

    /// Creates an empty recorder with the default smoothing and ring
    /// capacities.
    pub fn new() -> Self {
        Telemetry {
            last_arrival: None,
            arrival_gap: Ewma::new(Self::ALPHA),
            queue_depth: Ewma::new(Self::ALPHA),
            utilization: Ewma::new(Self::ALPHA),
            utilization_per_type: Vec::new(),
            activation_latency: Ewma::new(Self::ALPHA),
            acceptance: RingBuffer::new(Self::ACCEPTANCE_WINDOW),
            queue_wait: RingBuffer::new(Self::SAMPLE_CAPACITY),
            queue_wait_p95_cache: std::cell::Cell::new(None),
            decision_seconds: RingBuffer::new(Self::SAMPLE_CAPACITY),
            queue_wait_hist: LogHistogram::new(),
            decision_seconds_hist: LogHistogram::new(),
            admission_slack_hist: LogHistogram::new(),
            total_energy: 0.0,
            total_accepted: 0,
            queue_drops: 0,
            arrivals: 0,
            activations: 0,
        }
    }

    /// Records a request arrival at simulated time `now`, updating the
    /// observed inter-arrival gap (and thus the arrival rate).
    pub fn record_arrival(&mut self, now: f64) {
        self.arrivals += 1;
        if let Some(prev) = self.last_arrival {
            self.arrival_gap.update((now - prev).max(0.0));
        }
        self.last_arrival = Some(now);
    }

    /// Records the admission-queue depth after an event.
    pub fn record_queue_depth(&mut self, depth: usize) {
        self.queue_depth.update(depth as f64);
    }

    /// Records platform utilization from per-type busy and capacity core
    /// counts (as reported by the execution engine).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or the total capacity
    /// is zero.
    pub fn record_utilization(&mut self, busy: &[u32], capacity: &[u32]) {
        assert_eq!(busy.len(), capacity.len(), "core type count mismatch");
        let total: u32 = capacity.iter().sum();
        assert!(total > 0, "platform must have at least one core");
        if self.utilization_per_type.len() != busy.len() {
            self.utilization_per_type = vec![Ewma::new(Self::ALPHA); busy.len()];
        }
        for (ewma, (&b, &c)) in self
            .utilization_per_type
            .iter_mut()
            .zip(busy.iter().zip(capacity))
        {
            ewma.update(if c == 0 {
                0.0
            } else {
                f64::from(b) / f64::from(c)
            });
        }
        let busy_total: u32 = busy.iter().sum();
        self.utilization
            .update(f64::from(busy_total) / f64::from(total));
    }

    /// Records one scheduler activation caused by a batch flush:
    /// `gather_latency` is the simulated delay between the batch's oldest
    /// arrival and the flush, `decision_seconds` the wall-clock time the
    /// runtime manager spent deciding the batch (reporting only).
    pub fn record_activation(&mut self, gather_latency: f64, decision_seconds: f64) {
        self.activations += 1;
        self.activation_latency.update(gather_latency.max(0.0));
        self.decision_seconds.push(decision_seconds.max(0.0));
        self.decision_seconds_hist.record(decision_seconds.max(0.0));
    }

    /// Records the simulated queue wait (arrival → flush) of one flushed
    /// request.
    pub fn record_queue_wait(&mut self, wait: f64) {
        self.queue_wait.push(wait.max(0.0));
        self.queue_wait_hist.record(wait.max(0.0));
        self.queue_wait_p95_cache.set(None);
    }

    /// Records the remaining slack (`deadline − now`) of one **admitted**
    /// request at its decision instant.
    pub fn record_admission_slack(&mut self, slack: f64) {
        self.admission_slack_hist.record(slack.max(0.0));
    }

    /// Folds another recorder's streaming histograms into this one (used
    /// when merging per-shard telemetry for federation-wide reporting).
    pub fn merge_histograms(&mut self, other: &Telemetry) {
        self.queue_wait_hist.merge(&other.queue_wait_hist);
        self.decision_seconds_hist
            .merge(&other.decision_seconds_hist);
        self.admission_slack_hist.merge(&other.admission_slack_hist);
    }

    /// Records the decisions of one flushed batch for the rolling
    /// acceptance rate.
    pub fn record_decisions(&mut self, accepted: usize, rejected: usize) {
        for _ in 0..accepted {
            self.acceptance.push(1.0);
        }
        for _ in 0..rejected {
            self.acceptance.push(0.0);
        }
    }

    /// Records a request dropped from the queue at its deadline (its
    /// rejection is recorded separately via
    /// [`record_decisions`](Telemetry::record_decisions)).
    pub fn record_queue_drop(&mut self) {
        self.queue_drops += 1;
    }

    /// Records the cumulative metered energy and admitted-job count, from
    /// which the energy-per-job series derives.
    pub fn record_energy(&mut self, total_energy: f64, total_accepted: usize) {
        self.total_energy = total_energy;
        self.total_accepted = total_accepted;
    }

    /// Energy per admitted job so far, in joules (0.0 before the first
    /// admission).
    pub fn energy_per_job(&self) -> f64 {
        if self.total_accepted == 0 {
            0.0
        } else {
            self.total_energy / self.total_accepted as f64
        }
    }

    /// Floor for the smoothed inter-arrival gap when inverting it into a
    /// rate: a gap EWMA driven to zero by simultaneous burst arrivals
    /// reports a very *high* (but finite, JSON-safe) rate instead of
    /// falling back to 0.0 — the old cold-start underestimate read a
    /// stacked burst as "no load" and delayed reactive schedulers'
    /// heavy-regime entry.
    const MIN_RATE_GAP: f64 = 1e-9;

    /// EWMA arrival rate in requests per simulated second (0.0 until two
    /// arrivals have been observed — one arrival carries no rate
    /// information).
    fn arrival_rate(&self) -> f64 {
        match self.arrival_gap.value() {
            Some(gap) => 1.0 / gap.max(Self::MIN_RATE_GAP),
            None => 0.0,
        }
    }

    /// Acceptance rate over the retained decisions; optimistically 1.0
    /// before any decision.
    fn rolling_acceptance(&self) -> f64 {
        if self.acceptance.is_empty() {
            1.0
        } else {
            self.acceptance.mean()
        }
    }

    /// The read-only view handed to admission policies at a decision
    /// point. Queue state (`queue_depth`, `min_queued_slack`,
    /// `window_expiry`) is the caller's — the kernel owns the queue, the
    /// recorder owns the series.
    pub fn snapshot(
        &self,
        now: f64,
        queue_depth: usize,
        min_queued_slack: Option<f64>,
        window_expiry: Option<f64>,
    ) -> TelemetrySnapshot {
        let mut out = TelemetrySnapshot::default();
        self.snapshot_into(&mut out, now, queue_depth, min_queued_slack, window_expiry);
        out
    }

    /// [`Telemetry::snapshot`] into a caller-owned snapshot: the event
    /// kernel takes one per arrival, so the hot path refills a scratch
    /// struct instead of constructing a fresh one each time. All fields
    /// are overwritten; the previous contents never leak through.
    pub fn snapshot_into(
        &self,
        out: &mut TelemetrySnapshot,
        now: f64,
        queue_depth: usize,
        min_queued_slack: Option<f64>,
        window_expiry: Option<f64>,
    ) {
        out.now = now;
        out.queue_depth = queue_depth;
        out.min_queued_slack = min_queued_slack;
        out.window_expiry = window_expiry;
        out.arrival_rate = self.arrival_rate();
        out.utilization = self.utilization.get();
        out.rolling_acceptance = self.rolling_acceptance();
        out.energy_per_job = self.energy_per_job();
        out.activation_latency = self.activation_latency.get();
        out.queue_wait_p95 = self.queue_wait_p95();
        out.queue_drops = self.queue_drops;
        out.arrivals = self.arrivals;
        out.activations = self.activations;
    }

    /// 95th-percentile simulated queue wait over the retained samples
    /// (0.0 while the ring is empty). Derived from simulated time only,
    /// so snapshots carrying it keep adaptive consumers deterministic.
    /// Recomputed only after a new wait sample invalidated the cache —
    /// snapshots between flushes reuse the cached value.
    fn queue_wait_p95(&self) -> f64 {
        if let Some(cached) = self.queue_wait_p95_cache.get() {
            return cached;
        }
        let p95 = crate::percentile(self.queue_wait.samples(), 95.0).unwrap_or(0.0);
        self.queue_wait_p95_cache.set(Some(p95));
        p95
    }

    /// Condenses the series into the end-of-run summary.
    pub fn summary(&self) -> TelemetrySummary {
        let zero = Percentiles {
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
        };
        let pct = |ring: &RingBuffer| Percentiles::from_samples(ring.samples()).unwrap_or(zero);
        let wait = pct(&self.queue_wait);
        let decision = pct(&self.decision_seconds);
        TelemetrySummary {
            arrivals: self.arrivals,
            activations: self.activations,
            queue_drops: self.queue_drops,
            arrival_rate: self.arrival_rate(),
            queue_depth: self.queue_depth.get(),
            utilization: self.utilization.get(),
            utilization_per_type: self.utilization_per_type.iter().map(Ewma::get).collect(),
            rolling_acceptance: self.rolling_acceptance(),
            energy_per_job: self.energy_per_job(),
            activation_latency: self.activation_latency.get(),
            queue_wait_p50: wait.p50,
            queue_wait_p95: wait.p95,
            queue_wait_p99: wait.p99,
            decision_seconds_p50: decision.p50,
            decision_seconds_p95: decision.p95,
            decision_seconds_p99: decision.p99,
            queue_wait_hist: self.queue_wait_hist.summary(),
            decision_seconds_hist: self.decision_seconds_hist.summary(),
            admission_slack_hist: self.admission_slack_hist.summary(),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_overwrites_oldest() {
        let mut r = RingBuffer::new(3);
        assert!(r.is_empty());
        assert_eq!(r.last(), None);
        for x in [1.0, 2.0, 3.0] {
            r.push(x);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.last(), Some(3.0));
        r.push(4.0); // evicts 1.0
        assert_eq!(r.len(), 3);
        assert_eq!(r.last(), Some(4.0));
        let mut s = r.samples().to_vec();
        s.sort_by(f64::total_cmp);
        assert_eq!(s, vec![2.0, 3.0, 4.0]);
        assert!((r.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_ring_panics() {
        let _ = RingBuffer::new(0);
    }

    #[test]
    fn ewma_smooths_towards_samples() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.get(), 0.0);
        assert_eq!(e.update(4.0), 4.0); // first sample verbatim
        assert_eq!(e.update(0.0), 2.0);
        assert_eq!(e.update(2.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn arrival_rate_is_inverse_mean_gap() {
        let mut t = Telemetry::new();
        t.record_arrival(0.0);
        // No gap yet: rate is 0.
        assert_eq!(t.snapshot(0.0, 1, None, None).arrival_rate, 0.0);
        t.record_arrival(2.0);
        t.record_arrival(4.0);
        let snap = t.snapshot(4.0, 2, Some(1.0), None);
        assert!((snap.arrival_rate - 0.5).abs() < 1e-12);
        assert_eq!(snap.arrivals, 3);
        assert_eq!(snap.min_queued_slack, Some(1.0));
    }

    #[test]
    fn rolling_acceptance_starts_optimistic_then_tracks() {
        let mut t = Telemetry::new();
        assert_eq!(t.snapshot(0.0, 0, None, None).rolling_acceptance, 1.0);
        t.record_decisions(3, 1);
        let snap = t.snapshot(1.0, 0, None, None);
        assert!((snap.rolling_acceptance - 0.75).abs() < 1e-12);
    }

    #[test]
    fn utilization_tracks_busy_over_capacity() {
        let mut t = Telemetry::new();
        t.record_utilization(&[2, 2], &[4, 4]);
        let snap = t.snapshot(0.0, 0, None, None);
        assert!((snap.utilization - 0.5).abs() < 1e-12);
        let summary = t.summary();
        assert_eq!(summary.utilization_per_type.len(), 2);
        assert!((summary.utilization_per_type[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn energy_per_job_guards_division() {
        let mut t = Telemetry::new();
        assert_eq!(t.energy_per_job(), 0.0);
        t.record_energy(30.0, 3);
        assert!((t.energy_per_job() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn summary_reports_percentiles_and_counters() {
        let mut t = Telemetry::new();
        t.record_arrival(0.0);
        t.record_arrival(1.0);
        for w in [0.0, 1.0, 2.0, 3.0] {
            t.record_queue_wait(w);
        }
        t.record_activation(1.5, 0.001);
        t.record_queue_drop();
        t.record_decisions(1, 1);
        let s = t.summary();
        assert_eq!(s.arrivals, 2);
        assert_eq!(s.activations, 1);
        assert_eq!(s.queue_drops, 1);
        assert!((s.queue_wait_p50 - 1.5).abs() < 1e-12);
        assert!(s.queue_wait_p99 > s.queue_wait_p50);
        assert!((s.activation_latency - 1.5).abs() < 1e-12);
        assert!((s.rolling_acceptance - 0.5).abs() < 1e-12);
        assert!(s.decision_seconds_p50 > 0.0);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Telemetry::new().summary();
        assert_eq!(s.arrivals, 0);
        assert_eq!(s.queue_wait_p95, 0.0);
        assert_eq!(s.arrival_rate, 0.0);
        // No decisions yet: optimistic acceptance, like the snapshot.
        assert_eq!(s.rolling_acceptance, 1.0);
    }

    #[test]
    fn ewma_cold_start_seeds_the_first_sample_as_the_mean() {
        // Audit pin: the first sample must become the average verbatim —
        // an EWMA that blended it against an implicit 0 would decay from
        // zero and underestimate every early rate/level series.
        for alpha in [0.05, 0.2, 1.0] {
            let mut e = Ewma::new(alpha);
            assert_eq!(e.value(), None, "no sample yet");
            let first = e.update(7.5);
            assert_eq!(first.to_bits(), 7.5f64.to_bits(), "alpha {alpha}");
            assert_eq!(e.get().to_bits(), 7.5f64.to_bits());
        }
    }

    #[test]
    fn simultaneous_burst_arrivals_report_a_high_rate_not_zero() {
        // Regression: a gap EWMA driven to 0 by back-to-back arrivals
        // used to make `arrival_rate` fall back to 0.0 — a stacked burst
        // read as "no load", delaying any reactive consumer's
        // heavy-regime entry. The rate must be very high and finite.
        let mut t = Telemetry::new();
        for _ in 0..4 {
            t.record_arrival(2.0);
        }
        let rate = t.snapshot(2.0, 4, None, None).arrival_rate;
        assert!(rate >= 1e8, "burst rate {rate} still reads as calm");
        assert!(rate.is_finite(), "rate must stay JSON-serializable");
        // A single arrival still carries no rate information.
        let mut cold = Telemetry::new();
        cold.record_arrival(0.0);
        assert_eq!(cold.snapshot(0.0, 1, None, None).arrival_rate, 0.0);
    }

    #[test]
    fn snapshot_carries_the_queue_wait_percentile() {
        let mut t = Telemetry::new();
        assert_eq!(t.snapshot(0.0, 0, None, None).queue_wait_p95, 0.0);
        for w in [0.0, 1.0, 2.0, 3.0] {
            t.record_queue_wait(w);
        }
        let snap = t.snapshot(4.0, 0, None, None);
        assert!((snap.queue_wait_p95 - 2.85).abs() < 1e-12);
        // The snapshot percentile and the summary percentile agree on the
        // same ring (the summary also reports p50/p99).
        assert_eq!(
            snap.queue_wait_p95.to_bits(),
            t.summary().queue_wait_p95.to_bits()
        );
    }

    #[test]
    fn summary_roundtrips_through_serde_json() {
        let mut t = Telemetry::new();
        t.record_arrival(0.0);
        t.record_arrival(0.5);
        t.record_utilization(&[1, 0], &[4, 4]);
        t.record_decisions(2, 0);
        let s = t.summary();
        let text = serde_json::to_string(&s).unwrap();
        let back: TelemetrySummary = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn streaming_histograms_see_every_sample_not_just_the_ring() {
        let mut t = Telemetry::new();
        let n = Telemetry::SAMPLE_CAPACITY * 3;
        for i in 0..n {
            t.record_queue_wait(i as f64 * 0.01);
        }
        t.record_activation(0.5, 0.002);
        t.record_admission_slack(4.0);
        let s = t.summary();
        // The ring keeps only the last SAMPLE_CAPACITY samples; the
        // histogram counted all of them.
        assert_eq!(s.queue_wait_hist.count, n as u64);
        assert_eq!(s.decision_seconds_hist.count, 1);
        assert_eq!(s.admission_slack_hist.count, 1);
        assert!(s.queue_wait_hist.p95 > 0.0);
        assert!((s.admission_slack_hist.max - 4.0).abs() < 1e-12);
    }

    #[test]
    fn legacy_summary_without_histograms_still_parses() {
        // The exact shape written before the streaming histograms
        // existed — must read back with empty histogram summaries.
        let legacy = r#"{
            "arrivals": 3, "activations": 2, "queue_drops": 0,
            "arrival_rate": 0.5, "queue_depth": 1.0, "utilization": 0.25,
            "utilization_per_type": [0.25, 0.0],
            "rolling_acceptance": 1.0, "energy_per_job": 10.0,
            "activation_latency": 0.1,
            "queue_wait_p50": 0.2, "queue_wait_p95": 0.4,
            "queue_wait_p99": 0.5,
            "decision_seconds_p50": 0.001, "decision_seconds_p95": 0.002,
            "decision_seconds_p99": 0.003
        }"#;
        let back: TelemetrySummary = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.arrivals, 3);
        assert_eq!(back.queue_wait_hist, HistogramSummary::default());
        assert_eq!(back.admission_slack_hist, HistogramSummary::default());
    }
}
