//! Statistics used by the evaluation: geometric means (Table IV),
//! S-curves (Fig. 3) and box plots (Fig. 4).

use serde::{Deserialize, Serialize};

/// Geometric mean of strictly positive samples.
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if any sample is not strictly positive.
///
/// # Examples
///
/// ```
/// use amrm_metrics::geometric_mean;
///
/// let g = geometric_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive samples");
            v.ln()
        })
        .sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Linear-interpolated quantile `q ∈ [0, 1]` of an ascending-sorted slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or `sorted` is empty.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Linear-interpolated percentile `p ∈ [0, 100]` of an *unsorted* sample
/// slice; `None` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
///
/// # Examples
///
/// ```
/// use amrm_metrics::percentile;
///
/// let waits = [3.0, 1.0, 2.0, 4.0];
/// assert!((percentile(&waits, 50.0).unwrap() - 2.5).abs() < 1e-12);
/// assert!(percentile(&[], 95.0).is_none());
/// ```
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile must be in [0, 100], got {p}"
    );
    Some(quantile_sorted(&sorted_copy(values)?, p / 100.0))
}

/// Ascending-sorted copy of `values`; `None` for an empty slice.
fn sorted_copy(values: &[f64]) -> Option<Vec<f64>> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(sorted)
}

/// The p50/p95/p99 summary of a sample buffer — the shape the telemetry
/// subsystem reports for admission-decision latency and queue waits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Computes the summary from an unsorted sample slice; `None` for an
    /// empty slice.
    pub fn from_samples(values: &[f64]) -> Option<Self> {
        let sorted = sorted_copy(values)?;
        Some(Percentiles {
            p50: quantile_sorted(&sorted, 0.50),
            p95: quantile_sorted(&sorted, 0.95),
            p99: quantile_sorted(&sorted, 0.99),
        })
    }
}

/// Five-number summary plus mean, as drawn in the Fig. 4 box plots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxplotStats {
    /// Smallest sample.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean (the paper overlays averages on its box plots).
    pub mean: f64,
}

impl BoxplotStats {
    /// Computes the summary; `None` for an empty slice.
    pub fn from_samples(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(BoxplotStats {
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
            mean: mean(values).expect("non-empty"),
        })
    }
}

/// A sorted curve of per-test values — the S-curves of Fig. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SCurve {
    values: Vec<f64>,
}

impl SCurve {
    /// Builds the curve by sorting `values` ascending.
    pub fn new(mut values: Vec<f64>) -> Self {
        values.sort_by(f64::total_cmp);
        SCurve { values }
    }

    /// The sorted values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the curve has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// How many samples are ≤ `threshold` (+1e-9 tolerance) — e.g. the
    /// number of tests scheduled optimally when `threshold = 1.0`.
    pub fn count_at_or_below(&self, threshold: f64) -> usize {
        self.values
            .iter()
            .filter(|&&v| v <= threshold + 1e-9)
            .count()
    }

    /// Samples the curve at `n` evenly spaced positions (for plotting).
    pub fn sampled(&self, n: usize) -> Vec<f64> {
        assert!(n >= 2, "need at least two sample positions");
        if self.values.is_empty() {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let pos = i as f64 / (n - 1) as f64;
                quantile_sorted(&self.values, pos)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert!(geometric_mean(&[]).is_none());
        assert!((geometric_mean(&[2.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 8.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive samples")]
    fn geometric_mean_rejects_zero() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile_sorted(&v, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile_sorted(&v, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile_sorted(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn boxplot_on_known_sample() {
        let s = BoxplotStats::from_samples(&[4.0, 1.0, 3.0, 2.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!(BoxplotStats::from_samples(&[]).is_none());
    }

    #[test]
    fn percentile_interpolates_unsorted_input() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert!((percentile(&v, 0.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((percentile(&v, 50.0).unwrap() - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 100.0).unwrap() - 4.0).abs() < 1e-12);
        assert!(percentile(&[], 50.0).is_none());
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn out_of_range_percentile_panics() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn percentiles_summary_orders_its_fields() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::from_samples(&v).unwrap();
        assert!((p.p50 - 50.5).abs() < 1e-9);
        assert!(p.p50 < p.p95 && p.p95 < p.p99);
        assert!(Percentiles::from_samples(&[]).is_none());
    }

    #[test]
    fn scurve_sorts_and_counts() {
        let c = SCurve::new(vec![1.2, 1.0, 1.0, 2.0]);
        assert_eq!(c.values(), &[1.0, 1.0, 1.2, 2.0]);
        assert_eq!(c.count_at_or_below(1.0), 2);
        assert_eq!(c.count_at_or_below(1.5), 3);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn scurve_sampling_is_monotone() {
        let c = SCurve::new((0..100).map(|i| 1.0 + i as f64 * 0.01).collect());
        let s = c.sampled(10);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_scurve_behaves() {
        let c = SCurve::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.count_at_or_below(1.0), 0);
        assert!(c.sampled(5).is_empty());
    }
}
