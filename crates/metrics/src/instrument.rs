//! Kernel instrumentation: thread-local hot-path counters and an
//! optional counting global allocator.
//!
//! The event kernel, the runtime manager, and EX-MEM's memo table bump
//! these counters on their hot paths; the `repro profile` harness resets
//! them before a run and snapshots them after to report events/s and the
//! per-run operation mix. Counters are thread-local [`Cell`]s — a single
//! uncontended add per event, no atomics — so profile runs must read them
//! on the thread that ran the simulation.
//!
//! [`CountingAllocator`] is a [`GlobalAlloc`] wrapper over the system
//! allocator that tracks total/peak/live bytes in process-wide atomics.
//! It is always compiled (the type is zero-cost unless installed); a
//! binary opts in with `#[global_allocator]` — the repro binary gates its
//! installation behind the `count-alloc` cargo feature so the default
//! build keeps the stock allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

thread_local! {
    static COUNTERS: Cell<CounterSnapshot> = const { Cell::new(CounterSnapshot::zero()) };
}

/// A point-in-time copy of this thread's instrumentation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Events popped off the kernel heap (including stale ones).
    pub events: u64,
    /// Events pushed onto the kernel heap.
    pub heap_pushes: u64,
    /// Admission flushes (batches submitted to the runtime manager).
    pub flushes: u64,
    /// Scheduler activations (calls into `Scheduler::schedule`).
    pub schedule_calls: u64,
    /// EX-MEM memo-table hits (subproblems answered without search).
    pub memo_hits: u64,
    /// Maximum admission-queue depth observed.
    pub peak_queue_depth: u64,
}

impl CounterSnapshot {
    const fn zero() -> Self {
        CounterSnapshot {
            events: 0,
            heap_pushes: 0,
            flushes: 0,
            schedule_calls: 0,
            memo_hits: 0,
            peak_queue_depth: 0,
        }
    }

    /// Folds another snapshot into this one: rate counters add,
    /// `peak_queue_depth` takes the max (per-shard queues are disjoint, so
    /// the federation-wide peak is the deepest single queue observed).
    pub fn merge(&mut self, other: &CounterSnapshot) {
        self.events += other.events;
        self.heap_pushes += other.heap_pushes;
        self.flushes += other.flushes;
        self.schedule_calls += other.schedule_calls;
        self.memo_hits += other.memo_hits;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
    }
}

fn update(f: impl FnOnce(&mut CounterSnapshot)) {
    COUNTERS.with(|c| {
        let mut snap = c.get();
        f(&mut snap);
        c.set(snap);
    });
}

/// Zeroes this thread's counters. Call before a measured run.
pub fn reset() {
    COUNTERS.with(|c| c.set(CounterSnapshot::zero()));
}

/// Copies this thread's counters.
pub fn snapshot() -> CounterSnapshot {
    COUNTERS.with(Cell::get)
}

/// Drains this thread's counters: returns the current snapshot and resets
/// them to zero. Parallel workers call this at the end of their slice so
/// the orchestrator can [`merge`] the pieces into a federation-wide view
/// without double-counting across epochs on reused threads.
pub fn take() -> CounterSnapshot {
    COUNTERS.with(|c| c.replace(CounterSnapshot::zero()))
}

/// Folds a drained snapshot (from [`take`] on a worker thread) into this
/// thread's counters, so the orchestrating thread's `snapshot()` reports
/// the whole parallel run under the existing reset → run → snapshot
/// calling convention.
pub fn merge(other: &CounterSnapshot) {
    update(|c| c.merge(other));
}

/// Records one event popped off the kernel heap.
pub fn record_event() {
    update(|c| c.events += 1);
}

/// Records one event pushed onto the kernel heap.
pub fn record_heap_push() {
    update(|c| c.heap_pushes += 1);
}

/// Records one admission flush.
pub fn record_flush() {
    update(|c| c.flushes += 1);
}

/// Records one scheduler activation.
pub fn record_schedule_call() {
    update(|c| c.schedule_calls += 1);
}

/// Records one EX-MEM memo-table hit.
pub fn record_memo_hit() {
    update(|c| c.memo_hits += 1);
}

/// Folds an observed admission-queue depth into the peak.
pub fn record_queue_depth(depth: usize) {
    update(|c| c.peak_queue_depth = c.peak_queue_depth.max(depth as u64));
}

static ALLOC_TOTAL: AtomicU64 = AtomicU64::new(0);
static ALLOC_LIVE: AtomicU64 = AtomicU64::new(0);
static ALLOC_PEAK: AtomicU64 = AtomicU64::new(0);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper over the system allocator. Install with
/// `#[global_allocator] static A: CountingAllocator = CountingAllocator;`
/// in a binary or test crate, then read the process-wide tallies through
/// the associated functions. All statics stay zero when the allocator is
/// not installed, which is how consumers detect "no data".
pub struct CountingAllocator;

impl CountingAllocator {
    /// Total bytes ever allocated (monotonic).
    pub fn total_allocated_bytes() -> u64 {
        ALLOC_TOTAL.load(Ordering::Relaxed)
    }

    /// Bytes currently live (allocated minus freed).
    pub fn live_bytes() -> u64 {
        ALLOC_LIVE.load(Ordering::Relaxed)
    }

    /// High-water mark of live bytes.
    pub fn peak_bytes() -> u64 {
        ALLOC_PEAK.load(Ordering::Relaxed)
    }

    /// Number of allocation calls (alloc + realloc growths).
    pub fn allocation_calls() -> u64 {
        ALLOC_CALLS.load(Ordering::Relaxed)
    }

    /// True once any allocation has been observed, i.e. the allocator is
    /// actually installed as `#[global_allocator]`.
    pub fn installed() -> bool {
        ALLOC_TOTAL.load(Ordering::Relaxed) > 0
    }

    fn on_alloc(size: u64) {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_TOTAL.fetch_add(size, Ordering::Relaxed);
        let live = ALLOC_LIVE.fetch_add(size, Ordering::Relaxed) + size;
        ALLOC_PEAK.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(size: u64) {
        ALLOC_LIVE.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: delegates every operation to `System`; the bookkeeping uses
// only relaxed atomics and never touches the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            Self::on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            Self::on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            Self::on_dealloc(layout.size() as u64);
            Self::on_alloc(new_size as u64);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        record_event();
        record_event();
        record_heap_push();
        record_flush();
        record_schedule_call();
        record_memo_hit();
        record_queue_depth(3);
        record_queue_depth(1);
        let snap = snapshot();
        assert_eq!(snap.events, 2);
        assert_eq!(snap.heap_pushes, 1);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.schedule_calls, 1);
        assert_eq!(snap.memo_hits, 1);
        assert_eq!(snap.peak_queue_depth, 3);
        reset();
        assert_eq!(snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn counters_are_thread_local() {
        reset();
        record_event();
        let other = std::thread::spawn(|| {
            record_event();
            snapshot().events
        })
        .join()
        .unwrap();
        assert_eq!(other, 1);
        assert_eq!(snapshot().events, 1);
        reset();
    }

    #[test]
    fn take_drains_and_merge_folds_across_threads() {
        reset();
        record_event();
        record_queue_depth(2);
        // A worker thread drains its own counters; `take` leaves it zeroed.
        let (worker, after_take) = std::thread::spawn(|| {
            record_event();
            record_event();
            record_flush();
            record_queue_depth(7);
            (take(), snapshot())
        })
        .join()
        .unwrap();
        assert_eq!(after_take, CounterSnapshot::default());
        merge(&worker);
        let total = snapshot();
        assert_eq!(total.events, 3);
        assert_eq!(total.flushes, 1);
        assert_eq!(total.peak_queue_depth, 7);
        // Merging is additive on rates, max on the peak depth.
        let mut a = worker;
        a.merge(&CounterSnapshot {
            events: 1,
            heap_pushes: 4,
            flushes: 0,
            schedule_calls: 2,
            memo_hits: 5,
            peak_queue_depth: 3,
        });
        assert_eq!(a.events, 3);
        assert_eq!(a.heap_pushes, 4);
        assert_eq!(a.schedule_calls, 2);
        assert_eq!(a.memo_hits, 5);
        assert_eq!(a.peak_queue_depth, 7);
        reset();
    }

    #[test]
    fn allocator_bookkeeping_is_consistent() {
        // Drive the bookkeeping directly (the allocator is not installed
        // globally in unit tests): a grow-then-free cycle must leave live
        // bytes back where they started and the peak at the high-water.
        let live0 = CountingAllocator::live_bytes();
        CountingAllocator::on_alloc(1024);
        CountingAllocator::on_alloc(2048);
        assert!(CountingAllocator::peak_bytes() >= live0 + 3072);
        assert!(CountingAllocator::total_allocated_bytes() >= 3072);
        assert!(CountingAllocator::allocation_calls() >= 2);
        assert!(CountingAllocator::installed());
        CountingAllocator::on_dealloc(2048);
        CountingAllocator::on_dealloc(1024);
        assert_eq!(CountingAllocator::live_bytes(), live0);
    }
}
