//! Evaluation metrics and text reporting for the amrm workspace.
//!
//! Provides the statistics behind the paper's evaluation artifacts —
//! geometric means (Table IV), S-curves (Fig. 3), box plots (Fig. 4),
//! percentiles — a small aligned-text table renderer for the regeneration
//! harness, and the [`telemetry`] subsystem: O(1)-memory online time
//! series ([`Telemetry`], [`TelemetrySnapshot`], [`TelemetrySummary`])
//! that the `amrm-sim` event kernel feeds and adaptive admission policies
//! read — plus the [`instrument`] layer: thread-local hot-path counters
//! and an opt-in counting global allocator behind `repro profile` — plus
//! the observability layer: the deterministic structured event
//! [`journal`] ([`TraceSink`], JSONL and Chrome-trace exporters) and
//! O(1)-memory log-bucketed streaming histograms ([`LogHistogram`]).
//!
//! # Examples
//!
//! ```
//! use amrm_metrics::{geometric_mean, BoxplotStats, SCurve};
//!
//! let rel = [1.0, 1.05, 1.2];
//! assert!(geometric_mean(&rel).unwrap() < 1.1);
//! assert_eq!(SCurve::new(rel.to_vec()).count_at_or_below(1.0), 1);
//! assert!(BoxplotStats::from_samples(&rel).unwrap().median > 1.0);
//! ```

pub mod histogram;
pub mod instrument;
pub mod invariant;
pub mod journal;
mod stats;
mod table;
pub mod telemetry;

pub use crate::histogram::{HistogramSummary, LogHistogram};
pub use crate::instrument::{CounterSnapshot, CountingAllocator};
pub use crate::journal::{
    EventKind, Journal, JournalConfig, JournalEvent, RejectReason, TraceSink,
};
pub use crate::stats::{
    geometric_mean, mean, percentile, quantile_sorted, BoxplotStats, Percentiles, SCurve,
};
pub use crate::table::TextTable;
pub use crate::telemetry::{Ewma, RingBuffer, Telemetry, TelemetrySnapshot, TelemetrySummary};
