//! Pure checkers behind the debug-assertions runtime invariant layer.
//!
//! The static side of the determinism contract is `amrm-lint`
//! (`repro lint`); this module is the dynamic side: small, pure
//! predicates that the sim kernel and the schedulers wrap in
//! `debug_assert!`-gated checks, so every `cargo test` run exercises the
//! same conventions the lint names — at zero release-build cost. Each
//! checker returns `None` when the invariant holds and a diagnostic
//! message when it does not, so the call sites stay one-liners and the
//! predicates themselves are unit-testable without `should_panic`.

/// Checks the event-heap pop order: `prev` and `next` are consecutive
/// popped events as `(time, class discriminant)`.
///
/// Sim time must never run backwards across pops. At one instant,
/// events pop in `EventClass` tie-break order (`Completion` before
/// `Arrival` before `WindowExpiry` before `QueueDeadline`) — *unless* a
/// push happened between the two pops: handling a same-instant event may
/// legally arm a lower class at the same time (e.g. a flush re-arming a
/// completion), which then pops next. `pushed_since` reports whether
/// such a push intervened.
///
/// Returns `None` when the order is legal, or a diagnostic naming the
/// offending pair.
pub fn pop_order_violation(prev: (f64, u8), next: (f64, u8), pushed_since: bool) -> Option<String> {
    if next.0 < prev.0 {
        return Some(format!(
            "event heap popped backwards in time: t={} after t={}",
            next.0, prev.0
        ));
    }
    if next.0 == prev.0 && !pushed_since && next.1 < prev.1 {
        return Some(format!(
            "event heap broke the tie-break order at t={}: class {} popped after class {} \
             with no intervening push",
            next.0, next.1, prev.1
        ));
    }
    None
}

/// Checks that a budgeted search never overdraws: `work` is the nodes
/// actually expanded, `limit` the configured budget (`None` =
/// unbounded). The budget contract is *check before spend*, so `work`
/// may reach the limit but never pass it — a pass means some path
/// expanded a node without consulting the budget first.
///
/// Returns `None` when within budget.
pub fn budget_overdraw(work: u64, limit: Option<u64>) -> Option<String> {
    match limit {
        Some(limit) if work > limit => Some(format!(
            "search budget overdrawn: {work} work units spent against a limit of {limit}"
        )),
        _ => None,
    }
}

/// Checks a capacity bound after an eviction pass: `len` entries
/// retained against a cap of `cap` (`None` = uncapped).
///
/// Returns `None` when the bound holds.
pub fn cap_exceeded(len: usize, cap: Option<usize>) -> Option<String> {
    match cap {
        Some(cap) if len > cap => Some(format!(
            "capacity bound violated after eviction: {len} entries retained, cap {cap}"
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_order_accepts_forward_time_and_tiebreak() {
        assert!(pop_order_violation((1.0, 3), (2.0, 0), false).is_none());
        assert!(pop_order_violation((1.0, 0), (1.0, 1), false).is_none());
        assert!(pop_order_violation((1.0, 1), (1.0, 1), false).is_none());
    }

    #[test]
    fn pop_order_rejects_backward_time() {
        let msg = pop_order_violation((2.0, 0), (1.0, 0), true).expect("backward time flagged");
        assert!(msg.contains("backwards"));
    }

    #[test]
    fn pop_order_rejects_tiebreak_regression_without_push() {
        let msg = pop_order_violation((1.0, 2), (1.0, 0), false).expect("regression flagged");
        assert!(msg.contains("tie-break"));
    }

    #[test]
    fn pop_order_allows_tiebreak_regression_after_push() {
        // A same-instant handler armed a lower class — legal.
        assert!(pop_order_violation((1.0, 2), (1.0, 0), true).is_none());
    }

    #[test]
    fn budget_boundary_is_inclusive() {
        assert!(budget_overdraw(50, Some(50)).is_none());
        assert!(budget_overdraw(50, None).is_none());
        assert!(budget_overdraw(51, Some(50)).is_some());
    }

    #[test]
    fn cap_boundary_is_inclusive() {
        assert!(cap_exceeded(8, Some(8)).is_none());
        assert!(cap_exceeded(9, Some(8)).is_some());
        assert!(cap_exceeded(usize::MAX, None).is_none());
    }
}
