//! Minimal aligned text tables for the experiment reports.

/// A column-aligned text table.
///
/// # Examples
///
/// ```
/// use amrm_metrics::TextTable;
///
/// let mut t = TextTable::new(vec!["# Jobs", "Weak", "Tight"]);
/// t.add_row(vec!["1".into(), "1.0000".into(), "1.0000".into()]);
/// let s = t.to_string();
/// assert!(s.contains("# Jobs"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.add_row(vec!["123".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('a') && lines[0].contains("bbbb"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(lines[1].len(), lines[0].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rejected() {
        let mut t = TextTable::new(vec!["a"]);
        t.add_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn counts_rows() {
        let mut t = TextTable::new(vec!["x"]);
        assert_eq!(t.num_rows(), 0);
        t.add_row(vec!["1".into()]);
        assert_eq!(t.num_rows(), 1);
    }
}
