//! Source loading and normalization for the lint pass.
//!
//! The rules operate on *cleaned* lines: comments and string-literal
//! contents are blanked out (replaced by spaces, so byte offsets and
//! line counts survive) and the `#[cfg(test)]` module region of each
//! file is marked so rules can skip test code. This is a tidy-style
//! line/token scanner, not a parser — the cleaning exists precisely so
//! a pattern such as `Instant::now` inside a diagnostic string or a
//! doc comment never false-positives.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A workspace source file, pre-processed for rule checks.
pub struct SourceFile {
    /// Path relative to the scan root, with `/` separators.
    pub rel_path: String,
    /// Raw lines as committed (used for excerpts and marker comments).
    pub raw: Vec<String>,
    /// Lines with comments and string contents blanked out.
    pub code: Vec<String>,
    /// Per line: `true` when the line sits inside a `#[cfg(test)]`
    /// module (rules skip those lines).
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Loads and normalizes one file.
    pub fn load(root: &Path, path: &Path) -> io::Result<SourceFile> {
        let text = fs::read_to_string(path)?;
        let rel_path = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        Ok(SourceFile::from_source(rel_path, &text))
    }

    /// Builds a [`SourceFile`] from in-memory source (fixture tests use
    /// this directly).
    pub fn from_source(rel_path: String, text: &str) -> SourceFile {
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let code = clean_source(&raw);
        let in_test = mark_test_regions(&code);
        SourceFile {
            rel_path,
            raw,
            code,
            in_test,
        }
    }

    /// Whether the line (0-based) is ordinary library/binary code the
    /// rules should inspect.
    pub fn is_code_line(&self, idx: usize) -> bool {
        !self.in_test[idx]
    }

    /// Whether the file lives in a library crate (`crates/<name>/src/`
    /// outside the `amrm-bench` tool crate, or the root facade `src/`).
    /// Library-only rules (bare `unwrap`, printing) apply here.
    pub fn in_library_crate(&self) -> bool {
        let p = self.rel_path.as_str();
        if p.starts_with("src/") {
            return true;
        }
        if let Some(rest) = p.strip_prefix("crates/") {
            if let Some((krate, tail)) = rest.split_once('/') {
                return krate != "bench" && tail.starts_with("src/");
            }
        }
        false
    }
}

/// Blanks comments and string-literal contents, preserving line and
/// column structure. Handles line comments, (nested) block comments,
/// ordinary strings with escapes, raw strings (`r"…"`, `r#"…"#`, …),
/// and character literals (without confusing lifetimes for them).
fn clean_source(raw: &[String]) -> Vec<String> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mode {
        Code,
        /// Nested block comments: depth.
        Block(u32),
        /// Ordinary `"…"` string.
        Str,
        /// Raw string with this many `#`s.
        RawStr(u32),
    }

    let mut mode = Mode::Code;
    let mut out = Vec::with_capacity(raw.len());
    for line in raw {
        let bytes: Vec<char> = line.chars().collect();
        let mut cleaned = String::with_capacity(line.len());
        let mut i = 0;
        while i < bytes.len() {
            match mode {
                Mode::Block(depth) => {
                    if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        mode = if depth > 1 {
                            Mode::Block(depth - 1)
                        } else {
                            Mode::Code
                        };
                        cleaned.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(depth + 1);
                        cleaned.push_str("  ");
                        i += 2;
                    } else {
                        cleaned.push(' ');
                        i += 1;
                    }
                }
                Mode::Str => {
                    if bytes[i] == '\\' {
                        cleaned.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '"' {
                        mode = Mode::Code;
                        cleaned.push('"');
                        i += 1;
                    } else {
                        cleaned.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if bytes[i] == '"' {
                        let mut ok = true;
                        for k in 0..hashes as usize {
                            if bytes.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            mode = Mode::Code;
                            cleaned.push('"');
                            for _ in 0..hashes {
                                cleaned.push(' ');
                            }
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    cleaned.push(' ');
                    i += 1;
                }
                Mode::Code => {
                    let c = bytes[i];
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        // Line comment: drop the rest of the line.
                        break;
                    }
                    if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(1);
                        cleaned.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        mode = Mode::Str;
                        cleaned.push('"');
                        i += 1;
                        continue;
                    }
                    if c == 'r' && !prev_is_ident(&bytes, i) {
                        // Possible raw string: r"…" or r#"…"# etc.
                        let mut j = i + 1;
                        let mut hashes = 0u32;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            mode = Mode::RawStr(hashes);
                            for _ in i..=j {
                                cleaned.push(' ');
                            }
                            cleaned.pop();
                            cleaned.push('"');
                            i = j + 1;
                            continue;
                        }
                    }
                    if c == '\'' {
                        // Char literal vs lifetime: a literal closes
                        // within a couple of characters ('x', '\n').
                        if bytes.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip to closing quote.
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                            for _ in i..=j.min(bytes.len() - 1) {
                                cleaned.push(' ');
                            }
                            i = j + 1;
                            continue;
                        }
                        if bytes.get(i + 2) == Some(&'\'') {
                            cleaned.push_str("   ");
                            i += 3;
                            continue;
                        }
                        // Lifetime: keep the tick, move on.
                        cleaned.push('\'');
                        i += 1;
                        continue;
                    }
                    cleaned.push(c);
                    i += 1;
                }
            }
        }
        // A string literal cannot span lines without a trailing escape;
        // treat an open ordinary string as closed at end of line (the
        // scanner is line-oriented and multi-line strings are blanked
        // conservatively).
        out.push(cleaned);
    }
    out
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// Marks the lines belonging to `#[cfg(test)]` items (typically the
/// trailing `mod tests` block) by brace-matching from the attribute.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].contains("#[cfg(test)]") {
            // Find the opening brace of the annotated item and match it.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < code.len() {
                in_test[j] = true;
                for c in code[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

/// Recursively collects the `.rs` files under `root`, skipping build
/// output, vendored stubs, test/bench directories and the lint fixtures
/// themselves. Sorted by relative path so reports are deterministic.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    const SKIP_DIRS: &[&str] = &["target", "vendor", "tests", "benches", "fixtures", ".git"];
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src =
            "let x = \"Instant::now\"; // Instant::now\nlet y = 1; /* SystemTime */ let z = 2;\n";
        let f = SourceFile::from_source("a.rs".into(), src);
        assert!(!f.code[0].contains("Instant"));
        assert!(!f.code[1].contains("SystemTime"));
        assert!(f.code[1].contains("let z = 2;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let j = r#\"{\"k\": \"Instant::now\"}\"#;\nlet open = 1;\n";
        let f = SourceFile::from_source("a.rs".into(), src);
        assert!(!f.code[0].contains("Instant"));
        // The raw string must not leave the scanner stuck in string mode.
        assert!(f.code[1].contains("let open = 1;"));
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let src = "let q = '\"';\nlet t = \"x\";\nlet after = 3;\n";
        let f = SourceFile::from_source("a.rs".into(), src);
        assert!(f.code[2].contains("let after = 3;"));
    }

    #[test]
    fn lifetimes_survive_cleaning() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\n";
        let f = SourceFile::from_source("a.rs".into(), src);
        assert!(f.code[0].contains("fn f<'a>"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let f = SourceFile::from_source("a.rs".into(), src);
        assert!(f.is_code_line(0));
        assert!(!f.is_code_line(3));
        assert!(f.is_code_line(5));
    }

    #[test]
    fn library_crate_classification() {
        let lib = SourceFile::from_source("crates/core/src/mdf.rs".into(), "");
        let tool = SourceFile::from_source("crates/bench/src/runner.rs".into(), "");
        let facade = SourceFile::from_source("src/lib.rs".into(), "");
        assert!(lib.in_library_crate());
        assert!(!tool.in_library_crate());
        assert!(facade.in_library_crate());
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let a = 1;\n";
        let f = SourceFile::from_source("a.rs".into(), src);
        assert!(f.code[0].contains("let a = 1;"));
        assert!(!f.code[0].contains("outer"));
    }
}
