//! Lint results: violations, allowlist suppressions and the per-rule
//! summary, serializable through the vendored serde stub so `repro lint
//! --json` artifacts round-trip like every other report in the
//! workspace.

use serde::{Deserialize, Serialize};

use crate::rules;

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Stable error code, e.g. `AMRM-L001`.
    pub code: String,
    /// Path relative to the scan root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// One-line fix hint.
    pub hint: String,
}

/// A violation suppressed by a justified `lint.allow` entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Suppression {
    /// The suppressed rule code.
    pub code: String,
    /// Path relative to the scan root.
    pub file: String,
    /// 1-based line number of the suppressed violation.
    pub line: usize,
    /// The allowlist entry's reason string.
    pub reason: String,
}

/// Per-rule tallies — every registered rule appears, zeros included, so
/// downstream greps can assert a rule ran rather than silently no-op.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleCount {
    /// Stable error code.
    pub code: String,
    /// Short rule name.
    pub name: String,
    /// Violations after allowlisting.
    pub violations: usize,
    /// Violations suppressed by the allowlist.
    pub allowed: usize,
}

/// The complete result of one lint pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// Scan root (for display only; paths in the report are relative).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Per-rule tallies in rule-code order, zeros included.
    pub rules: Vec<RuleCount>,
    /// Violations after allowlisting, sorted by (file, line, code).
    pub violations: Vec<Violation>,
    /// Allowlist suppressions, sorted by (file, line, code).
    pub allowed: Vec<Suppression>,
}

impl LintReport {
    /// Whether the pass found no violations (stale allowlist entries
    /// included — they surface as `AMRM-L008` violations).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Builds the per-rule tally rows from the flat lists, zeros
    /// included for every registered rule.
    pub fn tally(violations: &[Violation], allowed: &[Suppression]) -> Vec<RuleCount> {
        rules::all()
            .iter()
            .map(|rule| RuleCount {
                code: rule.code.to_string(),
                name: rule.name.to_string(),
                violations: violations.iter().filter(|v| v.code == rule.code).count(),
                allowed: allowed.iter().filter(|s| s.code == rule.code).count(),
            })
            .collect()
    }
}

/// Renders the human-readable report: the rule table, then each
/// violation with its fix hint, then the suppression tally.
pub fn render(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "amrm-lint: {} files scanned under {}\n\n",
        report.files_scanned, report.root
    ));
    out.push_str("code       rule                  violations  allowed\n");
    out.push_str("---------  --------------------  ----------  -------\n");
    for r in &report.rules {
        out.push_str(&format!(
            "{:<9}  {:<20}  {:>10}  {:>7}\n",
            r.code, r.name, r.violations, r.allowed
        ));
    }
    if !report.violations.is_empty() {
        out.push('\n');
        for v in &report.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    hint: {}\n",
                v.file, v.line, v.code, v.excerpt, v.hint
            ));
        }
    }
    out.push_str(&format!(
        "\n{} violation(s), {} allowlisted exception(s)\n",
        report.violations.len(),
        report.allowed.len()
    ));
    out
}

/// Serializes the report as pretty JSON (vendored stub).
///
/// # Errors
///
/// Propagates serializer errors (none occur for these plain types).
pub fn to_json(report: &LintReport) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(report)
}

/// Writes the JSON artifact to `path`.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_json(path: impl AsRef<std::path::Path>, report: &LintReport) -> std::io::Result<()> {
    let text =
        to_json(report).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, text + "\n")
}
