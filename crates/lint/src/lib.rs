//! `amrm-lint` — a tidy-style determinism lint for the AMRM workspace.
//!
//! Every gate in this reproduction rests on bit-identical determinism:
//! same-seed equality across thread counts (`repro tune`), shard pool
//! widths (the federation) and journal on/off (the tracing layer). Those
//! invariants are enforced dynamically by proptests — which can only
//! catch a nondeterminism source after it ships. This crate checks the
//! conventions *statically*, rust-tidy style: a line/token scan over the
//! workspace with ~10 stable-coded rules (see [`rules`]), a committed
//! [`lint.allow`](allow) file for justified exceptions (each entry needs
//! a reason and is itself checked for staleness), and a JSON report that
//! embeds in CI.
//!
//! Run it as `repro lint [--json FILE]`; the process exits non-zero on
//! any violation. The debug-assertions runtime layer
//! (`amrm_metrics::invariant`) checks the same invariants dynamically —
//! the static pass and the dynamic checks name the same conventions.

use std::path::Path;

pub mod allow;
pub mod report;
pub mod rules;
pub mod scan;

pub use report::{LintReport, RuleCount, Suppression, Violation};

/// Runs the full lint pass over the workspace rooted at `root`:
/// collects sources, applies every registered rule, folds in the
/// `lint.allow` exceptions and reports stale entries as `AMRM-L008`.
///
/// # Errors
///
/// Returns a message for I/O failures or a malformed `lint.allow`.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let paths =
        scan::collect_sources(root).map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        files.push(
            scan::SourceFile::load(root, path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?,
        );
    }
    let entries = allow::load(root)?;
    Ok(lint_sources(root, &files, &entries))
}

/// The pure core of [`run_lint`]: lints pre-loaded sources against a
/// parsed allowlist (fixture tests drive this directly).
pub fn lint_sources(
    root: &Path,
    files: &[scan::SourceFile],
    entries: &[allow::AllowEntry],
) -> LintReport {
    let mut raw = Vec::new();
    for file in files {
        for rule in rules::all() {
            (rule.check)(rule, file, &mut raw);
        }
    }
    let (mut violations, mut allowed) = allow::apply(entries, raw, |v| {
        files
            .iter()
            .find(|f| f.rel_path == v.file)
            .and_then(|f| f.raw.get(v.line - 1))
            .cloned()
            .unwrap_or_default()
    });
    violations.sort_by(|a, b| (&a.file, a.line, &a.code).cmp(&(&b.file, b.line, &b.code)));
    allowed.sort_by(|a, b| (&a.file, a.line, &a.code).cmp(&(&b.file, b.line, &b.code)));
    let rules = LintReport::tally(&violations, &allowed);
    LintReport {
        root: root.display().to_string(),
        files_scanned: files.len(),
        rules,
        violations,
        allowed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_codes_are_stable_and_unique() {
        let codes: Vec<&str> = rules::all().iter().map(|r| r.code).collect();
        assert_eq!(
            codes,
            vec![
                "AMRM-L001",
                "AMRM-L002",
                "AMRM-L003",
                "AMRM-L004",
                "AMRM-L005",
                "AMRM-L006",
                "AMRM-L007",
                "AMRM-L008",
                "AMRM-L009",
                "AMRM-L010",
            ]
        );
    }

    #[test]
    fn tally_is_zeros_included() {
        let report = lint_sources(Path::new("."), &[], &[]);
        assert_eq!(report.rules.len(), rules::all().len());
        assert!(report.rules.iter().all(|r| r.violations == 0));
        assert!(report.is_clean());
    }
}
