//! The committed `lint.allow` exception file.
//!
//! Each justified exception is one line:
//!
//! ```text
//! AMRM-L001 crates/core/src/manager.rs contains="Instant::now" reason="wall-clock decision timing is summary-only"
//! ```
//!
//! * `code` and `path` are mandatory and must match the violation
//!   exactly;
//! * `contains="…"` optionally narrows the entry to flagged lines
//!   containing the substring (recommended — it keeps the entry
//!   anchored to the audited code);
//! * `reason="…"` is mandatory: an exception without a justification is
//!   a parse error, not a suppression.
//!
//! Entries are themselves linted: one that no longer suppresses any
//! live violation is *stale* and reported as `AMRM-L008`, so the
//! allowlist can only shrink alongside the code it excuses.

use std::path::Path;

use crate::report::{Suppression, Violation};
use crate::rules;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// 1-based line in `lint.allow` (for staleness diagnostics).
    pub line: usize,
    /// The rule code this entry suppresses.
    pub code: String,
    /// Relative path of the file the entry covers.
    pub path: String,
    /// Optional substring the flagged raw line must contain.
    pub contains: String,
    /// Mandatory justification.
    pub reason: String,
}

impl AllowEntry {
    /// Whether this entry suppresses the given violation (matched
    /// against the raw source line).
    pub fn matches(&self, v: &Violation, raw_line: &str) -> bool {
        self.code == v.code
            && self.path == v.file
            && (self.contains.is_empty() || raw_line.contains(&self.contains))
    }
}

/// The name of the exception file at the scan root.
pub const ALLOW_FILE: &str = "lint.allow";

/// Parses `lint.allow` content.
///
/// # Errors
///
/// Returns a message naming the offending line for malformed entries:
/// unknown rule codes, missing fields or a missing `reason`.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (code, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("lint.allow:{}: entry needs `CODE PATH …`", idx + 1))?;
        if !rules::all().iter().any(|r| r.code == code) {
            return Err(format!(
                "lint.allow:{}: unknown rule code `{code}`",
                idx + 1
            ));
        }
        let rest = rest.trim_start();
        let (path, rest) = rest
            .split_once(char::is_whitespace)
            .map(|(p, r)| (p, r.trim_start()))
            .unwrap_or((rest, ""));
        if path.is_empty() {
            return Err(format!("lint.allow:{}: entry needs a file path", idx + 1));
        }
        let contains = quoted_field(rest, "contains").unwrap_or_default();
        let Some(reason) = quoted_field(rest, "reason") else {
            return Err(format!(
                "lint.allow:{}: entry needs a reason=\"…\" justification",
                idx + 1
            ));
        };
        if reason.trim().is_empty() {
            return Err(format!("lint.allow:{}: reason must not be empty", idx + 1));
        }
        entries.push(AllowEntry {
            line: idx + 1,
            code: code.to_string(),
            path: path.to_string(),
            contains,
            reason,
        });
    }
    Ok(entries)
}

/// Extracts `key="value"` from an entry tail.
fn quoted_field(rest: &str, key: &str) -> Option<String> {
    let marker = format!("{key}=\"");
    let start = rest.find(&marker)? + marker.len();
    let end = rest[start..].find('"')?;
    Some(rest[start..start + end].to_string())
}

/// Loads the allowlist next to the scan root; a missing file is an
/// empty allowlist.
///
/// # Errors
///
/// Propagates parse errors ([`parse`]) and I/O errors other than
/// `NotFound`.
pub fn load(root: &Path) -> Result<Vec<AllowEntry>, String> {
    let path = root.join(ALLOW_FILE);
    match std::fs::read_to_string(&path) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Splits raw violations into (surviving, suppressed) under the
/// allowlist and appends an `AMRM-L008` violation for every stale
/// entry. `raw_line_of` resolves a violation to its raw source line so
/// `contains=` anchors can be checked.
pub fn apply(
    entries: &[AllowEntry],
    raw: Vec<Violation>,
    raw_line_of: impl Fn(&Violation) -> String,
) -> (Vec<Violation>, Vec<Suppression>) {
    let mut used = vec![0usize; entries.len()];
    let mut violations = Vec::new();
    let mut allowed = Vec::new();
    for v in raw {
        let line = raw_line_of(&v);
        match entries.iter().position(|e| e.matches(&v, &line)) {
            Some(i) => {
                used[i] += 1;
                allowed.push(Suppression {
                    code: v.code,
                    file: v.file,
                    line: v.line,
                    reason: entries[i].reason.clone(),
                });
            }
            None => violations.push(v),
        }
    }
    let stale_rule = rules::all()
        .iter()
        .find(|r| r.code == rules::STALE_ALLOW_CODE)
        .expect("L008 is registered");
    for (entry, &count) in entries.iter().zip(&used) {
        if count == 0 {
            violations.push(Violation {
                code: rules::STALE_ALLOW_CODE.to_string(),
                file: ALLOW_FILE.to_string(),
                line: entry.line,
                excerpt: format!(
                    "{} {} contains=\"{}\"",
                    entry.code, entry.path, entry.contains
                ),
                hint: stale_rule.hint.to_string(),
            });
        }
    }
    (violations, allowed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_entries() {
        let text = "# comment\n\nAMRM-L001 crates/core/src/manager.rs contains=\"Instant::now\" reason=\"summary-only\"\n";
        let entries = parse(text).expect("valid allowlist parses");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].code, "AMRM-L001");
        assert_eq!(entries[0].contains, "Instant::now");
        assert_eq!(entries[0].reason, "summary-only");
        assert_eq!(entries[0].line, 3);
    }

    #[test]
    fn reason_is_mandatory() {
        let err = parse("AMRM-L001 a.rs contains=\"x\"\n").expect_err("missing reason rejected");
        assert!(err.contains("reason"));
    }

    #[test]
    fn unknown_codes_are_rejected() {
        let err = parse("AMRM-L099 a.rs reason=\"x\"\n").expect_err("unknown code rejected");
        assert!(err.contains("AMRM-L099"));
    }

    #[test]
    fn stale_entries_become_l008() {
        let entries = parse(
            "AMRM-L001 a.rs contains=\"gone\" reason=\"was audited\"\n\
             AMRM-L001 a.rs contains=\"Instant\" reason=\"still live\"\n",
        )
        .expect("valid allowlist parses");
        let raw = vec![Violation {
            code: "AMRM-L001".into(),
            file: "a.rs".into(),
            line: 4,
            excerpt: "let t = Instant::now();".into(),
            hint: String::new(),
        }];
        let (violations, allowed) = apply(&entries, raw, |_| "let t = Instant::now();".into());
        assert_eq!(allowed.len(), 1);
        assert_eq!(allowed[0].reason, "still live");
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].code, "AMRM-L008");
        assert_eq!(violations[0].line, 1);
    }
}
