//! The determinism rule set.
//!
//! Every rule has a stable code (`AMRM-L001` …), a one-line fix hint
//! and a line/token check over [`SourceFile`]s. The rules encode the
//! workspace's determinism conventions — same-seed bit-identity across
//! thread counts, pool widths and journal on/off rests on them:
//!
//! | code | convention |
//! |------|------------|
//! | L001 | wall-clock reads never feed sim-time state |
//! | L002 | `HashMap`/`HashSet` iteration order never reaches output |
//! | L003 | `derive(Default)` must not diverge from `new()` |
//! | L004 | fan-out closures accumulate per-cell, merge serially |
//! | L005 | no bare `unwrap()` in library crates |
//! | L006 | RNGs are seeded, never entropy-constructed |
//! | L007 | tie-break enums carry `#[repr(u8)]` |
//! | L008 | allowlist entries must still match a live line |
//! | L009 | library crates never print |
//! | L010 | float ordering uses `total_cmp`, never `partial_cmp` |
//!
//! Each static rule names the same invariant the debug-assertions
//! runtime layer checks dynamically (see `amrm_metrics::invariant`).

use crate::report::Violation;
use crate::scan::SourceFile;

/// A registered lint rule.
pub struct Rule {
    /// Stable error code (`AMRM-L00x`).
    pub code: &'static str,
    /// Short kebab-style name for the report table.
    pub name: &'static str,
    /// One-line fix hint attached to every violation.
    pub hint: &'static str,
    /// The line/token check; pushes violations for one file.
    pub check: fn(&Rule, &SourceFile, &mut Vec<Violation>),
}

impl Rule {
    fn violation(&self, file: &SourceFile, idx: usize) -> Violation {
        Violation {
            code: self.code.to_string(),
            file: file.rel_path.clone(),
            line: idx + 1,
            excerpt: file.raw[idx].trim().to_string(),
            hint: self.hint.to_string(),
        }
    }
}

/// The code of the allowlist-staleness rule, reported by the allowlist
/// layer rather than a per-file check.
pub const STALE_ALLOW_CODE: &str = "AMRM-L008";

/// The full rule registry, in code order. `AMRM-L008` has no per-file
/// check — stale allowlist entries are synthesized by the driver — but
/// it is registered here so the report tallies it zeros-included.
pub fn all() -> &'static [Rule] {
    &RULES
}

static RULES: [Rule; 10] = [
    Rule {
        code: "AMRM-L001",
        name: "wall-clock-read",
        hint: "wall-clock time must never feed sim-time state; keep it in \
               summary-only paths and allowlist the site with a reason",
        check: check_wall_clock,
    },
    Rule {
        code: "AMRM-L002",
        name: "hash-iteration",
        hint: "HashMap/HashSet iteration order is randomized and leaks into \
               output; sort after collect, use BTreeMap, or allowlist an \
               order-independent use with a reason",
        check: check_hash_iteration,
    },
    Rule {
        code: "AMRM-L003",
        name: "derive-default-drift",
        hint: "derive(Default) silently diverges when new() sets non-zero \
               fields; write an explicit `impl Default` delegating to new()",
        check: check_derive_default,
    },
    Rule {
        code: "AMRM-L004",
        name: "fanout-accumulation",
        hint: "accumulate inside the cell's return value and merge serially \
               after for_each_cell; mark an audited serial merge with \
               `// lint:serial-merge`",
        check: check_fanout_accumulation,
    },
    Rule {
        code: "AMRM-L005",
        name: "bare-unwrap",
        hint: "use .expect(\"invariant message\") or propagate the error — a \
               bare unwrap() hides which invariant failed",
        check: check_bare_unwrap,
    },
    Rule {
        code: "AMRM-L006",
        name: "unseeded-rng",
        hint: "seed RNGs explicitly (StdRng::seed_from_u64) — entropy-seeded \
               RNGs break same-seed reproducibility",
        check: check_unseeded_rng,
    },
    Rule {
        code: "AMRM-L007",
        name: "tiebreak-repr",
        hint: "an Ord-derived enum with explicit discriminants is a tie-break \
               encoding; add #[repr(u8)] so the discriminants are the single \
               stable order",
        check: check_tiebreak_repr,
    },
    Rule {
        code: STALE_ALLOW_CODE,
        name: "stale-allowlist",
        hint: "the allowlist entry no longer matches any flagged line; remove \
               it or update its contains= pattern",
        check: check_nothing,
    },
    Rule {
        code: "AMRM-L009",
        name: "library-print",
        hint: "library crates stay silent — return data and let amrm-bench \
               render it",
        check: check_library_print,
    },
    Rule {
        code: "AMRM-L010",
        name: "float-partial-cmp",
        hint: "use f64::total_cmp — partial_cmp is None on NaN and unwrapping \
               it panics (or sorts unstably) at the worst time",
        check: check_float_partial_cmp,
    },
];

/// L008 is synthesized by the allowlist layer; nothing to do per file.
fn check_nothing(_rule: &Rule, _file: &SourceFile, _out: &mut Vec<Violation>) {}

// ---------------------------------------------------------------------
// token helpers (std-only; no regex crate in this image)

/// Whether `needle` occurs in `line` with non-identifier characters (or
/// the line edge) on both sides.
fn word_in(line: &str, needle: &str) -> bool {
    find_word(line, needle).is_some()
}

/// Finds the byte offset of a whole-word occurrence of `needle`.
fn find_word(line: &str, needle: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return Some(start);
        }
        from = end;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Reads the identifier ending at byte offset `end` (exclusive),
/// walking backwards over `[A-Za-z0-9_]`.
fn ident_ending_at(line: &str, end: usize) -> Option<&str> {
    let bytes = line.as_bytes();
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    if start == end {
        None
    } else {
        Some(&line[start..end])
    }
}

// ---------------------------------------------------------------------
// AMRM-L001 — wall-clock reads

fn check_wall_clock(rule: &Rule, file: &SourceFile, out: &mut Vec<Violation>) {
    const PATTERNS: &[&str] = &["Instant::now", "SystemTime::now", "SystemTime::UNIX_EPOCH"];
    for (i, line) in file.code.iter().enumerate() {
        if !file.is_code_line(i) {
            continue;
        }
        if PATTERNS.iter().any(|p| line.contains(p)) {
            out.push(rule.violation(file, i));
        }
    }
}

// ---------------------------------------------------------------------
// AMRM-L002 — HashMap/HashSet iteration

/// Iteration methods whose visit order is the map's randomized hash
/// order. `retain` mutates in that order too (its predicate must be
/// order-independent to be sound).
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

fn check_hash_iteration(rule: &Rule, file: &SourceFile, out: &mut Vec<Violation>) {
    // Pass 1: names bound or typed as HashMap/HashSet in this file
    // (locals, fields and parameters — a per-file heuristic).
    let mut names: Vec<String> = Vec::new();
    for line in &file.code {
        collect_hash_bindings(line, &mut names);
    }
    if names.is_empty() {
        return;
    }
    names.sort();
    names.dedup();

    // Pass 2: iteration over one of those names.
    for (i, line) in file.code.iter().enumerate() {
        if !file.is_code_line(i) {
            continue;
        }
        if names
            .iter()
            .any(|n| calls_iter_method(line, n) || for_loop_over(line, n))
        {
            out.push(rule.violation(file, i));
        }
    }
}

/// Records identifiers declared with a HashMap/HashSet type or
/// constructor on this line.
fn collect_hash_bindings(line: &str, names: &mut Vec<String>) {
    for marker in ["HashMap<", "HashSet<", "HashMap::", "HashSet::"] {
        let mut from = 0;
        while let Some(pos) = line[from..].find(marker) {
            let at = from + pos;
            from = at + marker.len();
            let before = line[..at].trim_end();
            // `name: HashMap<…>` (field, param, let-with-annotation),
            // possibly through `&`/`&mut`.
            let before_ty = before
                .trim_end_matches('&')
                .trim_end()
                .trim_end_matches("mut")
                .trim_end();
            if let Some(stripped) = before_ty.strip_suffix(':') {
                let stripped = stripped.trim_end();
                if let Some(name) = ident_ending_at(stripped, stripped.len()) {
                    names.push(name.to_string());
                    continue;
                }
            }
            // `let [mut] name = HashMap::new()` / `…with_capacity(…)`.
            if let Some(eq) = before.rfind('=') {
                let lhs = before[..eq].trim_end();
                if let Some(name) = ident_ending_at(lhs, lhs.len()) {
                    names.push(name.to_string());
                }
            }
        }
    }
}

/// Whether the line calls `<name>.<iter-method>(` (directly or through
/// a field path ending in `name`).
fn calls_iter_method(line: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = find_word(&line[from..], name) {
        let start = from + pos;
        let after = &line[start + name.len()..];
        from = start + name.len();
        let after = after.trim_start();
        let Some(rest) = after.strip_prefix('.') else {
            continue;
        };
        let rest = rest.trim_start();
        for m in ITER_METHODS {
            if let Some(tail) = rest.strip_prefix(m) {
                if tail.trim_start().starts_with('(') {
                    return true;
                }
            }
        }
    }
    false
}

/// Whether the line is a `for … in` loop over `name` (by reference or
/// by value).
fn for_loop_over(line: &str, name: &str) -> bool {
    let Some(for_pos) = find_word(line, "for") else {
        return false;
    };
    let Some(in_rel) = find_word(&line[for_pos..], "in") else {
        return false;
    };
    let operand = line[for_pos + in_rel + 2..].trim();
    let operand = operand.trim_end_matches('{').trim_end();
    let operand = operand
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start();
    // Match `name` or a path ending in `.name`.
    operand == name || operand.ends_with(&format!(".{name}"))
}

// ---------------------------------------------------------------------
// AMRM-L003 — derive(Default) diverging from new()

fn check_derive_default(rule: &Rule, file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, line) in file.code.iter().enumerate() {
        if !file.is_code_line(i) {
            continue;
        }
        if !(line.contains("derive(") && word_in(line, "Default")) {
            continue;
        }
        // Find the annotated item: skip further attributes.
        let mut j = i + 1;
        while j < file.code.len() {
            let s = file.code[j].trim_start();
            if s.starts_with("#[") || s.is_empty() {
                j += 1;
            } else {
                break;
            }
        }
        let Some(item) = file.code.get(j) else {
            continue;
        };
        let Some(name) = struct_name(item) else {
            continue; // enums and others are out of scope
        };
        // A unit struct has no fields the derive could zero out.
        if item.trim_end().ends_with(';') && !item.contains('(') {
            continue;
        }
        if let Some(body) = fn_new_body(file, &name) {
            if !body.contains("default()") {
                out.push(rule.violation(file, i));
            }
        }
    }
}

/// Extracts `Name` from a `struct Name …` item line.
fn struct_name(line: &str) -> Option<String> {
    let pos = find_word(line, "struct")?;
    let rest = line[pos + "struct".len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(rest[..end].to_string())
    }
}

/// Concatenated body of `fn new` inside the first `impl <Name>` block
/// in the same file, if any.
fn fn_new_body(file: &SourceFile, name: &str) -> Option<String> {
    let impl_start = file.code.iter().position(|l| {
        let Some(pos) = find_word(l, "impl") else {
            return false;
        };
        // `impl Name` but not `impl Trait for Other`.
        let rest = l[pos + 4..].trim_start();
        rest.starts_with(name)
            && !rest.contains(" for ")
            && rest[name.len()..]
                .chars()
                .next()
                .is_none_or(|c| !(c.is_alphanumeric() || c == '_'))
    })?;
    // Brace-match the impl block.
    let impl_end = match_braces(&file.code, impl_start)?;
    let new_line = (impl_start..=impl_end).find(|&k| {
        find_word(&file.code[k], "fn")
            .is_some_and(|p| file.code[k][p + 2..].trim_start().starts_with("new"))
    })?;
    // Only a no-argument `new()` is comparable to `Default::default()`;
    // a parameterized constructor has no canonical default to drift
    // from.
    if new_has_params(&file.code, new_line) {
        return None;
    }
    let new_end = match_braces(&file.code, new_line)?;
    Some(file.code[new_line..=new_end].join("\n"))
}

/// Whether the `fn new` starting on `new_line` declares parameters.
fn new_has_params(code: &[String], new_line: usize) -> bool {
    let window = code[new_line..code.len().min(new_line + 5)].join("\n");
    let Some(p) = find_word(&window, "new") else {
        return false;
    };
    let Some(open_rel) = window[p..].find('(') else {
        return false;
    };
    let open = p + open_rel;
    let mut depth = 0usize;
    for (off, c) in window[open..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return !window[open + 1..open + off].trim().is_empty();
                }
            }
            _ => {}
        }
    }
    false
}

/// Index of the line closing the brace block opened at (or after)
/// `start`.
fn match_braces(code: &[String], start: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut opened = false;
    for (k, line) in code.iter().enumerate().skip(start) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return Some(k);
        }
    }
    None
}

// ---------------------------------------------------------------------
// AMRM-L004 — accumulation inside for_each_cell closures

/// The marker comment acknowledging an audited serial merge near a
/// fan-out call.
pub const SERIAL_MERGE_MARKER: &str = "lint:serial-merge";

fn check_fanout_accumulation(rule: &Rule, file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, line) in file.code.iter().enumerate() {
        if !file.is_code_line(i) || !line.contains("for_each_cell(") {
            continue;
        }
        let Some(end) = match_parens(&file.code, i) else {
            continue;
        };
        let span_has_accum = (i..=end).any(|k| {
            let l = &file.code[k];
            l.contains("+=") && !l.trim_start().starts_with('+')
        });
        if !span_has_accum {
            continue;
        }
        // The marker lives in a comment, so look at the *raw* lines: up
        // to three lines above the call or anywhere inside the span.
        let lo = i.saturating_sub(3);
        let marked = (lo..=end).any(|k| file.raw[k].contains(SERIAL_MERGE_MARKER));
        if !marked {
            out.push(rule.violation(file, i));
        }
    }
}

/// Index of the line closing the parenthesis opened on `start` (the
/// whole `for_each_cell(…)` call, closure included).
fn match_parens(code: &[String], start: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut opened = false;
    for (k, line) in code.iter().enumerate().skip(start) {
        for c in line.chars() {
            match c {
                '(' => {
                    depth += 1;
                    opened = true;
                }
                ')' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return Some(k);
        }
    }
    None
}

// ---------------------------------------------------------------------
// AMRM-L005 — bare unwrap in library crates

fn check_bare_unwrap(rule: &Rule, file: &SourceFile, out: &mut Vec<Violation>) {
    if !file.in_library_crate() {
        return;
    }
    for (i, line) in file.code.iter().enumerate() {
        if file.is_code_line(i) && line.contains(".unwrap()") {
            out.push(rule.violation(file, i));
        }
    }
}

// ---------------------------------------------------------------------
// AMRM-L006 — entropy-seeded RNG construction

fn check_unseeded_rng(rule: &Rule, file: &SourceFile, out: &mut Vec<Violation>) {
    const PATTERNS: &[&str] = &[
        "thread_rng",
        "from_entropy",
        "from_os_rng",
        "rand::random",
        "OsRng",
    ];
    for (i, line) in file.code.iter().enumerate() {
        if !file.is_code_line(i) {
            continue;
        }
        if PATTERNS.iter().any(|p| word_in(line, p)) {
            out.push(rule.violation(file, i));
        }
    }
}

// ---------------------------------------------------------------------
// AMRM-L007 — tie-break enums without #[repr(u8)]

fn check_tiebreak_repr(rule: &Rule, file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, line) in file.code.iter().enumerate() {
        if !file.is_code_line(i) {
            continue;
        }
        let Some(pos) = find_word(line, "enum") else {
            continue;
        };
        // `enum Name` item lines only (skip `enum` inside generics etc.).
        let before = line[..pos].trim();
        if !(before.is_empty() || before == "pub" || before.starts_with("pub(")) {
            continue;
        }
        // Gather the contiguous attribute block above.
        let mut attrs = String::new();
        let mut k = i;
        while k > 0 {
            let s = file.code[k - 1].trim_start();
            if s.starts_with("#[") || s.starts_with("#!") || s.is_empty() {
                attrs.push_str(s);
                attrs.push('\n');
                k -= 1;
            } else {
                break;
            }
        }
        let derives_ord = attrs.contains("derive(") && attrs.contains("Ord");
        if !derives_ord {
            continue;
        }
        let Some(end) = match_braces(&file.code, i) else {
            continue;
        };
        let has_discriminants = (i..=end).any(|k| {
            let l = file.code[k].trim();
            if let Some(eq) = l.find("= ") {
                l[eq + 2..]
                    .trim_start()
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit())
            } else {
                false
            }
        });
        if has_discriminants && !attrs.contains("#[repr(") {
            out.push(rule.violation(file, i));
        }
    }
}

// ---------------------------------------------------------------------
// AMRM-L009 — printing from library crates

fn check_library_print(rule: &Rule, file: &SourceFile, out: &mut Vec<Violation>) {
    if !file.in_library_crate() {
        return;
    }
    const PATTERNS: &[&str] = &["println!", "print!", "eprintln!", "eprint!", "dbg!"];
    for (i, line) in file.code.iter().enumerate() {
        if !file.is_code_line(i) {
            continue;
        }
        if PATTERNS.iter().any(|p| line.contains(p)) {
            out.push(rule.violation(file, i));
        }
    }
}

// ---------------------------------------------------------------------
// AMRM-L010 — partial_cmp on floats

fn check_float_partial_cmp(rule: &Rule, file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, line) in file.code.iter().enumerate() {
        if file.is_code_line(i) && line.contains(".partial_cmp(") {
            out.push(rule.violation(file, i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rule(code: &str, path: &str, src: &str) -> Vec<Violation> {
        let rule = all()
            .iter()
            .find(|r| r.code == code)
            .expect("registered rule code");
        let file = SourceFile::from_source(path.to_string(), src);
        let mut out = Vec::new();
        (rule.check)(rule, &file, &mut out);
        out
    }

    #[test]
    fn l001_flags_wall_clock_but_not_strings() {
        let v = run_rule(
            "AMRM-L001",
            "crates/core/src/x.rs",
            "let t = std::time::Instant::now();\nlet s = \"Instant::now\";\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn l002_flags_iteration_of_declared_maps_only() {
        let src = "use std::collections::HashMap;\n\
                   struct S { memo: HashMap<u64, f64> }\n\
                   fn f(s: &S, v: &Vec<u32>) {\n\
                       for x in s.memo.values() { let _ = x; }\n\
                       for y in v.iter() { let _ = y; }\n\
                   }\n";
        let v = run_rule("AMRM-L002", "crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn l003_flags_divergent_new_but_not_delegating_default() {
        let divergent = "#[derive(Debug, Default)]\n\
                         struct Cfg { cap: usize }\n\
                         impl Cfg {\n\
                             pub fn new() -> Self { Cfg { cap: 100 } }\n\
                         }\n";
        let delegating = "#[derive(Default)]\n\
                          struct Reg { v: Vec<u32> }\n\
                          impl Reg {\n\
                              pub fn new() -> Self { Reg::default() }\n\
                          }\n";
        assert_eq!(run_rule("AMRM-L003", "a.rs", divergent).len(), 1);
        assert!(run_rule("AMRM-L003", "a.rs", delegating).is_empty());
    }

    #[test]
    fn l003_skips_unit_structs_and_parameterized_constructors() {
        let unit = "#[derive(Clone, Copy, Default)]\n\
                    pub struct Jsq;\n\
                    impl Jsq {\n\
                        pub fn new() -> Self { Jsq }\n\
                    }\n";
        let parameterized = "#[derive(Clone, Default)]\n\
                             struct Variant { policy: u8 }\n\
                             impl Variant {\n\
                                 pub fn new(policy: u8) -> Self { Variant { policy } }\n\
                             }\n";
        assert!(run_rule("AMRM-L003", "a.rs", unit).is_empty());
        assert!(run_rule("AMRM-L003", "a.rs", parameterized).is_empty());
    }

    #[test]
    fn l004_respects_serial_merge_marker() {
        let bad = "let r = for_each_cell(n, threads, |i| {\n\
                       total += weights[i];\n\
                   });\n";
        let good = "// lint:serial-merge — per-cell sums merged after the join\n\
                    let r = for_each_cell(n, threads, |i| {\n\
                        total += weights[i];\n\
                    });\n";
        assert_eq!(run_rule("AMRM-L004", "a.rs", bad).len(), 1);
        assert!(run_rule("AMRM-L004", "a.rs", good).is_empty());
    }

    #[test]
    fn l005_limited_to_library_crates_outside_tests() {
        let src = "fn f() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n";
        assert_eq!(run_rule("AMRM-L005", "crates/core/src/x.rs", src).len(), 1);
        assert!(run_rule("AMRM-L005", "crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn l007_wants_repr_on_ord_discriminant_enums() {
        let bad = "#[derive(PartialEq, Eq, PartialOrd, Ord)]\n\
                   enum Class {\n\
                       A = 0,\n\
                       B = 1,\n\
                   }\n";
        let good = "#[repr(u8)]\n\
                    #[derive(PartialEq, Eq, PartialOrd, Ord)]\n\
                    enum Class {\n\
                        A = 0,\n\
                        B = 1,\n\
                    }\n";
        let no_discriminants = "#[derive(PartialEq, Eq, PartialOrd, Ord)]\n\
                                enum Plain { A, B }\n";
        assert_eq!(run_rule("AMRM-L007", "a.rs", bad).len(), 1);
        assert!(run_rule("AMRM-L007", "a.rs", good).is_empty());
        assert!(run_rule("AMRM-L007", "a.rs", no_discriminants).is_empty());
    }

    #[test]
    fn l010_flags_calls_not_trait_impls() {
        let src = "fn partial_cmp(&self, o: &Self) -> Option<Ordering> {\n\
                       Some(self.cmp(o))\n\
                   }\n\
                   fn sortit(v: &mut Vec<f64>) {\n\
                       v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
                   }\n";
        let v = run_rule("AMRM-L010", "a.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
    }
}
