// AMRM-L009 negative: the library returns data; a print under
// #[cfg(test)] is debugging aid, not library output.

pub fn report(energy: f64) -> String {
    format!("total energy: {energy:.2} J")
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_are_fine_in_tests() {
        println!("{}", super::report(1.0));
    }
}
