// AMRM-L001 positive: a wall-clock read outside any test region.

pub fn decision_epoch() -> std::time::Instant {
    std::time::Instant::now()
}
