// AMRM-L004 negative: the accumulation is per-cell-local and the
// audited serial merge is marked.

pub fn score_all(weights: &[f64], threads: usize) -> f64 {
    // lint:serial-merge — per-cell partial sums, merged serially below.
    let partials = for_each_cell(weights.len(), threads, |cell| {
        let mut local = 0.0;
        local += weights[cell];
        local
    });
    partials.iter().sum()
}

fn for_each_cell<T>(n: usize, _threads: usize, f: impl FnMut(usize) -> T) -> Vec<T> {
    (0..n).map(f).collect()
}
