// AMRM-L004 positive: a `+=` inside the fan-out closure with no
// serial-merge marker anywhere near the call.

pub fn score_all(weights: &[f64], threads: usize) -> f64 {
    let mut total = 0.0;
    let _ = for_each_cell(weights.len(), threads, |cell| {
        total += weights[cell];
        total
    });
    total
}

fn for_each_cell<T>(n: usize, _threads: usize, f: impl FnMut(usize) -> T) -> Vec<T> {
    (0..n).map(f).collect()
}
