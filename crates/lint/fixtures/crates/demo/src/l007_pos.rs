// AMRM-L007 positive: an Ord-derived tie-break enum with explicit
// discriminants but no #[repr(u8)].

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TieBreak {
    Completion = 0,
    Arrival = 1,
    Expiry = 2,
}
