// AMRM-L006 positive: an entropy-seeded RNG breaks same-seed
// reproducibility. (Fixtures are scanned, never compiled — the call
// stands in for rand::thread_rng().)

pub fn jitter() -> f64 {
    let mut rng = thread_rng();
    rng.next_f64()
}
