// AMRM-L001 negative: the pattern only in a string literal, a comment
// (Instant::now), and inside a #[cfg(test)] region.

pub const DOC: &str = "Instant::now is banned outside summary paths";

#[cfg(test)]
mod tests {
    #[test]
    fn timers_are_fine_in_tests() {
        let _ = std::time::Instant::now();
    }
}
