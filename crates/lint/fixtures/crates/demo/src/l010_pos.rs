// AMRM-L010 positive: partial_cmp on floats — None on NaN, and the
// expect detonates mid-sort at the worst time.

pub fn sort_energies(values: &mut [f64]) {
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN energies"));
}
