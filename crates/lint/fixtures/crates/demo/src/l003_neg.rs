// AMRM-L003 negative: a delegating new(), a unit struct, and a
// parameterized constructor — none can drift from the derive.

#[derive(Debug, Default)]
pub struct Registry {
    pub names: Vec<String>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }
}

#[derive(Debug, Clone, Copy, Default)]
pub struct Marker;

impl Marker {
    pub fn new() -> Self {
        Marker
    }
}

#[derive(Debug, Clone, Default)]
pub struct Tagged {
    pub tag: u8,
}

impl Tagged {
    pub fn new(tag: u8) -> Self {
        Tagged { tag }
    }
}
