// AMRM-L010 negative: total_cmp is the total order over floats (NaN
// included) — no unwrap, no panic, one deterministic order.

pub fn sort_energies(values: &mut [f64]) {
    values.sort_by(f64::total_cmp);
}
