// AMRM-L002 positive: iterating a HashMap field in randomized order.

use std::collections::HashMap;

pub struct Memo {
    entries: HashMap<u64, f64>,
}

impl Memo {
    pub fn total(&self) -> f64 {
        let mut sum = 0.0;
        for v in self.entries.values() {
            sum += v;
        }
        sum
    }
}
