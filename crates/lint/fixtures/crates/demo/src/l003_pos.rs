// AMRM-L003 positive: derive(Default) zeroes `cap` while the canonical
// no-arg constructor sets 100 — the two construction paths diverge.

#[derive(Debug, Clone, Default)]
pub struct BudgetCfg {
    pub cap: usize,
}

impl BudgetCfg {
    pub fn new() -> Self {
        BudgetCfg { cap: 100 }
    }
}
