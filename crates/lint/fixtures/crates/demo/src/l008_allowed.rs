// Suppression positive: this wall-clock read is covered by a live
// entry in the fixtures' lint.allow, so it must surface as an allowed
// exception, not a violation.

pub fn summary_timer() -> std::time::Instant {
    std::time::Instant::now()
}
