// AMRM-L006 negative: an explicitly seeded RNG, plus the banned names
// appearing only in a comment (thread_rng, OsRng) and a string.

pub const HINT: &str = "seed with StdRng::seed_from_u64, never from_entropy";

pub fn seeded(seed: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}
