// AMRM-L005 positive: a bare unwrap() in library code.

pub fn first_positive(values: &[f64]) -> f64 {
    *values.iter().find(|v| **v > 0.0).unwrap()
}
