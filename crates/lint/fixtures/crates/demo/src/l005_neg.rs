// AMRM-L005 negative: expect() with an invariant message in library
// code, and a bare unwrap() confined to a #[cfg(test)] region.

pub fn first_positive(values: &[f64]) -> f64 {
    *values
        .iter()
        .find(|v| **v > 0.0)
        .expect("caller guarantees a positive value")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = [1.0];
        let _ = super::first_positive(&v);
        let _ = v.first().unwrap();
    }
}
