// AMRM-L009 positive: a library crate printing to stdout.

pub fn report(energy: f64) {
    println!("total energy: {energy:.2} J");
}
