// AMRM-L007 negative: the repr pins the discriminants (first enum), and
// an Ord enum without explicit discriminants is not a tie-break
// encoding (second enum).

#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TieBreak {
    Completion = 0,
    Arrival = 1,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Plain {
    First,
    Second,
}
