// AMRM-L002 negative: BTreeMap iterates in key order, and Vec iteration
// is insertion-ordered — neither involves a hash map's randomized order.

use std::collections::BTreeMap;

pub struct Sorted {
    entries: BTreeMap<u64, f64>,
}

impl Sorted {
    pub fn total(&self, extra: &[f64]) -> f64 {
        let mut sum = 0.0;
        for v in self.entries.values() {
            sum += v;
        }
        for v in extra.iter() {
            sum += v;
        }
        sum
    }
}
