//! Fixture-corpus coverage: every rule has one positive (fires exactly
//! once) and one negative (stays silent) under `fixtures/`, plus a live
//! and a stale allowlist entry exercising the suppression path and the
//! `AMRM-L008` staleness rule.

use std::path::PathBuf;

use amrm_lint::{rules, run_lint, LintReport};

fn fixture_report() -> LintReport {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    run_lint(&root).expect("fixture corpus scans cleanly")
}

#[test]
fn every_rule_fires_exactly_once() {
    let report = fixture_report();
    assert!(report.files_scanned >= 17, "fixture corpus went missing");
    for rule in rules::all() {
        let tally = report
            .rules
            .iter()
            .find(|r| r.code == rule.code)
            .expect("every rule is tallied");
        assert_eq!(
            tally.violations, 1,
            "rule {} ({}) should fire exactly once on its positive fixture",
            rule.code, rule.name
        );
    }
    assert!(!report.is_clean());
}

#[test]
fn negatives_stay_silent() {
    let report = fixture_report();
    for v in &report.violations {
        assert!(
            !v.file.ends_with("_neg.rs"),
            "negative fixture {} flagged: [{}] line {}: {}",
            v.file,
            v.code,
            v.line,
            v.excerpt
        );
    }
}

#[test]
fn positives_are_flagged_in_their_own_file() {
    let report = fixture_report();
    // Each per-file rule's single violation must point into the
    // matching lXXX_pos.rs fixture (L008's lives in lint.allow itself).
    for v in &report.violations {
        let digits = &v.code[6..]; // "AMRM-L001" -> "001"
        if v.code == rules::STALE_ALLOW_CODE {
            assert_eq!(v.file, "lint.allow");
        } else {
            let expected = format!("l{digits}_pos.rs");
            assert!(
                v.file.ends_with(&expected),
                "[{}] expected in {}, found in {}",
                v.code,
                expected,
                v.file
            );
        }
    }
}

#[test]
fn live_allowlist_entry_suppresses_with_its_reason() {
    let report = fixture_report();
    assert_eq!(report.allowed.len(), 1);
    let s = &report.allowed[0];
    assert_eq!(s.code, "AMRM-L001");
    assert!(s.file.ends_with("l008_allowed.rs"));
    assert_eq!(s.reason, "fixture: audited summary-only timer");
}

#[test]
fn stale_allowlist_entry_surfaces_as_l008() {
    let report = fixture_report();
    let stale: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.code == rules::STALE_ALLOW_CODE)
        .collect();
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].file, "lint.allow");
    assert_eq!(stale[0].line, 5, "the stale entry sits on line 5");
    assert!(stale[0].excerpt.contains("crates/demo/src/removed.rs"));
}
