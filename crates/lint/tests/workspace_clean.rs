//! The workspace-at-HEAD gate: the tree this test runs from must lint
//! clean under the committed `lint.allow` — the same check CI runs via
//! `repro lint`, minus the process boundary. Also pins the JSON
//! artifact round-trip through the vendored serde stub.

use std::path::{Path, PathBuf};

use amrm_lint::{report, run_lint, LintReport};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_lints_clean_and_allowlist_has_no_stale_entries() {
    let report = run_lint(&workspace_root()).expect("workspace scan succeeds");
    assert!(
        report.files_scanned > 50,
        "suspiciously few sources scanned: {}",
        report.files_scanned
    );
    // is_clean() covers staleness too: a lint.allow entry that stopped
    // matching surfaces as an AMRM-L008 violation.
    assert!(
        report.is_clean(),
        "workspace must lint clean at HEAD:\n{}",
        report::render(&report)
    );
    // Every suppression carries its justification through to the report.
    assert!(
        !report.allowed.is_empty(),
        "the audited exceptions vanished"
    );
    for s in &report.allowed {
        assert!(
            !s.reason.trim().is_empty(),
            "suppression of {} at {}:{} lost its reason",
            s.code,
            s.file,
            s.line
        );
    }
}

#[test]
fn json_artifact_round_trips_through_the_vendored_stub() {
    let report = run_lint(&workspace_root()).expect("workspace scan succeeds");
    let json = report::to_json(&report).expect("report serializes");
    // Zeros-included: CI greps every rule code out of this artifact.
    for rule in amrm_lint::rules::all() {
        assert!(json.contains(rule.code), "{} missing from JSON", rule.code);
    }
    let back: LintReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(back, report, "JSON round-trip must be lossless");
}
