//! Saving and loading workload suites as JSON.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use crate::TestCase;

/// Saves a suite to a JSON file.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn save_suite(path: impl AsRef<Path>, cases: &[TestCase]) -> std::io::Result<()> {
    let file = File::create(path)?;
    serde_json::to_writer(BufWriter::new(file), cases).map_err(std::io::Error::other)
}

/// Loads a suite from a JSON file written by [`save_suite`].
///
/// # Errors
///
/// Returns any I/O or deserialization error.
pub fn load_suite(path: impl AsRef<Path>) -> std::io::Result<Vec<TestCase>> {
    let file = File::open(path)?;
    serde_json::from_reader(BufReader::new(file)).map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_suite, scenarios, SuiteSpec};

    #[test]
    fn roundtrip_through_file() {
        let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
        let spec = SuiteSpec {
            weak_counts: [2, 2, 0, 0],
            tight_counts: [1, 1, 1, 0],
            ..SuiteSpec::default()
        };
        let suite = generate_suite(&lib, &spec, 5);
        let path = std::env::temp_dir().join("amrm_suite_roundtrip.json");
        save_suite(&path, &suite).unwrap();
        let back = load_suite(&path).unwrap();
        assert_eq!(back.len(), suite.len());
        for (a, b) in suite.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.num_jobs(), b.num_jobs());
            assert_eq!(a.jobs[0].app.name(), b.jobs[0].app.name());
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_suite("/nonexistent/amrm.json").is_err());
    }
}
