//! Saving and loading workload suites and request streams as JSON.
//!
//! Suites persist their full operating-point tables; request *streams*
//! persist only `(application name, arrival, deadline)` triples — the
//! trace-replay format. [`load_stream`] resolves application names
//! against a characterized library, so a recorded stream replays
//! deterministically through `amrm_sim::Simulation` on any machine that
//! can rebuild the same library.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use amrm_model::AppRef;
use serde::{Deserialize, Serialize};

use crate::{ScenarioRequest, TestCase};

/// Saves a suite to a JSON file.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn save_suite(path: impl AsRef<Path>, cases: &[TestCase]) -> std::io::Result<()> {
    let file = File::create(path)?;
    serde_json::to_writer(BufWriter::new(file), cases).map_err(std::io::Error::other)
}

/// Loads a suite from a JSON file written by [`save_suite`].
///
/// # Errors
///
/// Returns any I/O or deserialization error.
pub fn load_suite(path: impl AsRef<Path>) -> std::io::Result<Vec<TestCase>> {
    let file = File::open(path)?;
    serde_json::from_reader(BufReader::new(file)).map_err(std::io::Error::other)
}

/// One persisted request of a trace: the application *by name* plus the
/// arrival/deadline instants.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StreamRecord {
    app: String,
    arrival: f64,
    deadline: f64,
}

/// Saves a request stream as a JSON trace of
/// `(application name, arrival, deadline)` records.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn save_stream(path: impl AsRef<Path>, stream: &[ScenarioRequest]) -> std::io::Result<()> {
    let records: Vec<StreamRecord> = stream
        .iter()
        .map(|r| StreamRecord {
            app: r.app.name().to_string(),
            arrival: r.arrival,
            deadline: r.deadline,
        })
        .collect();
    let file = File::create(path)?;
    serde_json::to_writer(BufWriter::new(file), &records).map_err(std::io::Error::other)
}

/// Loads a request stream written by [`save_stream`], resolving each
/// record's application name against `library`.
///
/// # Errors
///
/// Returns any I/O or deserialization error, or an
/// [`InvalidData`](std::io::ErrorKind::InvalidData) error naming the
/// first application the library does not contain.
pub fn load_stream(
    path: impl AsRef<Path>,
    library: &[AppRef],
) -> std::io::Result<Vec<ScenarioRequest>> {
    let file = File::open(path)?;
    let records: Vec<StreamRecord> =
        serde_json::from_reader(BufReader::new(file)).map_err(std::io::Error::other)?;
    records
        .into_iter()
        .map(|r| {
            let app = library.iter().find(|a| a.name() == r.app).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("application `{}` not in the provided library", r.app),
                )
            })?;
            Ok(ScenarioRequest {
                app: AppRef::clone(app),
                arrival: r.arrival,
                deadline: r.deadline,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_suite, scenarios, SuiteSpec};

    #[test]
    fn roundtrip_through_file() {
        let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
        let spec = SuiteSpec {
            weak_counts: [2, 2, 0, 0],
            tight_counts: [1, 1, 1, 0],
            ..SuiteSpec::default()
        };
        let suite = generate_suite(&lib, &spec, 5);
        let path = std::env::temp_dir().join("amrm_suite_roundtrip.json");
        save_suite(&path, &suite).unwrap();
        let back = load_suite(&path).unwrap();
        assert_eq!(back.len(), suite.len());
        for (a, b) in suite.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.num_jobs(), b.num_jobs());
            assert_eq!(a.jobs[0].app.name(), b.jobs[0].app.name());
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_suite("/nonexistent/amrm.json").is_err());
        assert!(load_stream("/nonexistent/amrm.json", &[scenarios::lambda1()]).is_err());
    }

    #[test]
    fn stream_roundtrips_exactly() {
        let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
        let spec = crate::StreamSpec {
            requests: 25,
            slack_range: (1.2, 2.8),
        };
        let stream = crate::poisson_stream(&lib, 3.0, &spec, 17);
        let path = std::env::temp_dir().join("amrm_stream_roundtrip.json");
        save_stream(&path, &stream).unwrap();
        let back = load_stream(&path, &lib).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back.len(), stream.len());
        for (a, b) in stream.iter().zip(&back) {
            assert_eq!(a.app.name(), b.app.name());
            // Bit-exact floats: a replayed trace must drive the kernel
            // identically to the recorded run.
            assert_eq!(a.arrival.to_bits(), b.arrival.to_bits());
            assert_eq!(a.deadline.to_bits(), b.deadline.to_bits());
        }
    }

    #[test]
    fn loading_a_stream_with_unknown_app_names_the_culprit() {
        let stream = vec![crate::ScenarioRequest {
            app: scenarios::lambda2(),
            arrival: 0.0,
            deadline: 5.0,
        }];
        let path = std::env::temp_dir().join("amrm_stream_unknown_app.json");
        save_stream(&path, &stream).unwrap();
        // A library missing λ2 cannot resolve the record.
        let err = load_stream(&path, &[scenarios::lambda1()]).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("λ2"), "{err}");
    }
}
