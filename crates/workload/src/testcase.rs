//! Test cases: snapshots of the job mix handed to a scheduler.

use amrm_model::{AppRef, Job, JobId, JobSet};
use serde::{Deserialize, Serialize};

/// Deadline tightness class of a test case (Section VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeadlineLevel {
    /// Deadline factors drawn from U[2, 6].
    Weak,
    /// Deadline factors drawn from U[0.6, 2].
    Tight,
}

impl DeadlineLevel {
    /// The factor range the paper samples for this level.
    pub fn factor_range(self) -> (f64, f64) {
        match self {
            DeadlineLevel::Weak => (2.0, 6.0),
            DeadlineLevel::Tight => (0.6, 2.0),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DeadlineLevel::Weak => "weak",
            DeadlineLevel::Tight => "tight",
        }
    }
}

/// One job of a test case: an application variant, the remaining progress
/// ratio, and a deadline relative to the scheduling instant (t = 0).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestJob {
    /// The application (with its Pareto operating-point table).
    pub app: AppRef,
    /// Remaining progress ratio ρ ∈ (0, 1].
    pub remaining: f64,
    /// Deadline relative to the scheduling instant.
    pub deadline: f64,
}

/// A test case: 1–4 jobs observed at one RM activation (t = 0).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestCase {
    /// Sequential id within the suite.
    pub id: usize,
    /// Deadline tightness class.
    pub level: DeadlineLevel,
    /// The jobs of this case.
    pub jobs: Vec<TestJob>,
}

impl TestCase {
    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Returns `true` if every job runs the same application variant.
    pub fn is_single_app(&self) -> bool {
        self.jobs
            .windows(2)
            .all(|w| w[0].app.name() == w[1].app.name())
    }

    /// Returns `true` if every job is in its initial state (ρ = 1).
    pub fn is_all_initial(&self) -> bool {
        self.jobs.iter().all(|j| (j.remaining - 1.0).abs() < 1e-12)
    }

    /// Materializes the case as a [`JobSet`] at scheduling time 0, with job
    /// ids 1, 2, ….
    pub fn to_job_set(&self) -> JobSet {
        self.jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                Job::new(
                    JobId(i as u64 + 1),
                    AppRef::clone(&j.app),
                    0.0,
                    j.deadline,
                    j.remaining,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    fn case() -> TestCase {
        TestCase {
            id: 7,
            level: DeadlineLevel::Tight,
            jobs: vec![
                TestJob {
                    app: scenarios::lambda1(),
                    remaining: 1.0,
                    deadline: 9.0,
                },
                TestJob {
                    app: scenarios::lambda2(),
                    remaining: 0.5,
                    deadline: 5.0,
                },
            ],
        }
    }

    #[test]
    fn to_job_set_assigns_sequential_ids() {
        let set = case().to_job_set();
        assert_eq!(set.len(), 2);
        assert!(set.get(JobId(1)).is_some());
        assert!(set.get(JobId(2)).is_some());
        assert!((set.get(JobId(2)).unwrap().remaining() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classification_helpers() {
        let c = case();
        assert!(!c.is_single_app());
        assert!(!c.is_all_initial());
        let mut single = c.clone();
        single.jobs[1].app = scenarios::lambda1();
        single.jobs.iter_mut().for_each(|j| j.remaining = 1.0);
        assert!(single.is_single_app());
        assert!(single.is_all_initial());
    }

    #[test]
    fn factor_ranges_match_paper() {
        assert_eq!(DeadlineLevel::Weak.factor_range(), (2.0, 6.0));
        assert_eq!(DeadlineLevel::Tight.factor_range(), (0.6, 2.0));
    }

    #[test]
    fn serde_roundtrip() {
        let c = case();
        let json = serde_json::to_string(&c).unwrap();
        let back: TestCase = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, 7);
        assert_eq!(back.num_jobs(), 2);
        assert_eq!(back.jobs[0].app.name(), "λ1");
    }
}
