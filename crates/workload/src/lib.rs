//! Workloads for evaluating runtime resource managers.
//!
//! The two ingredients of the paper's evaluation (Sections III and VI):
//!
//! * [`scenarios`] — the motivational example (Tables I–II, Figure 1) as
//!   exact fixtures;
//! * [`generate_suite`] — the reproducible random multi-application setup
//!   of Table III: 1676 cases of 1–4 jobs at weak/tight deadline levels,
//!   drawn over the application library characterized by `amrm-dataflow`;
//! * [`save_suite`]/[`load_suite`] — JSON persistence for generated
//!   suites;
//! * [`save_stream`]/[`load_stream`] — trace replay: request streams
//!   persisted as `(app name, arrival, deadline)` and resolved back
//!   against a characterized library.
//!
//! # Examples
//!
//! ```
//! use amrm_workload::{generate_suite, scenarios, SuiteSpec};
//!
//! let library = vec![scenarios::lambda1(), scenarios::lambda2()];
//! let spec = SuiteSpec {
//!     weak_counts: [1, 1, 0, 0],
//!     tight_counts: [1, 0, 0, 0],
//!     ..SuiteSpec::default()
//! };
//! let suite = generate_suite(&library, &spec, 42);
//! assert_eq!(suite.len(), 3);
//! ```

mod arrivals;
mod generator;
mod io;
pub mod scenarios;
mod streams;
mod testcase;

pub use crate::arrivals::ArrivalStream;
pub use crate::generator::{generate_suite, tabulate, SuiteSpec, TABLE_III};
pub use crate::io::{load_stream, load_suite, save_stream, save_suite};
pub use crate::scenarios::ScenarioRequest;
pub use crate::streams::{
    bursty_stream, bursty_window_stream, diurnal_stream, hotspot_stream, periodic_stream,
    poisson_stream, StreamSpec,
};
pub use crate::testcase::{DeadlineLevel, TestCase, TestJob};
