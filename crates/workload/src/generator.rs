//! Reproducible generator for the paper's multi-application test setup
//! (Section VI-A, Table III).
//!
//! The suite has 1676 cases of 1–4 jobs at two deadline levels. Around
//! 31.9% of the cases request a single application (uniform over
//! applications and input sizes); 22.6% have every job in its initial
//! state, otherwise the first job is initial and the rest have progressed
//! by U[0, 0.9]. Deadlines are the remaining time under a randomly chosen
//! configuration scaled by U[2, 6] (weak) or U[0.6, 2] (tight).

use amrm_model::AppRef;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{DeadlineLevel, TestCase, TestJob};

/// Numbers of test cases per (deadline level, job count) — Table III.
pub const TABLE_III: [(DeadlineLevel, [usize; 4]); 2] = [
    (DeadlineLevel::Weak, [15, 255, 255, 230]),
    (DeadlineLevel::Tight, [35, 340, 340, 206]),
];

/// Generation parameters; [`SuiteSpec::default`] reproduces the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteSpec {
    /// Cases per job count, weak deadlines.
    pub weak_counts: [usize; 4],
    /// Cases per job count, tight deadlines.
    pub tight_counts: [usize; 4],
    /// Fraction of cases whose jobs all run one application variant.
    pub single_app_fraction: f64,
    /// Fraction of cases with every job in the initial state.
    pub all_initial_fraction: f64,
    /// Progress of non-initial jobs is drawn from U[0, this].
    pub max_progress: f64,
}

impl Default for SuiteSpec {
    fn default() -> Self {
        SuiteSpec {
            weak_counts: TABLE_III[0].1,
            tight_counts: TABLE_III[1].1,
            single_app_fraction: 0.319,
            all_initial_fraction: 0.226,
            max_progress: 0.9,
        }
    }
}

impl SuiteSpec {
    /// Total number of cases the spec will generate.
    pub fn total(&self) -> usize {
        self.weak_counts.iter().sum::<usize>() + self.tight_counts.iter().sum::<usize>()
    }
}

/// Generates the evaluation suite over the given application variants.
///
/// Generation is deterministic in `seed`.
///
/// # Panics
///
/// Panics if `apps` is empty.
///
/// # Examples
///
/// ```no_run
/// use amrm_dataflow::apps;
/// use amrm_platform::Platform;
/// use amrm_workload::{generate_suite, SuiteSpec};
///
/// let library = apps::benchmark_suite(&Platform::odroid_xu4());
/// let suite = generate_suite(&library, &SuiteSpec::default(), 42);
/// assert_eq!(suite.len(), 1676);
/// ```
pub fn generate_suite(apps: &[AppRef], spec: &SuiteSpec, seed: u64) -> Vec<TestCase> {
    assert!(!apps.is_empty(), "application library must not be empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cases = Vec::with_capacity(spec.total());
    let mut id = 0;
    for (level, counts) in [
        (DeadlineLevel::Weak, spec.weak_counts),
        (DeadlineLevel::Tight, spec.tight_counts),
    ] {
        for (jobs_minus_one, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                cases.push(generate_case(
                    id,
                    level,
                    jobs_minus_one + 1,
                    apps,
                    spec,
                    &mut rng,
                ));
                id += 1;
            }
        }
    }
    cases
}

fn generate_case(
    id: usize,
    level: DeadlineLevel,
    num_jobs: usize,
    apps: &[AppRef],
    spec: &SuiteSpec,
    rng: &mut StdRng,
) -> TestCase {
    let single_app = num_jobs == 1 || rng.gen_bool(spec.single_app_fraction);
    let all_initial = rng.gen_bool(spec.all_initial_fraction);
    let shared_app = AppRef::clone(&apps[rng.gen_range(0..apps.len())]);

    let mut jobs = Vec::with_capacity(num_jobs);
    for j in 0..num_jobs {
        let app = if single_app {
            AppRef::clone(&shared_app)
        } else {
            AppRef::clone(&apps[rng.gen_range(0..apps.len())])
        };
        // The first job "naturally starts in the initial state".
        let remaining = if all_initial || j == 0 {
            1.0
        } else {
            1.0 - rng.gen_range(0.0..spec.max_progress)
        };
        // Deadline: remaining time under a random configuration × factor.
        let cfg = rng.gen_range(0..app.num_points());
        let base = app.point(cfg).time() * remaining;
        let (lo, hi) = level.factor_range();
        let deadline = base * rng.gen_range(lo..hi);
        jobs.push(TestJob {
            app,
            remaining,
            deadline,
        });
    }
    TestCase { id, level, jobs }
}

/// Tabulates a suite into the Table III layout: counts per deadline level
/// and job count.
pub fn tabulate(cases: &[TestCase]) -> [(DeadlineLevel, [usize; 4]); 2] {
    let mut weak = [0usize; 4];
    let mut tight = [0usize; 4];
    for c in cases {
        let bucket = (c.num_jobs() - 1).min(3);
        match c.level {
            DeadlineLevel::Weak => weak[bucket] += 1,
            DeadlineLevel::Tight => tight[bucket] += 1,
        }
    }
    [(DeadlineLevel::Weak, weak), (DeadlineLevel::Tight, tight)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    fn tiny_library() -> Vec<AppRef> {
        vec![scenarios::lambda1(), scenarios::lambda2()]
    }

    fn tiny_spec() -> SuiteSpec {
        SuiteSpec {
            weak_counts: [5, 10, 10, 5],
            tight_counts: [5, 10, 10, 5],
            ..SuiteSpec::default()
        }
    }

    #[test]
    fn default_spec_matches_table_iii() {
        let spec = SuiteSpec::default();
        assert_eq!(spec.total(), 1676);
        assert_eq!(spec.weak_counts, [15, 255, 255, 230]);
        assert_eq!(spec.tight_counts, [35, 340, 340, 206]);
    }

    #[test]
    fn generation_is_deterministic() {
        let lib = tiny_library();
        let a = generate_suite(&lib, &tiny_spec(), 7);
        let b = generate_suite(&lib, &tiny_spec(), 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.num_jobs(), y.num_jobs());
            for (jx, jy) in x.jobs.iter().zip(&y.jobs) {
                assert_eq!(jx.app.name(), jy.app.name());
                assert!((jx.deadline - jy.deadline).abs() < 1e-12);
                assert!((jx.remaining - jy.remaining).abs() < 1e-12);
            }
        }
        let c = generate_suite(&lib, &tiny_spec(), 8);
        let differs = a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.jobs[0].deadline != y.jobs[0].deadline);
        assert!(differs, "different seeds must change the suite");
    }

    #[test]
    fn counts_match_spec() {
        let lib = tiny_library();
        let suite = generate_suite(&lib, &tiny_spec(), 1);
        let tab = tabulate(&suite);
        assert_eq!(tab[0].1, [5, 10, 10, 5]);
        assert_eq!(tab[1].1, [5, 10, 10, 5]);
    }

    #[test]
    fn first_job_is_always_initial() {
        let lib = tiny_library();
        for c in generate_suite(&lib, &tiny_spec(), 3) {
            assert!((c.jobs[0].remaining - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn remaining_ratios_are_valid() {
        let lib = tiny_library();
        for c in generate_suite(&lib, &tiny_spec(), 4) {
            for j in &c.jobs {
                assert!(j.remaining > 0.0 && j.remaining <= 1.0);
                assert!(j.deadline > 0.0);
            }
        }
    }

    #[test]
    fn deadline_factors_respect_level() {
        let lib = tiny_library();
        for c in generate_suite(&lib, &tiny_spec(), 5) {
            let (lo, hi) = c.level.factor_range();
            for j in &c.jobs {
                // The deadline must be achievable ratio-wise within the
                // sampled factor range for at least one configuration.
                let tmin = j
                    .app
                    .points()
                    .iter()
                    .map(|p| p.time())
                    .fold(f64::INFINITY, f64::min)
                    * j.remaining;
                let tmax =
                    j.app.points().iter().map(|p| p.time()).fold(0.0, f64::max) * j.remaining;
                assert!(j.deadline >= tmin * lo - 1e-9);
                assert!(j.deadline <= tmax * hi + 1e-9);
            }
        }
    }

    #[test]
    fn single_app_fraction_is_roughly_respected() {
        let lib = tiny_library();
        let spec = SuiteSpec {
            weak_counts: [0, 200, 200, 100],
            tight_counts: [0, 0, 0, 0],
            ..SuiteSpec::default()
        };
        let suite = generate_suite(&lib, &spec, 11);
        let singles = suite.iter().filter(|c| c.is_single_app()).count() as f64;
        let frac = singles / suite.len() as f64;
        // λ-library has 2 apps, so mixes can collide into single-app cases
        // by chance; the fraction must sit above the configured 31.9%.
        assert!(frac > 0.25 && frac < 0.75, "fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_library_rejected() {
        generate_suite(&[], &SuiteSpec::default(), 0);
    }
}
