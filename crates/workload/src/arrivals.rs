//! Lazy request-stream generators: every shape from [`crate::streams`]
//! as an [`Iterator`] that draws requests on demand from the seeded RNG.
//!
//! Materializing a million-request stream as a `Vec` costs tens of
//! megabytes before the kernel processes a single event; the iterator
//! form keeps O(1) generator state (current time, burst counter, RNG) and
//! lets `amrm_sim::Simulation` pull the next arrival only when the
//! previous one has been handled. The `Vec`-returning functions in
//! [`crate::streams`] are thin `collect()` wrappers over these iterators,
//! so the two forms are bit-identical by construction — a property the
//! workspace proptests additionally pin against frozen reference
//! implementations of the original one-shot generators.

use amrm_model::AppRef;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ScenarioRequest, StreamSpec};

/// Rate shapes for the modulated-Poisson family. Evaluating the local
/// mean must not consume randomness, so the RNG draw sequence — and
/// therefore per-seed determinism — is identical across shapes.
#[derive(Debug, Clone, Copy)]
enum RateShape {
    /// Constant mean inter-arrival time (plain Poisson).
    Constant { mean: f64 },
    /// Sinusoidal day/night swing between `mean / peak_factor` (rush)
    /// and `mean * peak_factor` (night) over each `period`.
    Diurnal {
        mean: f64,
        peak_factor: f64,
        period: f64,
    },
    /// Square wave: even-numbered windows draw from `on`, odd from `off`.
    BurstyWindow { on: f64, off: f64, window: f64 },
}

impl RateShape {
    fn mean_at(&self, t: f64) -> f64 {
        match *self {
            RateShape::Constant { mean } => mean,
            RateShape::Diurnal {
                mean,
                peak_factor,
                period,
            } => {
                let phase = (2.0 * std::f64::consts::PI * t / period).sin();
                mean * peak_factor.powf(-phase)
            }
            RateShape::BurstyWindow { on, off, window } => {
                if ((t / window) as u64).is_multiple_of(2) {
                    on
                } else {
                    off
                }
            }
        }
    }
}

/// Arrival-process shapes. Each variant owns exactly the mutable state
/// the corresponding one-shot generator kept in its closure.
#[derive(Debug, Clone)]
enum Shape {
    /// Exponential inter-arrivals from the local mean at the current time.
    Modulated(RateShape),
    /// Strictly periodic arrivals: request `i` lands at `i * period`.
    Periodic { period: f64 },
    /// Bursts of `burst_len` requests spaced `intra_gap` apart, separated
    /// by `inter_gap` idle periods.
    Bursty {
        burst_len: usize,
        intra_gap: f64,
        inter_gap: f64,
        in_burst: usize,
    },
}

/// A lazy, seeded request stream: [`Iterator`] over [`ScenarioRequest`]s.
///
/// Constructed via [`ArrivalStream::poisson`] and friends; yields exactly
/// `spec.requests` items with non-decreasing arrival times, then `None`
/// forever. [`ExactSizeIterator`] reports the remaining count, so
/// `collect()` pre-sizes correctly.
///
/// # Examples
///
/// ```
/// use amrm_workload::{poisson_stream, scenarios, ArrivalStream, StreamSpec};
///
/// let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
/// let spec = StreamSpec::default();
/// // The lazy iterator and the materialized Vec are bit-identical.
/// let lazy: Vec<_> = ArrivalStream::poisson(&lib, 5.0, &spec, 7).collect();
/// let eager = poisson_stream(&lib, 5.0, &spec, 7);
/// assert_eq!(lazy.len(), eager.len());
/// for (a, b) in lazy.iter().zip(&eager) {
///     assert_eq!(a.arrival.to_bits(), b.arrival.to_bits());
///     assert_eq!(a.deadline.to_bits(), b.deadline.to_bits());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    apps: Vec<AppRef>,
    spec: StreamSpec,
    rng: StdRng,
    t: f64,
    emitted: usize,
    shape: Shape,
    /// Per-app skew: `(hot index, hot fraction)` — each request targets
    /// `apps[hot]` with the given probability instead of the uniform
    /// draw. `None` keeps the uniform app mix.
    hotspot: Option<(usize, f64)>,
}

impl ArrivalStream {
    /// Lazy form of [`crate::poisson_stream`].
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty, `mean_interarrival` is not positive, or
    /// the slack range is invalid.
    pub fn poisson(apps: &[AppRef], mean_interarrival: f64, spec: &StreamSpec, seed: u64) -> Self {
        validate(apps, spec);
        assert!(
            mean_interarrival > 0.0,
            "mean inter-arrival must be positive"
        );
        Self::new(
            apps,
            spec,
            seed,
            Shape::Modulated(RateShape::Constant {
                mean: mean_interarrival,
            }),
        )
    }

    /// Lazy form of [`crate::periodic_stream`].
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty, `period` is not positive, or the slack
    /// range is invalid.
    pub fn periodic(apps: &[AppRef], period: f64, spec: &StreamSpec, seed: u64) -> Self {
        validate(apps, spec);
        assert!(period > 0.0, "period must be positive");
        Self::new(apps, spec, seed, Shape::Periodic { period })
    }

    /// Lazy form of [`crate::bursty_stream`].
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty, any gap is negative, `burst_len` is
    /// zero, or the slack range is invalid.
    pub fn bursty(
        apps: &[AppRef],
        burst_len: usize,
        intra_gap: f64,
        inter_gap: f64,
        spec: &StreamSpec,
        seed: u64,
    ) -> Self {
        validate(apps, spec);
        assert!(burst_len > 0, "bursts need at least one request");
        assert!(
            intra_gap >= 0.0 && inter_gap >= 0.0,
            "gaps must be non-negative"
        );
        Self::new(
            apps,
            spec,
            seed,
            Shape::Bursty {
                burst_len,
                intra_gap,
                inter_gap,
                in_burst: 0,
            },
        )
    }

    /// Lazy form of [`crate::diurnal_stream`].
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty, `mean_interarrival` or `period` is not
    /// positive, `peak_factor < 1`, or the slack range is invalid.
    pub fn diurnal(
        apps: &[AppRef],
        mean_interarrival: f64,
        peak_factor: f64,
        period: f64,
        spec: &StreamSpec,
        seed: u64,
    ) -> Self {
        validate(apps, spec);
        assert!(
            mean_interarrival > 0.0,
            "mean inter-arrival must be positive"
        );
        assert!(period > 0.0, "diurnal period must be positive");
        assert!(peak_factor >= 1.0, "peak factor must be at least 1");
        Self::new(
            apps,
            spec,
            seed,
            Shape::Modulated(RateShape::Diurnal {
                mean: mean_interarrival,
                peak_factor,
                period,
            }),
        )
    }

    /// Lazy form of [`crate::bursty_window_stream`].
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty, any mean or the window length is not
    /// positive, or the slack range is invalid.
    pub fn bursty_window(
        apps: &[AppRef],
        on_interarrival: f64,
        off_interarrival: f64,
        window: f64,
        spec: &StreamSpec,
        seed: u64,
    ) -> Self {
        validate(apps, spec);
        assert!(
            on_interarrival > 0.0 && off_interarrival > 0.0,
            "mean inter-arrivals must be positive"
        );
        assert!(window > 0.0, "window length must be positive");
        Self::new(
            apps,
            spec,
            seed,
            Shape::Modulated(RateShape::BurstyWindow {
                on: on_interarrival,
                off: off_interarrival,
                window,
            }),
        )
    }

    /// Skewed Poisson stream for federation experiments: arrivals are
    /// plain Poisson at `mean_interarrival`, but each request targets
    /// `apps[hot_app]` with probability `hot_fraction` (falling back to
    /// the uniform draw otherwise). A high fraction concentrates load on
    /// one application — the workload where affinity routing pins one
    /// shard and queue-aware routing pays off.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty, `mean_interarrival` is not positive,
    /// `hot_app` is out of range, `hot_fraction` is outside `[0, 1]`, or
    /// the slack range is invalid.
    pub fn hotspot(
        apps: &[AppRef],
        mean_interarrival: f64,
        hot_app: usize,
        hot_fraction: f64,
        spec: &StreamSpec,
        seed: u64,
    ) -> Self {
        validate(apps, spec);
        assert!(
            mean_interarrival > 0.0,
            "mean inter-arrival must be positive"
        );
        assert!(hot_app < apps.len(), "hot app index out of range");
        assert!(
            (0.0..=1.0).contains(&hot_fraction),
            "hot fraction must lie in [0, 1]"
        );
        let mut stream = Self::new(
            apps,
            spec,
            seed,
            Shape::Modulated(RateShape::Constant {
                mean: mean_interarrival,
            }),
        );
        stream.hotspot = Some((hot_app, hot_fraction));
        stream
    }

    fn new(apps: &[AppRef], spec: &StreamSpec, seed: u64, shape: Shape) -> Self {
        ArrivalStream {
            apps: apps.to_vec(),
            spec: spec.clone(),
            rng: StdRng::seed_from_u64(seed),
            t: 0.0,
            emitted: 0,
            shape,
            hotspot: None,
        }
    }

    /// Requests not yet emitted.
    pub fn remaining(&self) -> usize {
        self.spec.requests - self.emitted
    }
}

impl Iterator for ArrivalStream {
    type Item = ScenarioRequest;

    fn next(&mut self) -> Option<ScenarioRequest> {
        if self.emitted == self.spec.requests {
            return None;
        }
        let index = self.emitted;
        self.emitted += 1;
        // Draw order per request: (gap for modulated shapes,) then app,
        // then slack — matching the one-shot generators exactly. The gap
        // advances below never consume randomness, so hoisting the time
        // computation ahead of the request draw is bit-preserving.
        let at = match &mut self.shape {
            Shape::Modulated(rate) => {
                // Exponential inter-arrival from the local mean.
                let u: f64 = self.rng.gen_range(1e-12..1.0);
                self.t += -rate.mean_at(self.t) * u.ln();
                self.t
            }
            Shape::Periodic { period } => index as f64 * *period,
            Shape::Bursty {
                burst_len,
                intra_gap,
                inter_gap,
                in_burst,
            } => {
                // The request lands at the current time; the gap advance
                // happens after, exactly as in the one-shot generator.
                let at = self.t;
                *in_burst += 1;
                if *in_burst == *burst_len {
                    *in_burst = 0;
                    self.t += *inter_gap;
                } else {
                    self.t += *intra_gap;
                }
                at
            }
        };
        Some(match self.hotspot {
            Some((hot, fraction)) => {
                // Heat draw first, then the uniform app draw — consumed
                // even when the hot app wins, so the per-request draw
                // count (and thus the slack sequence) never depends on
                // which way the coin lands.
                let heat: f64 = self.rng.gen_range(0.0..1.0);
                let uniform = self.rng.gen_range(0..self.apps.len());
                let chosen = if heat < fraction { hot } else { uniform };
                let app = AppRef::clone(&self.apps[chosen]);
                let slack = self
                    .rng
                    .gen_range(self.spec.slack_range.0..=self.spec.slack_range.1);
                let deadline = at + app.min_time() * slack;
                ScenarioRequest {
                    app,
                    arrival: at,
                    deadline,
                }
            }
            None => request_at(&self.apps, at, &self.spec, &mut self.rng),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.remaining();
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for ArrivalStream {}

impl std::iter::FusedIterator for ArrivalStream {}

/// Draws the app and deadline slack for a request arriving at `t`.
/// Shared with the `Vec`-returning wrappers in [`crate::streams`].
pub(crate) fn request_at(
    apps: &[AppRef],
    t: f64,
    spec: &StreamSpec,
    rng: &mut StdRng,
) -> ScenarioRequest {
    let app = AppRef::clone(&apps[rng.gen_range(0..apps.len())]);
    // Inclusive sampling: a degenerate range (lo == hi) is a constant
    // slack, not a panic.
    let slack = rng.gen_range(spec.slack_range.0..=spec.slack_range.1);
    let deadline = t + app.min_time() * slack;
    ScenarioRequest {
        app,
        arrival: t,
        deadline,
    }
}

pub(crate) fn validate(apps: &[AppRef], spec: &StreamSpec) {
    assert!(!apps.is_empty(), "application library must not be empty");
    if let Err(msg) = spec.validate() {
        panic!("invalid stream spec: {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use crate::streams::{
        bursty_stream, bursty_window_stream, diurnal_stream, periodic_stream, poisson_stream,
    };

    fn lib() -> Vec<AppRef> {
        vec![scenarios::lambda1(), scenarios::lambda2()]
    }

    fn assert_bit_identical(lazy: ArrivalStream, eager: &[ScenarioRequest]) {
        assert_eq!(lazy.len(), eager.len());
        let collected: Vec<_> = lazy.collect();
        for (a, b) in collected.iter().zip(eager) {
            assert_eq!(a.app.name(), b.app.name());
            assert_eq!(a.arrival.to_bits(), b.arrival.to_bits());
            assert_eq!(a.deadline.to_bits(), b.deadline.to_bits());
        }
    }

    #[test]
    fn every_shape_matches_its_materialized_counterpart() {
        let spec = StreamSpec {
            requests: 300,
            slack_range: (1.2, 2.5),
        };
        assert_bit_identical(
            ArrivalStream::poisson(&lib(), 4.0, &spec, 11),
            &poisson_stream(&lib(), 4.0, &spec, 11),
        );
        assert_bit_identical(
            ArrivalStream::periodic(&lib(), 3.0, &spec, 11),
            &periodic_stream(&lib(), 3.0, &spec, 11),
        );
        assert_bit_identical(
            ArrivalStream::bursty(&lib(), 4, 0.5, 9.0, &spec, 11),
            &bursty_stream(&lib(), 4, 0.5, 9.0, &spec, 11),
        );
        assert_bit_identical(
            ArrivalStream::diurnal(&lib(), 4.0, 3.0, 150.0, &spec, 11),
            &diurnal_stream(&lib(), 4.0, 3.0, 150.0, &spec, 11),
        );
        assert_bit_identical(
            ArrivalStream::bursty_window(&lib(), 0.5, 8.0, 40.0, &spec, 11),
            &bursty_window_stream(&lib(), 0.5, 8.0, 40.0, &spec, 11),
        );
    }

    #[test]
    fn hotspot_skews_the_app_mix_without_touching_arrivals() {
        let spec = StreamSpec {
            requests: 400,
            slack_range: (1.2, 2.5),
        };
        let skewed: Vec<_> = ArrivalStream::hotspot(&lib(), 2.0, 1, 0.9, &spec, 13).collect();
        let hot_name = lib()[1].name().to_string();
        let hot = skewed.iter().filter(|r| r.app.name() == hot_name).count();
        // 90% hot + 5% uniform fallback ≈ 95%; leave slack for variance.
        assert!(hot >= 300, "hot app got only {hot} of 400 requests");
        assert!(skewed.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // fraction 0 still consumes the heat draw but never overrides:
        // the app mix stays roughly uniform.
        let uniform: Vec<_> = ArrivalStream::hotspot(&lib(), 2.0, 1, 0.0, &spec, 13).collect();
        let cold = uniform.iter().filter(|r| r.app.name() == hot_name).count();
        assert!((100..=300).contains(&cold), "unskewed mix gave {cold}");
        // Same seed → identical arrival instants regardless of fraction
        // (heat/app/slack draws happen after the gap draw).
        for (a, b) in skewed.iter().zip(&uniform) {
            assert_eq!(a.arrival.to_bits(), b.arrival.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "hot app index out of range")]
    fn hotspot_rejects_bad_index() {
        let _ = ArrivalStream::hotspot(&lib(), 1.0, 7, 0.5, &StreamSpec::default(), 0);
    }

    #[test]
    #[should_panic(expected = "hot fraction")]
    fn hotspot_rejects_bad_fraction() {
        let _ = ArrivalStream::hotspot(&lib(), 1.0, 0, 1.5, &StreamSpec::default(), 0);
    }

    #[test]
    fn iterator_is_sized_and_fused() {
        let spec = StreamSpec {
            requests: 5,
            ..StreamSpec::default()
        };
        let mut stream = ArrivalStream::poisson(&lib(), 2.0, &spec, 0);
        assert_eq!(stream.len(), 5);
        assert_eq!(stream.size_hint(), (5, Some(5)));
        assert!(stream.next().is_some());
        assert_eq!(stream.remaining(), 4);
        assert_eq!(stream.by_ref().count(), 4);
        assert!(stream.next().is_none());
        assert!(stream.next().is_none());
    }

    #[test]
    fn arrivals_are_non_decreasing() {
        let spec = StreamSpec {
            requests: 500,
            ..StreamSpec::default()
        };
        let mut last = f64::NEG_INFINITY;
        for req in ArrivalStream::diurnal(&lib(), 2.0, 4.0, 80.0, &spec, 9) {
            assert!(req.arrival >= last);
            assert!(req.deadline >= req.arrival);
            last = req.arrival;
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_library_panics() {
        let _ = ArrivalStream::poisson(&[], 1.0, &StreamSpec::default(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid stream spec")]
    fn invalid_spec_panics() {
        let spec = StreamSpec {
            requests: 5,
            slack_range: (3.0, 1.0),
        };
        let _ = ArrivalStream::periodic(&lib(), 1.0, &spec, 0);
    }
}
