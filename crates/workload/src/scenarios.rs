//! The paper's motivational example (Section III, Tables I–II, Figure 1).
//!
//! The numbers below are copied verbatim from Table II of the paper. They
//! are synthetic but "feature ratios similar to what we observed in real
//! applications". The module also provides the request scenarios S1/S2 of
//! Table I and the reference energies of Figure 1.

use amrm_model::{AppRef, Application, Job, JobId, JobSet, OperatingPoint};
use amrm_platform::{Platform, ResourceVec};

/// Builds application λ1 of Table II (full-execution values; progressed
/// states are derived by scaling with the remaining ratio).
pub fn lambda1() -> AppRef {
    let rows: [(u32, u32, f64, f64); 8] = [
        (1, 0, 16.8, 7.90),
        (2, 0, 10.3, 7.01),
        (0, 1, 11.2, 18.54),
        (0, 2, 6.3, 17.70),
        (1, 1, 8.1, 10.90),
        (1, 2, 7.9, 10.60),
        (2, 1, 5.3, 8.90),
        (2, 2, 4.7, 11.00),
    ];
    build_app("λ1", &rows)
}

/// Builds application λ2 of Table II.
pub fn lambda2() -> AppRef {
    let rows: [(u32, u32, f64, f64); 8] = [
        (1, 0, 10.0, 2.00),
        (2, 0, 7.0, 2.87),
        (0, 1, 5.0, 7.55),
        (0, 2, 3.5, 10.50),
        (1, 1, 3.5, 6.44),
        (1, 2, 3.0, 6.81),
        (2, 1, 3.0, 5.73),
        (2, 2, 2.0, 6.58),
    ];
    build_app("λ2", &rows)
}

fn build_app(name: &str, rows: &[(u32, u32, f64, f64)]) -> AppRef {
    Application::shared(
        name,
        rows.iter()
            .map(|&(l, b, t, e)| OperatingPoint::new(ResourceVec::from_slice(&[l, b]), t, e))
            .collect(),
    )
}

/// The 2-little + 2-big platform of the motivational example.
pub fn platform() -> Platform {
    Platform::motivational_2l2b()
}

/// One request row of Table I: the application, its arrival time and its
/// absolute deadline.
#[derive(Debug, Clone)]
pub struct ScenarioRequest {
    /// The requested application.
    pub app: AppRef,
    /// Arrival time of the request.
    pub arrival: f64,
    /// Absolute deadline of the request.
    pub deadline: f64,
}

/// Scenario S1 of Table I: σ1 = (λ1, arrival 0, deadline 9),
/// σ2 = (λ2, arrival 1, deadline 5).
pub fn scenario_s1() -> Vec<ScenarioRequest> {
    vec![
        ScenarioRequest {
            app: lambda1(),
            arrival: 0.0,
            deadline: 9.0,
        },
        ScenarioRequest {
            app: lambda2(),
            arrival: 1.0,
            deadline: 5.0,
        },
    ]
}

/// Scenario S2 of Table I: like S1 but σ2's deadline tightens to 4.
pub fn scenario_s2() -> Vec<ScenarioRequest> {
    let mut reqs = scenario_s1();
    reqs[1].deadline = 4.0;
    reqs
}

/// The job set visible to the RM at `t = 1` in scenario S1: σ1 has run for
/// 1 s under its initial 2L1B mapping (progress 1/5.3 ≈ 18.87%), σ2 has
/// just arrived.
pub fn s1_jobs_at_t1() -> JobSet {
    JobSet::new(vec![
        Job::new(JobId(1), lambda1(), 0.0, 9.0, 1.0 - 1.0 / 5.3),
        Job::new(JobId(2), lambda2(), 1.0, 5.0, 1.0),
    ])
}

/// Like [`s1_jobs_at_t1`] but with σ2's deadline at 4 (scenario S2).
pub fn s2_jobs_at_t1() -> JobSet {
    JobSet::new(vec![
        Job::new(JobId(1), lambda1(), 0.0, 9.0, 1.0 - 1.0 / 5.3),
        Job::new(JobId(2), lambda2(), 1.0, 4.0, 1.0),
    ])
}

/// Reference overall energies of Figure 1 (including the 1 s of σ1's
/// initial execution before the RM re-activation at `t = 1`).
pub mod fig1 {
    /// Fixed mapper, remapping at application start only (Fig. 1a).
    pub const FIXED_AT_START_J: f64 = 16.96;
    /// Fixed mapper, remapping at application start and finish (Fig. 1b).
    pub const FIXED_AT_START_AND_FINISH_J: f64 = 15.49;
    /// Adaptive mapper (Fig. 1c).
    pub const ADAPTIVE_J: f64 = 14.63;
    /// Energy σ1 consumes during [0, 1) on its initial 2L1B mapping.
    pub const PREFIX_J: f64 = 8.9 / 5.3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_pareto_filtered() {
        assert!(lambda1().is_pareto_filtered());
        assert!(lambda2().is_pareto_filtered());
    }

    #[test]
    fn lambda1_best_initial_choice_is_2l1b() {
        // At t = 0 with deadline 9 the cheapest feasible point is 2L1B, 8.9 J.
        let app = lambda1();
        let feasible: Vec<_> = app.points().iter().filter(|p| p.time() <= 9.0).collect();
        let best = feasible
            .iter()
            .min_by(|a, b| a.energy().total_cmp(&b.energy()))
            .unwrap();
        assert_eq!(best.resources().as_slice(), &[2, 1]);
        assert!((best.energy() - 8.9).abs() < 1e-12);
    }

    #[test]
    fn progressed_values_match_paper_triples() {
        // Table II lists λ1's remaining time/energy at 18.87% progress;
        // e.g. 1L: 16.8 → 13.63, 2L1B: 8.90 J → 7.22 J.
        let app = lambda1();
        let rho = 1.0 - 1.0 / 5.3; // 81.13% remaining
        let p1l = &app.points()[0];
        assert!((p1l.remaining_time(rho) - 13.63).abs() < 5e-3);
        let p2l1b = &app.points()[6];
        assert!((p2l1b.remaining_energy(rho) - 7.22).abs() < 5e-3);
        // And at 62.08% progress: 1L time 6.37, 2L energy 2.66.
        let rho2 = 1.0 - 0.6208;
        assert!((p1l.remaining_time(rho2) - 6.37).abs() < 5e-3);
        assert!((app.points()[1].remaining_energy(rho2) - 2.66).abs() < 5e-3);
    }

    #[test]
    fn s2_only_differs_in_sigma2_deadline() {
        let s1 = scenario_s1();
        let s2 = scenario_s2();
        assert_eq!(s1.len(), 2);
        assert!((s2[1].deadline - 4.0).abs() < 1e-12);
        assert!((s1[0].deadline - s2[0].deadline).abs() < 1e-12);
    }

    #[test]
    fn jobset_at_t1_has_expected_progress() {
        let jobs = s1_jobs_at_t1();
        let sigma1 = jobs.get(JobId(1)).unwrap();
        // 18.87% progress → 81.13% remaining.
        assert!((sigma1.remaining() - 0.8113).abs() < 1e-4);
        assert!((jobs.get(JobId(2)).unwrap().remaining() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig1_constants_are_ordered() {
        let (adaptive, fixed_both, fixed_start) = (
            fig1::ADAPTIVE_J,
            fig1::FIXED_AT_START_AND_FINISH_J,
            fig1::FIXED_AT_START_J,
        );
        assert!(adaptive < fixed_both);
        assert!(fixed_both < fixed_start);
    }
}
