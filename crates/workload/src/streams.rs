//! Online request-stream generators (extension beyond the paper's static
//! test cases): Poisson, periodic, and bursty arrival processes over an
//! application library. Streams feed `amrm-sim::run_scenario`.
//!
//! Every function here is a thin `collect()` wrapper over the lazy
//! [`ArrivalStream`] iterators in [`crate::arrivals`] — the materialized
//! `Vec` and the on-demand stream are bit-identical by construction.

use amrm_model::AppRef;

use crate::{ArrivalStream, ScenarioRequest};

/// Parameters shared by all stream generators.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Number of requests to generate.
    pub requests: usize,
    /// Deadline slack: the deadline is set `slack × fastest execution`
    /// after arrival, with the factor drawn uniformly from this *closed*
    /// range. A degenerate range (`lo == hi`) pins the slack to that
    /// value.
    pub slack_range: (f64, f64),
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            requests: 50,
            slack_range: (1.2, 3.0),
        }
    }
}

impl StreamSpec {
    /// Checks the spec's invariants: the slack range must satisfy
    /// `0 < lo ≤ hi` and both bounds must be finite.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let (lo, hi) = self.slack_range;
        if !(lo.is_finite() && hi.is_finite()) {
            return Err(format!("slack range ({lo}, {hi}) must be finite"));
        }
        if lo <= 0.0 {
            return Err(format!("slack lower bound {lo} must be positive"));
        }
        if hi < lo {
            return Err(format!("slack range ({lo}, {hi}) is reversed"));
        }
        Ok(())
    }
}

/// Poisson arrivals with the given mean inter-arrival time.
///
/// # Panics
///
/// Panics if `apps` is empty, `mean_interarrival` is not positive, or the
/// slack range is invalid.
///
/// # Examples
///
/// ```
/// use amrm_workload::{poisson_stream, scenarios, StreamSpec};
///
/// let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
/// let stream = poisson_stream(&lib, 5.0, &StreamSpec::default(), 7);
/// assert_eq!(stream.len(), 50);
/// assert!(stream.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// ```
pub fn poisson_stream(
    apps: &[AppRef],
    mean_interarrival: f64,
    spec: &StreamSpec,
    seed: u64,
) -> Vec<ScenarioRequest> {
    ArrivalStream::poisson(apps, mean_interarrival, spec, seed).collect()
}

/// Strictly periodic arrivals with the given period.
///
/// # Panics
///
/// Panics if `apps` is empty, `period` is not positive, or the slack range
/// is invalid.
pub fn periodic_stream(
    apps: &[AppRef],
    period: f64,
    spec: &StreamSpec,
    seed: u64,
) -> Vec<ScenarioRequest> {
    ArrivalStream::periodic(apps, period, spec, seed).collect()
}

/// Bursty on/off arrivals: bursts of `burst_len` back-to-back requests
/// (spaced by `intra_gap`), separated by `inter_gap` idle periods.
///
/// # Panics
///
/// Panics if `apps` is empty, any gap is negative, `burst_len` is zero, or
/// the slack range is invalid.
pub fn bursty_stream(
    apps: &[AppRef],
    burst_len: usize,
    intra_gap: f64,
    inter_gap: f64,
    spec: &StreamSpec,
    seed: u64,
) -> Vec<ScenarioRequest> {
    ArrivalStream::bursty(apps, burst_len, intra_gap, inter_gap, spec, seed).collect()
}

/// Diurnal (day/night) load: Poisson arrivals whose mean inter-arrival
/// time swings sinusoidally between `mean_interarrival / peak_factor`
/// (rush hour) and `mean_interarrival * peak_factor` (dead of night) over
/// each `period`. Sized for thousands of requests — the stream is built in
/// one pass with O(1) state per request.
///
/// # Panics
///
/// Panics if `apps` is empty, `mean_interarrival` or `period` is not
/// positive, `peak_factor < 1`, or the slack range is invalid.
///
/// # Examples
///
/// ```
/// use amrm_workload::{diurnal_stream, scenarios, StreamSpec};
///
/// let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
/// let spec = StreamSpec { requests: 2000, ..StreamSpec::default() };
/// let stream = diurnal_stream(&lib, 5.0, 4.0, 200.0, &spec, 11);
/// assert_eq!(stream.len(), 2000);
/// assert!(stream.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// ```
pub fn diurnal_stream(
    apps: &[AppRef],
    mean_interarrival: f64,
    peak_factor: f64,
    period: f64,
    spec: &StreamSpec,
    seed: u64,
) -> Vec<ScenarioRequest> {
    ArrivalStream::diurnal(apps, mean_interarrival, peak_factor, period, spec, seed).collect()
}

/// Bursty-window load: Poisson arrivals that alternate between an "on"
/// window (mean inter-arrival `on_interarrival`) and an "off" window
/// (mean `off_interarrival`), each `window` seconds long. Unlike
/// [`bursty_stream`], which counts requests per burst, this shape switches
/// *rates* on a wall-clock grid — the square-wave cousin of
/// [`diurnal_stream`], sized for thousands of requests.
///
/// # Panics
///
/// Panics if `apps` is empty, any mean or the window length is not
/// positive, or the slack range is invalid.
///
/// # Examples
///
/// ```
/// use amrm_workload::{bursty_window_stream, scenarios, StreamSpec};
///
/// let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
/// let spec = StreamSpec { requests: 3000, ..StreamSpec::default() };
/// let stream = bursty_window_stream(&lib, 1.0, 20.0, 50.0, &spec, 3);
/// assert_eq!(stream.len(), 3000);
/// ```
pub fn bursty_window_stream(
    apps: &[AppRef],
    on_interarrival: f64,
    off_interarrival: f64,
    window: f64,
    spec: &StreamSpec,
    seed: u64,
) -> Vec<ScenarioRequest> {
    ArrivalStream::bursty_window(apps, on_interarrival, off_interarrival, window, spec, seed)
        .collect()
}

/// Skewed Poisson arrivals: each request targets `apps[hot_app]` with
/// probability `hot_fraction`, otherwise a uniform draw — the federation
/// workload where affinity routing concentrates load on one shard.
///
/// # Panics
///
/// Panics if `apps` is empty, `mean_interarrival` is not positive,
/// `hot_app` is out of range, `hot_fraction` is outside `[0, 1]`, or the
/// slack range is invalid.
///
/// # Examples
///
/// ```
/// use amrm_workload::{hotspot_stream, scenarios, StreamSpec};
///
/// let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
/// let stream = hotspot_stream(&lib, 2.0, 0, 0.85, &StreamSpec::default(), 5);
/// let hot = stream.iter().filter(|r| r.app.name() == lib[0].name()).count();
/// assert!(hot * 2 > stream.len(), "hot app must dominate the mix");
/// ```
pub fn hotspot_stream(
    apps: &[AppRef],
    mean_interarrival: f64,
    hot_app: usize,
    hot_fraction: f64,
    spec: &StreamSpec,
    seed: u64,
) -> Vec<ScenarioRequest> {
    ArrivalStream::hotspot(apps, mean_interarrival, hot_app, hot_fraction, spec, seed).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    fn lib() -> Vec<AppRef> {
        vec![scenarios::lambda1(), scenarios::lambda2()]
    }

    #[test]
    fn poisson_is_deterministic_and_ordered() {
        let a = poisson_stream(&lib(), 4.0, &StreamSpec::default(), 1);
        let b = poisson_stream(&lib(), 4.0, &StreamSpec::default(), 1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x.arrival - y.arrival).abs() < 1e-12);
        }
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn poisson_mean_interarrival_is_close() {
        let spec = StreamSpec {
            requests: 4000,
            ..StreamSpec::default()
        };
        let stream = poisson_stream(&lib(), 5.0, &spec, 3);
        let mean = stream.last().unwrap().arrival / stream.len() as f64;
        assert!((mean - 5.0).abs() < 0.5, "empirical mean {mean}");
    }

    #[test]
    fn periodic_spacing_is_exact() {
        let spec = StreamSpec {
            requests: 5,
            ..StreamSpec::default()
        };
        let stream = periodic_stream(&lib(), 3.0, &spec, 9);
        for (i, r) in stream.iter().enumerate() {
            assert!((r.arrival - i as f64 * 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bursts_have_expected_shape() {
        let spec = StreamSpec {
            requests: 6,
            ..StreamSpec::default()
        };
        let stream = bursty_stream(&lib(), 3, 0.0, 10.0, &spec, 5);
        // Two bursts of three simultaneous arrivals, 10 s apart.
        assert!((stream[0].arrival - stream[2].arrival).abs() < 1e-12);
        assert!((stream[3].arrival - 10.0).abs() < 1e-12);
    }

    #[test]
    fn deadlines_respect_slack() {
        for r in poisson_stream(&lib(), 2.0, &StreamSpec::default(), 6) {
            let slack = (r.deadline - r.arrival) / r.app.min_time();
            assert!((1.2 - 1e-9..=3.0 + 1e-9).contains(&slack), "slack {slack}");
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_library_panics() {
        poisson_stream(&[], 1.0, &StreamSpec::default(), 0);
    }

    #[test]
    fn diurnal_peaks_are_denser_than_troughs_at_scale() {
        let spec = StreamSpec {
            requests: 5000,
            ..StreamSpec::default()
        };
        let period = 400.0;
        let stream = diurnal_stream(&lib(), 4.0, 4.0, period, &spec, 7);
        assert_eq!(stream.len(), 5000);
        assert!(stream.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Count arrivals in rush-hour quarters (sin > 0 half-periods'
        // first halves) vs night quarters. Rush phases draw from mean/4,
        // night from mean*4 — the density gap must be large.
        let mut rush = 0usize;
        let mut night = 0usize;
        for r in &stream {
            let phase = (r.arrival / period).fract();
            if (0.1..0.4).contains(&phase) {
                rush += 1;
            } else if (0.6..0.9).contains(&phase) {
                night += 1;
            }
        }
        assert!(
            rush > 4 * night.max(1),
            "rush {rush} vs night {night}: no diurnal modulation"
        );
    }

    #[test]
    fn diurnal_is_deterministic_per_seed() {
        let spec = StreamSpec {
            requests: 200,
            ..StreamSpec::default()
        };
        let a = diurnal_stream(&lib(), 5.0, 3.0, 100.0, &spec, 42);
        let b = diurnal_stream(&lib(), 5.0, 3.0, 100.0, &spec, 42);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.arrival - y.arrival).abs() < 1e-12);
            assert!((x.deadline - y.deadline).abs() < 1e-12);
        }
    }

    #[test]
    fn bursty_windows_switch_rates_on_the_clock_grid() {
        let spec = StreamSpec {
            requests: 4000,
            ..StreamSpec::default()
        };
        let window = 60.0;
        let stream = bursty_window_stream(&lib(), 0.5, 10.0, window, &spec, 9);
        assert_eq!(stream.len(), 4000);
        assert!(stream.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let mut on = 0usize;
        let mut off = 0usize;
        for r in &stream {
            if ((r.arrival / window) as u64).is_multiple_of(2) {
                on += 1;
            } else {
                off += 1;
            }
        }
        // On-windows run 20× denser; allow plenty of slack for edge
        // effects around window boundaries.
        assert!(on > 5 * off.max(1), "on {on} vs off {off}: no bursts");
    }

    #[test]
    #[should_panic(expected = "peak factor")]
    fn diurnal_sub_one_peak_factor_panics() {
        diurnal_stream(&lib(), 5.0, 0.5, 100.0, &StreamSpec::default(), 0);
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn bursty_window_zero_window_panics() {
        bursty_window_stream(&lib(), 1.0, 5.0, 0.0, &StreamSpec::default(), 0);
    }

    #[test]
    fn degenerate_slack_range_pins_the_slack() {
        // Regression: `lo == hi` used to panic inside `gen_range` with an
        // empty half-open range.
        let spec = StreamSpec {
            requests: 20,
            slack_range: (2.0, 2.0),
        };
        for r in poisson_stream(&lib(), 3.0, &spec, 11) {
            let slack = (r.deadline - r.arrival) / r.app.min_time();
            assert!((slack - 2.0).abs() < 1e-9, "slack {slack}");
        }
    }

    #[test]
    fn spec_validation_rejects_bad_ranges() {
        let ok = StreamSpec::default();
        assert!(ok.validate().is_ok());
        let pinned = StreamSpec {
            slack_range: (1.5, 1.5),
            ..ok.clone()
        };
        assert!(pinned.validate().is_ok());
        for bad in [(0.0, 2.0), (-1.0, 2.0), (3.0, 2.0), (1.0, f64::NAN)] {
            let spec = StreamSpec {
                slack_range: bad,
                ..ok.clone()
            };
            assert!(spec.validate().is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    #[should_panic(expected = "invalid stream spec")]
    fn reversed_slack_range_panics_with_context() {
        let spec = StreamSpec {
            requests: 5,
            slack_range: (3.0, 1.2),
        };
        poisson_stream(&lib(), 1.0, &spec, 0);
    }
}
