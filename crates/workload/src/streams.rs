//! Online request-stream generators (extension beyond the paper's static
//! test cases): Poisson, periodic, and bursty arrival processes over an
//! application library. Streams feed `amrm-sim::run_scenario`.

use amrm_model::AppRef;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ScenarioRequest;

/// Parameters shared by all stream generators.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Number of requests to generate.
    pub requests: usize,
    /// Deadline slack: the deadline is set `slack × fastest execution`
    /// after arrival, with the factor drawn uniformly from this *closed*
    /// range. A degenerate range (`lo == hi`) pins the slack to that
    /// value.
    pub slack_range: (f64, f64),
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            requests: 50,
            slack_range: (1.2, 3.0),
        }
    }
}

impl StreamSpec {
    /// Checks the spec's invariants: the slack range must satisfy
    /// `0 < lo ≤ hi` and both bounds must be finite.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let (lo, hi) = self.slack_range;
        if !(lo.is_finite() && hi.is_finite()) {
            return Err(format!("slack range ({lo}, {hi}) must be finite"));
        }
        if lo <= 0.0 {
            return Err(format!("slack lower bound {lo} must be positive"));
        }
        if hi < lo {
            return Err(format!("slack range ({lo}, {hi}) is reversed"));
        }
        Ok(())
    }
}

fn request_at(apps: &[AppRef], t: f64, spec: &StreamSpec, rng: &mut StdRng) -> ScenarioRequest {
    let app = AppRef::clone(&apps[rng.gen_range(0..apps.len())]);
    // Inclusive sampling: a degenerate range (lo == hi) is a constant
    // slack, not a panic.
    let slack = rng.gen_range(spec.slack_range.0..=spec.slack_range.1);
    let deadline = t + app.min_time() * slack;
    ScenarioRequest {
        app,
        arrival: t,
        deadline,
    }
}

/// Poisson arrivals with the given mean inter-arrival time.
///
/// # Panics
///
/// Panics if `apps` is empty, `mean_interarrival` is not positive, or the
/// slack range is invalid.
///
/// # Examples
///
/// ```
/// use amrm_workload::{poisson_stream, scenarios, StreamSpec};
///
/// let lib = vec![scenarios::lambda1(), scenarios::lambda2()];
/// let stream = poisson_stream(&lib, 5.0, &StreamSpec::default(), 7);
/// assert_eq!(stream.len(), 50);
/// assert!(stream.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// ```
pub fn poisson_stream(
    apps: &[AppRef],
    mean_interarrival: f64,
    spec: &StreamSpec,
    seed: u64,
) -> Vec<ScenarioRequest> {
    validate(apps, spec);
    assert!(
        mean_interarrival > 0.0,
        "mean inter-arrival must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..spec.requests)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -mean_interarrival * u.ln();
            request_at(apps, t, spec, &mut rng)
        })
        .collect()
}

/// Strictly periodic arrivals with the given period.
///
/// # Panics
///
/// Panics if `apps` is empty, `period` is not positive, or the slack range
/// is invalid.
pub fn periodic_stream(
    apps: &[AppRef],
    period: f64,
    spec: &StreamSpec,
    seed: u64,
) -> Vec<ScenarioRequest> {
    validate(apps, spec);
    assert!(period > 0.0, "period must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..spec.requests)
        .map(|i| request_at(apps, i as f64 * period, spec, &mut rng))
        .collect()
}

/// Bursty on/off arrivals: bursts of `burst_len` back-to-back requests
/// (spaced by `intra_gap`), separated by `inter_gap` idle periods.
///
/// # Panics
///
/// Panics if `apps` is empty, any gap is negative, `burst_len` is zero, or
/// the slack range is invalid.
pub fn bursty_stream(
    apps: &[AppRef],
    burst_len: usize,
    intra_gap: f64,
    inter_gap: f64,
    spec: &StreamSpec,
    seed: u64,
) -> Vec<ScenarioRequest> {
    validate(apps, spec);
    assert!(burst_len > 0, "bursts need at least one request");
    assert!(
        intra_gap >= 0.0 && inter_gap >= 0.0,
        "gaps must be non-negative"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    let mut in_burst = 0;
    (0..spec.requests)
        .map(|_| {
            let req = request_at(apps, t, spec, &mut rng);
            in_burst += 1;
            if in_burst == burst_len {
                in_burst = 0;
                t += inter_gap;
            } else {
                t += intra_gap;
            }
            req
        })
        .collect()
}

fn validate(apps: &[AppRef], spec: &StreamSpec) {
    assert!(!apps.is_empty(), "application library must not be empty");
    if let Err(msg) = spec.validate() {
        panic!("invalid stream spec: {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    fn lib() -> Vec<AppRef> {
        vec![scenarios::lambda1(), scenarios::lambda2()]
    }

    #[test]
    fn poisson_is_deterministic_and_ordered() {
        let a = poisson_stream(&lib(), 4.0, &StreamSpec::default(), 1);
        let b = poisson_stream(&lib(), 4.0, &StreamSpec::default(), 1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x.arrival - y.arrival).abs() < 1e-12);
        }
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn poisson_mean_interarrival_is_close() {
        let spec = StreamSpec {
            requests: 4000,
            ..StreamSpec::default()
        };
        let stream = poisson_stream(&lib(), 5.0, &spec, 3);
        let mean = stream.last().unwrap().arrival / stream.len() as f64;
        assert!((mean - 5.0).abs() < 0.5, "empirical mean {mean}");
    }

    #[test]
    fn periodic_spacing_is_exact() {
        let spec = StreamSpec {
            requests: 5,
            ..StreamSpec::default()
        };
        let stream = periodic_stream(&lib(), 3.0, &spec, 9);
        for (i, r) in stream.iter().enumerate() {
            assert!((r.arrival - i as f64 * 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bursts_have_expected_shape() {
        let spec = StreamSpec {
            requests: 6,
            ..StreamSpec::default()
        };
        let stream = bursty_stream(&lib(), 3, 0.0, 10.0, &spec, 5);
        // Two bursts of three simultaneous arrivals, 10 s apart.
        assert!((stream[0].arrival - stream[2].arrival).abs() < 1e-12);
        assert!((stream[3].arrival - 10.0).abs() < 1e-12);
    }

    #[test]
    fn deadlines_respect_slack() {
        for r in poisson_stream(&lib(), 2.0, &StreamSpec::default(), 6) {
            let slack = (r.deadline - r.arrival) / r.app.min_time();
            assert!((1.2 - 1e-9..=3.0 + 1e-9).contains(&slack), "slack {slack}");
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_library_panics() {
        poisson_stream(&[], 1.0, &StreamSpec::default(), 0);
    }

    #[test]
    fn degenerate_slack_range_pins_the_slack() {
        // Regression: `lo == hi` used to panic inside `gen_range` with an
        // empty half-open range.
        let spec = StreamSpec {
            requests: 20,
            slack_range: (2.0, 2.0),
        };
        for r in poisson_stream(&lib(), 3.0, &spec, 11) {
            let slack = (r.deadline - r.arrival) / r.app.min_time();
            assert!((slack - 2.0).abs() < 1e-9, "slack {slack}");
        }
    }

    #[test]
    fn spec_validation_rejects_bad_ranges() {
        let ok = StreamSpec::default();
        assert!(ok.validate().is_ok());
        let pinned = StreamSpec {
            slack_range: (1.5, 1.5),
            ..ok.clone()
        };
        assert!(pinned.validate().is_ok());
        for bad in [(0.0, 2.0), (-1.0, 2.0), (3.0, 2.0), (1.0, f64::NAN)] {
            let spec = StreamSpec {
                slack_range: bad,
                ..ok.clone()
            };
            assert!(spec.validate().is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    #[should_panic(expected = "invalid stream spec")]
    fn reversed_slack_range_panics_with_context() {
        let spec = StreamSpec {
            requests: 5,
            slack_range: (3.0, 1.2),
        };
        poisson_stream(&lib(), 1.0, &spec, 0);
    }
}
