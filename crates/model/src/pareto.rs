//! Pareto filtering of operating points.

use crate::OperatingPoint;

/// Removes all dominated operating points.
///
/// A point survives iff no other point is at least as good in *all* three
/// criteria (per-type resources, execution time, energy) and strictly better
/// in at least one. Exact duplicates are collapsed to a single
/// representative (the earliest one).
///
/// The paper assumes operating points handed to the runtime manager are
/// "already Pareto-filtered" (Section IV); this function is what the
/// design-time characterization in `amrm-dataflow` uses to produce them.
///
/// # Examples
///
/// ```
/// use amrm_model::{pareto_filter, OperatingPoint};
/// use amrm_platform::ResourceVec;
///
/// let dominated = OperatingPoint::new(ResourceVec::from_slice(&[2, 0]), 9.0, 5.0);
/// let better = OperatingPoint::new(ResourceVec::from_slice(&[1, 0]), 8.0, 4.0);
/// let filtered = pareto_filter(vec![dominated, better.clone()]);
/// assert_eq!(filtered, vec![better]);
/// ```
pub fn pareto_filter(points: Vec<OperatingPoint>) -> Vec<OperatingPoint> {
    let mut kept: Vec<OperatingPoint> = Vec::with_capacity(points.len());
    'candidate: for p in points {
        let mut i = 0;
        while i < kept.len() {
            if kept[i].dominates(&p) || kept[i] == p {
                continue 'candidate;
            }
            if p.dominates(&kept[i]) {
                kept.swap_remove(i);
            } else {
                i += 1;
            }
        }
        kept.push(p);
    }
    kept
}

/// Returns `true` if no point in `points` dominates another and there are no
/// duplicates — i.e. the set is a valid Pareto front.
pub fn is_pareto_front(points: &[OperatingPoint]) -> bool {
    for (i, a) in points.iter().enumerate() {
        for (j, b) in points.iter().enumerate() {
            if i != j && (a.dominates(b) || a == b) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_platform::ResourceVec;

    fn pt(r: &[u32], t: f64, e: f64) -> OperatingPoint {
        OperatingPoint::new(ResourceVec::from_slice(r), t, e)
    }

    #[test]
    fn keeps_incomparable_points() {
        let pts = vec![pt(&[1, 0], 10.0, 2.0), pt(&[0, 1], 5.0, 7.0)];
        let f = pareto_filter(pts.clone());
        assert_eq!(f.len(), 2);
        assert!(is_pareto_front(&f));
    }

    #[test]
    fn removes_dominated_chain() {
        let pts = vec![
            pt(&[1, 0], 10.0, 2.0),
            pt(&[1, 0], 11.0, 2.5),
            pt(&[1, 0], 12.0, 3.0),
        ];
        let f = pareto_filter(pts);
        assert_eq!(f.len(), 1);
        assert!((f[0].time() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn collapses_duplicates() {
        let pts = vec![pt(&[1, 1], 5.0, 4.0), pt(&[1, 1], 5.0, 4.0)];
        assert_eq!(pareto_filter(pts).len(), 1);
    }

    #[test]
    fn empty_input_is_empty_front() {
        assert!(pareto_filter(vec![]).is_empty());
        assert!(is_pareto_front(&[]));
    }

    #[test]
    fn later_dominating_point_evicts_earlier() {
        let pts = vec![pt(&[2, 0], 10.0, 5.0), pt(&[1, 0], 9.0, 4.0)];
        let f = pareto_filter(pts);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].resources().as_slice(), &[1, 0]);
    }

    #[test]
    fn detects_non_front() {
        let pts = vec![pt(&[1, 0], 10.0, 2.0), pt(&[1, 0], 11.0, 3.0)];
        assert!(!is_pareto_front(&pts));
    }

    #[test]
    fn table_ii_lambda1_is_already_a_front() {
        // The eight λ1 points of the motivational example survive intact.
        let pts = vec![
            pt(&[1, 0], 16.8, 7.90),
            pt(&[2, 0], 10.3, 7.01),
            pt(&[0, 1], 11.2, 18.54),
            pt(&[0, 2], 6.3, 17.70),
            pt(&[1, 1], 8.1, 10.90),
            pt(&[1, 2], 7.9, 10.60),
            pt(&[2, 1], 5.3, 8.90),
            pt(&[2, 2], 4.7, 11.00),
        ];
        let f = pareto_filter(pts.clone());
        assert_eq!(f.len(), pts.len());
        assert!(is_pareto_front(&f));
    }

    #[test]
    fn brute_force_agreement_on_grid() {
        // Cross-check against a quadratic brute-force filter on a small grid.
        let mut pts = Vec::new();
        for l in 0..3u32 {
            for b in 0..3u32 {
                if l + b == 0 {
                    continue;
                }
                let speed = f64::from(l) + 1.6 * f64::from(b);
                let t = 12.0 / speed;
                let e = t * (0.45 * f64::from(l) + 1.6 * f64::from(b));
                pts.push(pt(&[l, b], t, e));
            }
        }
        let filtered = pareto_filter(pts.clone());
        let brute: Vec<_> = pts
            .iter()
            .filter(|p| !pts.iter().any(|q| q.dominates(p)))
            .cloned()
            .collect();
        assert_eq!(filtered.len(), brute.len());
        for p in &filtered {
            assert!(brute.contains(p));
        }
    }
}
