//! Application operating points.

use std::fmt;

use amrm_platform::ResourceVec;
use serde::{Deserialize, Serialize};

/// One operating point `c = ⟨θ, τ, ξ⟩` of an application: a resource demand
/// vector, the worst-case execution time of the *whole* application under
/// that configuration, and the corresponding energy consumption.
///
/// A job that has a remaining progress ratio `ρ ∈ (0, 1]` needs
/// `τ · ρ` more seconds and `ξ · ρ` more joules to finish under this point
/// (the paper assumes constant progress rate per configuration, Section IV).
///
/// # Examples
///
/// ```
/// use amrm_model::OperatingPoint;
/// use amrm_platform::ResourceVec;
///
/// // λ1 on 2 little + 1 big core: 5.3 s, 8.9 J (Table II).
/// let p = OperatingPoint::new(ResourceVec::from_slice(&[2, 1]), 5.3, 8.9);
/// assert!((p.remaining_time(0.8113) - 4.2999).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    resources: ResourceVec,
    time: f64,
    energy: f64,
}

impl OperatingPoint {
    /// Creates an operating point.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not strictly positive, `energy` is negative, or
    /// the resource demand is all-zero (an application must occupy at least
    /// one core to make progress).
    pub fn new(resources: ResourceVec, time: f64, energy: f64) -> Self {
        assert!(
            time > 0.0 && time.is_finite(),
            "execution time must be positive"
        );
        assert!(
            energy >= 0.0 && energy.is_finite(),
            "energy must be non-negative"
        );
        assert!(
            !resources.is_zero(),
            "operating point must use at least one core"
        );
        OperatingPoint {
            resources,
            time,
            energy,
        }
    }

    /// The per-type core demand `θ`.
    pub fn resources(&self) -> &ResourceVec {
        &self.resources
    }

    /// Worst-case execution time `τ` of the full application, in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Energy `ξ` of the full application execution, in joules.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Average power draw `ξ / τ`, in watts.
    pub fn power(&self) -> f64 {
        self.energy / self.time
    }

    /// Time to finish a job with remaining progress ratio `ratio`.
    pub fn remaining_time(&self, ratio: f64) -> f64 {
        self.time * ratio
    }

    /// Energy to finish a job with remaining progress ratio `ratio`.
    pub fn remaining_energy(&self, ratio: f64) -> f64 {
        self.energy * ratio
    }

    /// Pareto dominance: `self` dominates `other` if it is no worse in all
    /// three criteria (resources per type, time, energy) and strictly better
    /// in at least one.
    pub fn dominates(&self, other: &OperatingPoint) -> bool {
        let no_worse = self.resources.fits_within(&other.resources)
            && self.time <= other.time
            && self.energy <= other.energy;
        if !no_worse {
            return false;
        }
        self.resources != other.resources || self.time < other.time || self.energy < other.energy
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨θ={}, τ={:.3}s, ξ={:.3}J⟩",
            self.resources, self.time, self.energy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(r: &[u32], t: f64, e: f64) -> OperatingPoint {
        OperatingPoint::new(ResourceVec::from_slice(r), t, e)
    }

    #[test]
    fn remaining_scales_linearly() {
        let p = pt(&[1, 0], 10.0, 2.0);
        assert!((p.remaining_time(0.5) - 5.0).abs() < 1e-12);
        assert!((p.remaining_energy(0.25) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn power_is_energy_over_time() {
        let p = pt(&[0, 1], 5.0, 7.55);
        assert!((p.power() - 1.51).abs() < 1e-12);
    }

    #[test]
    fn dominance_requires_all_dims() {
        let better = pt(&[1, 0], 5.0, 2.0);
        let worse = pt(&[1, 0], 6.0, 3.0);
        assert!(better.dominates(&worse));
        assert!(!worse.dominates(&better));
    }

    #[test]
    fn equal_points_do_not_dominate() {
        let a = pt(&[1, 1], 5.0, 2.0);
        let b = a.clone();
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn incomparable_resources_never_dominate() {
        // Big-core point is faster but hungrier; little-core point frugal.
        let big = pt(&[0, 1], 5.0, 7.55);
        let little = pt(&[1, 0], 10.0, 2.0);
        assert!(!big.dominates(&little));
        assert!(!little.dominates(&big));
    }

    #[test]
    fn fewer_resources_same_cost_dominates() {
        let lean = pt(&[1, 0], 5.0, 2.0);
        let fat = pt(&[2, 0], 5.0, 2.0);
        assert!(lean.dominates(&fat));
        assert!(!fat.dominates(&lean));
    }

    #[test]
    #[should_panic(expected = "execution time must be positive")]
    fn zero_time_rejected() {
        let _ = pt(&[1], 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_resources_rejected() {
        let _ = pt(&[0, 0], 1.0, 1.0);
    }
}
