//! Jobs (admitted requests) and job sets.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{AppRef, OperatingPoint};

/// Identifier of a job within a runtime-manager instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ{}", self.0)
    }
}

/// A job: an admitted request `σ = ⟨α, δ, λ, ρ⟩` with arrival time,
/// absolute deadline, application, and *remaining* progress ratio.
///
/// `ρ = 1` means the job has not started; `ρ = 0.3792` means 62.08% of the
/// work is done (the σ1 state at `t = 4.5` in the motivational example).
///
/// # Examples
///
/// ```
/// use amrm_model::{Application, Job, JobId, OperatingPoint};
/// use amrm_platform::ResourceVec;
///
/// let app = Application::shared(
///     "λ2",
///     vec![OperatingPoint::new(ResourceVec::from_slice(&[2, 1]), 3.0, 5.73)],
/// );
/// let job = Job::new(JobId(2), app, 1.0, 5.0, 1.0);
/// assert!((job.remaining_time(0) - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Job {
    id: JobId,
    app: AppRef,
    arrival: f64,
    deadline: f64,
    remaining: f64,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if `deadline < arrival` or `remaining` is outside `(0, 1]`.
    pub fn new(id: JobId, app: AppRef, arrival: f64, deadline: f64, remaining: f64) -> Self {
        assert!(deadline >= arrival, "deadline before arrival");
        assert!(
            remaining > 0.0 && remaining <= 1.0,
            "remaining ratio must be in (0, 1]"
        );
        Job {
            id,
            app,
            arrival,
            deadline,
            remaining,
        }
    }

    /// The job identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The application `λ` this job executes.
    pub fn app(&self) -> &AppRef {
        &self.app
    }

    /// Arrival time `α` (absolute).
    pub fn arrival(&self) -> f64 {
        self.arrival
    }

    /// Absolute deadline `δ`.
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// Remaining progress ratio `ρ ∈ (0, 1]`.
    pub fn remaining(&self) -> f64 {
        self.remaining
    }

    /// Returns a copy of this job with its remaining ratio replaced.
    ///
    /// # Panics
    ///
    /// Panics if `remaining` is outside `(0, 1]`.
    pub fn with_remaining(&self, remaining: f64) -> Job {
        Job::new(
            self.id,
            AppRef::clone(&self.app),
            self.arrival,
            self.deadline,
            remaining,
        )
    }

    /// The operating point with configuration index `j` of this job's app.
    pub fn point(&self, j: usize) -> &OperatingPoint {
        self.app.point(j)
    }

    /// Seconds needed to finish the job under configuration `j`.
    pub fn remaining_time(&self, j: usize) -> f64 {
        self.app.point(j).remaining_time(self.remaining)
    }

    /// Joules needed to finish the job under configuration `j`.
    pub fn remaining_energy(&self, j: usize) -> f64 {
        self.app.point(j).remaining_energy(self.remaining)
    }

    /// Can the job meet its deadline when running configuration `j`
    /// exclusively, starting at time `now`?
    pub fn meets_deadline_with(&self, j: usize, now: f64) -> bool {
        now + self.remaining_time(j) <= self.deadline + amrm_platform::EPS
    }
}

/// An immutable set of jobs `Σ` handed to a scheduler at an RM activation.
///
/// Job identifiers within the set are unique; lookups are by [`JobId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JobSet {
    jobs: Vec<Job>,
}

impl JobSet {
    /// Creates a job set.
    ///
    /// # Panics
    ///
    /// Panics if two jobs share an id.
    pub fn new(jobs: Vec<Job>) -> Self {
        for (i, a) in jobs.iter().enumerate() {
            for b in &jobs[i + 1..] {
                assert!(a.id() != b.id(), "duplicate job id {}", a.id());
            }
        }
        JobSet { jobs }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Returns `true` if the set contains no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The jobs in insertion order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Iterates over the jobs.
    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        self.jobs.iter()
    }

    /// Looks up a job by id.
    pub fn get(&self, id: JobId) -> Option<&Job> {
        self.jobs.iter().find(|j| j.id() == id)
    }

    /// The largest absolute deadline, or `None` for an empty set.
    ///
    /// This bounds the analysis scope of Algorithm 1 (line 1).
    pub fn max_deadline(&self) -> Option<f64> {
        self.jobs.iter().map(Job::deadline).max_by(f64::total_cmp)
    }

    /// Job ids sorted by non-decreasing deadline (EDF order, Algorithm 2).
    pub fn ids_by_deadline(&self) -> Vec<JobId> {
        let mut ids: Vec<(JobId, f64)> = self.jobs.iter().map(|j| (j.id(), j.deadline())).collect();
        ids.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        ids.into_iter().map(|(id, _)| id).collect()
    }
}

impl FromIterator<Job> for JobSet {
    fn from_iter<I: IntoIterator<Item = Job>>(iter: I) -> Self {
        JobSet::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a JobSet {
    type Item = &'a Job;
    type IntoIter = std::slice::Iter<'a, Job>;

    fn into_iter(self) -> Self::IntoIter {
        self.jobs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Application;
    use amrm_platform::ResourceVec;

    fn toy_app() -> AppRef {
        Application::shared(
            "toy",
            vec![
                OperatingPoint::new(ResourceVec::from_slice(&[1, 0]), 10.0, 2.0),
                OperatingPoint::new(ResourceVec::from_slice(&[2, 1]), 3.0, 5.73),
            ],
        )
    }

    #[test]
    fn remaining_time_and_energy_scale() {
        let j = Job::new(JobId(1), toy_app(), 0.0, 9.0, 0.5);
        assert!((j.remaining_time(0) - 5.0).abs() < 1e-12);
        assert!((j.remaining_energy(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deadline_feasibility() {
        let j = Job::new(JobId(1), toy_app(), 0.0, 4.0, 1.0);
        assert!(!j.meets_deadline_with(0, 0.0)); // 10 s > 4 s
        assert!(j.meets_deadline_with(1, 0.0)); // 3 s ≤ 4 s
        assert!(!j.meets_deadline_with(1, 2.0)); // 2 + 3 > 4
    }

    #[test]
    fn with_remaining_preserves_identity() {
        let j = Job::new(JobId(7), toy_app(), 1.0, 9.0, 1.0);
        let j2 = j.with_remaining(0.25);
        assert_eq!(j2.id(), JobId(7));
        assert!((j2.remaining() - 0.25).abs() < 1e-12);
        assert!((j2.deadline() - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "remaining ratio")]
    fn zero_remaining_rejected() {
        let _ = Job::new(JobId(1), toy_app(), 0.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "deadline before arrival")]
    fn deadline_before_arrival_rejected() {
        let _ = Job::new(JobId(1), toy_app(), 5.0, 1.0, 1.0);
    }

    #[test]
    fn jobset_lookup_and_edf_order() {
        let a = toy_app();
        let set = JobSet::new(vec![
            Job::new(JobId(1), AppRef::clone(&a), 0.0, 9.0, 1.0),
            Job::new(JobId(2), AppRef::clone(&a), 1.0, 5.0, 1.0),
            Job::new(JobId(3), a, 1.0, 7.0, 1.0),
        ]);
        assert_eq!(set.len(), 3);
        assert!(set.get(JobId(2)).is_some());
        assert!(set.get(JobId(9)).is_none());
        assert_eq!(set.ids_by_deadline(), vec![JobId(2), JobId(3), JobId(1)]);
        assert!((set.max_deadline().unwrap() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn edf_ties_break_by_id() {
        let a = toy_app();
        let set = JobSet::new(vec![
            Job::new(JobId(5), AppRef::clone(&a), 0.0, 5.0, 1.0),
            Job::new(JobId(2), a, 0.0, 5.0, 1.0),
        ]);
        assert_eq!(set.ids_by_deadline(), vec![JobId(2), JobId(5)]);
    }

    #[test]
    #[should_panic(expected = "duplicate job id")]
    fn duplicate_ids_rejected() {
        let a = toy_app();
        let _ = JobSet::new(vec![
            Job::new(JobId(1), AppRef::clone(&a), 0.0, 9.0, 1.0),
            Job::new(JobId(1), a, 0.0, 5.0, 1.0),
        ]);
    }

    #[test]
    fn empty_set_has_no_deadline() {
        let set = JobSet::default();
        assert!(set.is_empty());
        assert!(set.max_deadline().is_none());
    }
}
