//! Schedule validation errors.

use std::error::Error;
use std::fmt;

use amrm_platform::ResourceVec;

use crate::JobId;

/// Violation of the schedule well-formedness rules or of the optimization
/// constraints (2b)–(2e) of the paper.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// Segment `index` starts before the previous segment ends.
    Overlap {
        /// Index of the offending segment.
        index: usize,
    },
    /// Segment `index` starts before the schedule's reference time.
    StartsBeforeNow {
        /// Index of the offending segment.
        index: usize,
        /// The segment start time.
        start: f64,
        /// The reference time the schedule was created at.
        now: f64,
    },
    /// A mapping references a job that is not part of the job set.
    UnknownJob {
        /// The unknown job id.
        job: JobId,
    },
    /// A mapping references a configuration index out of range for the app.
    BadPoint {
        /// The job whose mapping is invalid.
        job: JobId,
        /// The out-of-range configuration index.
        point: usize,
    },
    /// Constraint (2c): a job appears more than once in one segment.
    DuplicateMapping {
        /// The duplicated job.
        job: JobId,
        /// Index of the segment with the duplicate.
        segment: usize,
    },
    /// Constraint (2b): a segment demands more cores than the platform has.
    ResourceOverflow {
        /// Index of the over-subscribed segment.
        segment: usize,
        /// Aggregate demand of the segment.
        demand: ResourceVec,
        /// Available cores per type.
        available: ResourceVec,
    },
    /// Constraint (2d): the scheduled progress does not equal the job's
    /// remaining ratio.
    ProgressMismatch {
        /// The job with wrong total progress.
        job: JobId,
        /// Progress accumulated over the schedule.
        scheduled: f64,
        /// Required remaining ratio ρ.
        required: f64,
    },
    /// Constraint (2e): the job completes after its deadline.
    DeadlineMiss {
        /// The late job.
        job: JobId,
        /// Time the job finishes in the schedule.
        completion: f64,
        /// The job's absolute deadline.
        deadline: f64,
    },
    /// A job is mapped in a segment that starts before its arrival.
    MappedBeforeArrival {
        /// The prematurely mapped job.
        job: JobId,
        /// Start of the offending segment.
        start: f64,
        /// The job's arrival time.
        arrival: f64,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Overlap { index } => {
                write!(f, "segment {index} overlaps its predecessor")
            }
            ScheduleError::StartsBeforeNow { index, start, now } => write!(
                f,
                "segment {index} starts at {start:.6} before reference time {now:.6}"
            ),
            ScheduleError::UnknownJob { job } => write!(f, "mapping references unknown job {job}"),
            ScheduleError::BadPoint { job, point } => {
                write!(f, "job {job} mapped to non-existent configuration {point}")
            }
            ScheduleError::DuplicateMapping { job, segment } => {
                write!(f, "job {job} mapped twice in segment {segment}")
            }
            ScheduleError::ResourceOverflow {
                segment,
                demand,
                available,
            } => write!(
                f,
                "segment {segment} demands {demand} cores but only {available} are available"
            ),
            ScheduleError::ProgressMismatch {
                job,
                scheduled,
                required,
            } => write!(
                f,
                "job {job} accumulates progress {scheduled:.6} instead of {required:.6}"
            ),
            ScheduleError::DeadlineMiss {
                job,
                completion,
                deadline,
            } => write!(
                f,
                "job {job} finishes at {completion:.6} after its deadline {deadline:.6}"
            ),
            ScheduleError::MappedBeforeArrival {
                job,
                start,
                arrival,
            } => write!(
                f,
                "job {job} mapped from {start:.6} before its arrival {arrival:.6}"
            ),
        }
    }
}

impl Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            ScheduleError::Overlap { index: 1 },
            ScheduleError::UnknownJob { job: JobId(3) },
            ScheduleError::DeadlineMiss {
                job: JobId(1),
                completion: 9.5,
                deadline: 9.0,
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("job"));
        }
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(ScheduleError::Overlap { index: 0 });
    }
}
