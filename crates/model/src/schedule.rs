//! Mapping segments and adaptive schedules.
//!
//! A schedule `κ = {µi × ∆µi}` is a list of mappings on consecutive time
//! segments (Equation (1) of the paper). Each mapping contains at most one
//! job mapping `ν = ⟨σ, λ, j⟩` per job; jobs absent from a segment are
//! *suspended* during it, and a job whose configuration index differs across
//! segments has been *reconfigured* — that is the adaptivity this paper adds
//! over fixed mappers.

use amrm_platform::{Platform, ResourceVec, EPS};
use serde::{Deserialize, Serialize};

use crate::{JobId, JobSet, ScheduleError};

/// Tolerance on accumulated progress ratios when checking constraint (2d).
pub const PROGRESS_TOL: f64 = 1e-6;

/// A job mapping `ν = ⟨σ, j⟩`: job `σ` runs configuration `j` of its
/// application (the application itself is reachable through the job).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobMapping {
    /// The mapped job.
    pub job: JobId,
    /// Configuration (operating-point) index into the job's application.
    pub point: usize,
}

impl JobMapping {
    /// Creates a job mapping.
    pub fn new(job: JobId, point: usize) -> Self {
        JobMapping { job, point }
    }
}

/// A mapping segment `µ × ∆µ`: a set of job mappings active on the
/// half-open time interval `[start, end)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    start: f64,
    end: f64,
    mappings: Vec<JobMapping>,
}

impl Segment {
    /// Creates a segment on `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty or reversed.
    pub fn new(start: f64, end: f64, mappings: Vec<JobMapping>) -> Self {
        assert!(
            end > start,
            "segment interval must have positive length ({start}..{end})"
        );
        Segment {
            start,
            end,
            mappings,
        }
    }

    /// Segment start time.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Segment end time.
    pub fn end(&self) -> f64 {
        self.end
    }

    /// Segment duration `|∆µ|`.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// The job mappings active in this segment.
    pub fn mappings(&self) -> &[JobMapping] {
        &self.mappings
    }

    /// The mapping of `job` in this segment, if present.
    pub fn mapping_for(&self, job: JobId) -> Option<&JobMapping> {
        self.mappings.iter().find(|m| m.job == job)
    }

    /// Returns `true` if `job` runs during this segment.
    pub fn contains_job(&self, job: JobId) -> bool {
        self.mapping_for(job).is_some()
    }

    /// Adds a job mapping.
    ///
    /// # Panics
    ///
    /// Panics if the job is already mapped in this segment (constraint 2c).
    pub fn add_mapping(&mut self, mapping: JobMapping) {
        assert!(
            !self.contains_job(mapping.job),
            "job {} already mapped in segment",
            mapping.job
        );
        self.mappings.push(mapping);
    }

    /// Aggregate core demand `Σν θ` of the segment on a platform with
    /// `num_types` resource types.
    pub fn demand(&self, jobs: &JobSet, num_types: usize) -> ResourceVec {
        let mut total = ResourceVec::zeros(num_types);
        for m in &self.mappings {
            if let Some(job) = jobs.get(m.job) {
                total += job.point(m.point).resources();
            }
        }
        total
    }

    /// Splits the segment at time `at`, cloning the mappings into both
    /// halves (the SPLIT operation of Algorithm 2, line 13).
    ///
    /// # Panics
    ///
    /// Panics unless `start < at < end`.
    pub fn split_at(&self, at: f64) -> (Segment, Segment) {
        assert!(
            self.start < at && at < self.end,
            "split point {at} outside segment ({}..{})",
            self.start,
            self.end
        );
        (
            Segment::new(self.start, at, self.mappings.clone()),
            Segment::new(at, self.end, self.mappings.clone()),
        )
    }
}

/// An adaptive schedule: job mappings over consecutive time segments.
///
/// # Examples
///
/// Constructing the adaptive schedule of Fig. 1(c) by hand and checking its
/// energy (14.63 J including the 1.679 J spent before `t = 1`):
///
/// ```
/// use amrm_model::{Application, Job, JobId, JobMapping, JobSet, OperatingPoint, Schedule, Segment};
/// use amrm_platform::ResourceVec;
///
/// let l1 = Application::shared(
///     "λ1",
///     vec![OperatingPoint::new(ResourceVec::from_slice(&[2, 1]), 5.3, 8.9)],
/// );
/// let l2 = Application::shared(
///     "λ2",
///     vec![OperatingPoint::new(ResourceVec::from_slice(&[2, 1]), 3.0, 5.73)],
/// );
/// let jobs = JobSet::new(vec![
///     Job::new(JobId(1), l1, 0.0, 9.0, 1.0 - 1.0 / 5.3),
///     Job::new(JobId(2), l2, 1.0, 5.0, 1.0),
/// ]);
/// let mut schedule = Schedule::new();
/// schedule.push(Segment::new(1.0, 4.0, vec![JobMapping::new(JobId(2), 0)]));
/// schedule.push(Segment::new(4.0, 4.0 + 5.3 * (1.0 - 1.0 / 5.3), vec![JobMapping::new(JobId(1), 0)]));
/// let energy = schedule.energy(&jobs);
/// assert!((energy - (5.73 + 8.9 * (1.0 - 1.0 / 5.3))).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    segments: Vec<Segment>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Creates a schedule from segments.
    ///
    /// # Panics
    ///
    /// Panics if segments are unordered or overlap beyond [`EPS`].
    pub fn from_segments(segments: Vec<Segment>) -> Self {
        for w in segments.windows(2) {
            assert!(
                w[1].start() >= w[0].end() - EPS,
                "segments out of order or overlapping"
            );
        }
        Schedule { segments }
    }

    /// The segments in time order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments `N`.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Returns `true` if the schedule has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// End time of the last segment, or `None` if empty.
    pub fn end_time(&self) -> Option<f64> {
        self.segments.last().map(Segment::end)
    }

    /// Start time of the first segment, or `None` if empty.
    pub fn start_time(&self) -> Option<f64> {
        self.segments.first().map(Segment::start)
    }

    /// Appends a segment at the end.
    ///
    /// # Panics
    ///
    /// Panics if the segment would overlap the current last segment.
    pub fn push(&mut self, segment: Segment) {
        if let Some(last) = self.segments.last() {
            assert!(
                segment.start() >= last.end() - EPS,
                "pushed segment overlaps schedule tail"
            );
        }
        self.segments.push(segment);
    }

    /// Adds a mapping to the segment at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the job is already mapped there.
    pub fn add_mapping_to(&mut self, index: usize, mapping: JobMapping) {
        self.segments[index].add_mapping(mapping);
    }

    /// Replaces the segment at `index` by its two halves split at `at`
    /// (Algorithm 2, line 13/15).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `at` is not inside the segment.
    pub fn split_segment(&mut self, index: usize, at: f64) {
        let (a, b) = self.segments[index].split_at(at);
        self.segments[index] = a;
        self.segments.insert(index + 1, b);
    }

    /// Total energy of the schedule per objective (2a):
    /// `Σµ Σν ξ · |∆µ| / τ`.
    pub fn energy(&self, jobs: &JobSet) -> f64 {
        self.segments
            .iter()
            .map(|seg| {
                seg.mappings()
                    .iter()
                    .filter_map(|m| {
                        jobs.get(m.job).map(|job| {
                            let p = job.point(m.point);
                            p.energy() * seg.duration() / p.time()
                        })
                    })
                    .sum::<f64>()
            })
            .sum()
    }

    /// Progress ratio accumulated by `job` over the whole schedule
    /// (the left side of constraint (2d)).
    pub fn progress_of(&self, job: JobId, jobs: &JobSet) -> f64 {
        let Some(j) = jobs.get(job) else { return 0.0 };
        self.segments
            .iter()
            .filter_map(|seg| {
                seg.mapping_for(job)
                    .map(|m| seg.duration() / j.point(m.point).time())
            })
            .sum()
    }

    /// The time `job` finishes: the end of the last segment mapping it.
    pub fn completion_time(&self, job: JobId) -> Option<f64> {
        self.segments
            .iter()
            .rev()
            .find(|seg| seg.contains_job(job))
            .map(Segment::end)
    }

    /// Checks schedule well-formedness and the paper's constraints
    /// (2b)–(2e) for the job set `jobs` on `platform`, with the schedule
    /// starting no earlier than `now`.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`ScheduleError`].
    pub fn validate(
        &self,
        jobs: &JobSet,
        platform: &Platform,
        now: f64,
    ) -> Result<(), ScheduleError> {
        let m = platform.num_types();
        // Structural checks.
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.start() < now - EPS {
                return Err(ScheduleError::StartsBeforeNow {
                    index: i,
                    start: seg.start(),
                    now,
                });
            }
            if i > 0 && seg.start() < self.segments[i - 1].end() - EPS {
                return Err(ScheduleError::Overlap { index: i });
            }
        }
        // Per-segment checks: job validity, (2c), (2b), arrivals.
        for (i, seg) in self.segments.iter().enumerate() {
            for (k, mp) in seg.mappings().iter().enumerate() {
                let Some(job) = jobs.get(mp.job) else {
                    return Err(ScheduleError::UnknownJob { job: mp.job });
                };
                if mp.point >= job.app().num_points() {
                    return Err(ScheduleError::BadPoint {
                        job: mp.job,
                        point: mp.point,
                    });
                }
                if seg.mappings()[..k].iter().any(|o| o.job == mp.job) {
                    return Err(ScheduleError::DuplicateMapping {
                        job: mp.job,
                        segment: i,
                    });
                }
                if seg.start() < job.arrival() - EPS {
                    return Err(ScheduleError::MappedBeforeArrival {
                        job: mp.job,
                        start: seg.start(),
                        arrival: job.arrival(),
                    });
                }
            }
            let demand = seg.demand(jobs, m);
            if !demand.fits_within(platform.counts()) {
                return Err(ScheduleError::ResourceOverflow {
                    segment: i,
                    demand,
                    available: platform.counts().clone(),
                });
            }
        }
        // Per-job checks: (2d) completeness and (2e) deadlines.
        for job in jobs.iter() {
            let progress = self.progress_of(job.id(), jobs);
            if (progress - job.remaining()).abs() > PROGRESS_TOL {
                return Err(ScheduleError::ProgressMismatch {
                    job: job.id(),
                    scheduled: progress,
                    required: job.remaining(),
                });
            }
            let completion = self
                .completion_time(job.id())
                .expect("progress > 0 implies at least one segment");
            if completion > job.deadline() + EPS {
                return Err(ScheduleError::DeadlineMiss {
                    job: job.id(),
                    completion,
                    deadline: job.deadline(),
                });
            }
        }
        Ok(())
    }
}

impl FromIterator<Segment> for Schedule {
    fn from_iter<I: IntoIterator<Item = Segment>>(iter: I) -> Self {
        Schedule::from_segments(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Application, Job, OperatingPoint};
    use amrm_platform::Platform;
    use std::sync::Arc;

    fn lambda1() -> crate::AppRef {
        Application::shared(
            "λ1",
            vec![
                OperatingPoint::new(ResourceVec::from_slice(&[2, 1]), 5.3, 8.9),
                OperatingPoint::new(ResourceVec::from_slice(&[1, 1]), 8.1, 10.9),
            ],
        )
    }

    fn lambda2() -> crate::AppRef {
        Application::shared(
            "λ2",
            vec![OperatingPoint::new(
                ResourceVec::from_slice(&[2, 1]),
                3.0,
                5.73,
            )],
        )
    }

    /// The Fig. 1(c) schedule at t = 1: σ2 on 2L1B for [1,4), σ1 suspended
    /// then resumed on 2L1B for [4, 8.3).
    fn fig1c() -> (Schedule, JobSet) {
        let rho1 = 1.0 - 1.0 / 5.3;
        let jobs = JobSet::new(vec![
            Job::new(JobId(1), lambda1(), 0.0, 9.0, rho1),
            Job::new(JobId(2), lambda2(), 1.0, 5.0, 1.0),
        ]);
        let mut s = Schedule::new();
        s.push(Segment::new(1.0, 4.0, vec![JobMapping::new(JobId(2), 0)]));
        s.push(Segment::new(
            4.0,
            4.0 + 5.3 * rho1,
            vec![JobMapping::new(JobId(1), 0)],
        ));
        (s, jobs)
    }

    #[test]
    fn fig1c_is_valid_and_has_expected_energy() {
        let (s, jobs) = fig1c();
        let platform = Platform::motivational_2l2b();
        s.validate(&jobs, &platform, 1.0).unwrap();
        let rho1 = 1.0 - 1.0 / 5.3;
        assert!((s.energy(&jobs) - (5.73 + 8.9 * rho1)).abs() < 1e-9);
        assert!((s.completion_time(JobId(2)).unwrap() - 4.0).abs() < 1e-12);
        assert!((s.completion_time(JobId(1)).unwrap() - (4.0 + 5.3 * rho1)).abs() < 1e-12);
    }

    #[test]
    fn resource_overflow_detected() {
        let jobs = JobSet::new(vec![
            Job::new(JobId(1), lambda1(), 0.0, 20.0, 1.0),
            Job::new(JobId(2), lambda2(), 0.0, 20.0, 1.0),
        ]);
        // Both on 2L1B concurrently: 4L2B > 2L2B.
        let mut s = Schedule::new();
        let mut seg = Segment::new(0.0, 3.0, vec![JobMapping::new(JobId(1), 0)]);
        seg.add_mapping(JobMapping::new(JobId(2), 0));
        s.push(seg);
        let platform = Platform::motivational_2l2b();
        match s.validate(&jobs, &platform, 0.0) {
            Err(ScheduleError::ResourceOverflow { segment: 0, .. }) => {}
            other => panic!("expected overflow, got {other:?}"),
        }
    }

    #[test]
    fn progress_mismatch_detected() {
        let jobs = JobSet::new(vec![Job::new(JobId(1), lambda1(), 0.0, 20.0, 1.0)]);
        let mut s = Schedule::new();
        // Only half the required work is scheduled.
        s.push(Segment::new(
            0.0,
            5.3 / 2.0,
            vec![JobMapping::new(JobId(1), 0)],
        ));
        let platform = Platform::motivational_2l2b();
        match s.validate(&jobs, &platform, 0.0) {
            Err(ScheduleError::ProgressMismatch { job, .. }) => assert_eq!(job, JobId(1)),
            other => panic!("expected progress mismatch, got {other:?}"),
        }
    }

    #[test]
    fn deadline_miss_detected() {
        let jobs = JobSet::new(vec![Job::new(JobId(1), lambda1(), 0.0, 5.0, 1.0)]);
        let mut s = Schedule::new();
        s.push(Segment::new(0.0, 5.3, vec![JobMapping::new(JobId(1), 0)]));
        let platform = Platform::motivational_2l2b();
        match s.validate(&jobs, &platform, 0.0) {
            Err(ScheduleError::DeadlineMiss { job, .. }) => assert_eq!(job, JobId(1)),
            other => panic!("expected deadline miss, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_mapping_detected_by_validate() {
        let jobs = JobSet::new(vec![Job::new(JobId(1), lambda1(), 0.0, 20.0, 1.0)]);
        // Bypass add_mapping's assertion by constructing the segment directly.
        let seg = Segment::new(
            0.0,
            5.3,
            vec![JobMapping::new(JobId(1), 0), JobMapping::new(JobId(1), 1)],
        );
        let s = Schedule::from_segments(vec![seg]);
        let platform = Platform::motivational_2l2b();
        assert!(matches!(
            s.validate(&jobs, &platform, 0.0),
            Err(ScheduleError::DuplicateMapping { .. })
        ));
    }

    #[test]
    fn unknown_job_and_bad_point_detected() {
        let jobs = JobSet::new(vec![Job::new(JobId(1), lambda1(), 0.0, 20.0, 1.0)]);
        let platform = Platform::motivational_2l2b();

        let s = Schedule::from_segments(vec![Segment::new(
            0.0,
            1.0,
            vec![JobMapping::new(JobId(9), 0)],
        )]);
        assert!(matches!(
            s.validate(&jobs, &platform, 0.0),
            Err(ScheduleError::UnknownJob { .. })
        ));

        let s = Schedule::from_segments(vec![Segment::new(
            0.0,
            1.0,
            vec![JobMapping::new(JobId(1), 5)],
        )]);
        assert!(matches!(
            s.validate(&jobs, &platform, 0.0),
            Err(ScheduleError::BadPoint { .. })
        ));
    }

    #[test]
    fn split_preserves_mappings_and_total_duration() {
        let seg = Segment::new(1.0, 4.0, vec![JobMapping::new(JobId(2), 0)]);
        let (a, b) = seg.split_at(2.5);
        assert_eq!(a.mappings(), seg.mappings());
        assert_eq!(b.mappings(), seg.mappings());
        assert!((a.duration() + b.duration() - seg.duration()).abs() < 1e-12);
    }

    #[test]
    fn split_segment_keeps_schedule_ordered() {
        let (mut s, _) = fig1c();
        s.split_segment(0, 2.0);
        assert_eq!(s.num_segments(), 3);
        assert!((s.segments()[0].end() - 2.0).abs() < 1e-12);
        assert!((s.segments()[1].start() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_segment_rejected() {
        let _ = Segment::new(1.0, 1.0, vec![]);
    }

    #[test]
    #[should_panic(expected = "overlaps schedule tail")]
    fn overlapping_push_rejected() {
        let mut s = Schedule::new();
        s.push(Segment::new(0.0, 2.0, vec![]));
        s.push(Segment::new(1.0, 3.0, vec![]));
    }

    #[test]
    fn schedule_with_gap_is_still_valid() {
        // A gap means every job is suspended — structurally fine.
        let jobs = JobSet::new(vec![Job::new(JobId(1), lambda1(), 0.0, 30.0, 1.0)]);
        let mut s = Schedule::new();
        s.push(Segment::new(0.0, 2.65, vec![JobMapping::new(JobId(1), 0)]));
        s.push(Segment::new(
            10.0,
            12.65,
            vec![JobMapping::new(JobId(1), 0)],
        ));
        let platform = Platform::motivational_2l2b();
        s.validate(&jobs, &platform, 0.0).unwrap();
    }

    #[test]
    fn energy_of_empty_schedule_is_zero() {
        let s = Schedule::new();
        let jobs = JobSet::default();
        assert_eq!(s.energy(&jobs), 0.0);
        assert!(s.end_time().is_none());
    }

    #[test]
    fn progress_of_unknown_job_is_zero() {
        let (s, jobs) = fig1c();
        assert_eq!(s.progress_of(JobId(42), &jobs), 0.0);
    }

    #[test]
    fn reconfiguration_across_segments_counts_progress_correctly() {
        // Job runs first on point 0, then reconfigures to point 1.
        let app = lambda1();
        let half0 = 5.3 / 2.0; // half the work on point 0
        let half1 = 8.1 / 2.0; // other half on point 1
        let jobs = JobSet::new(vec![Job::new(JobId(1), Arc::clone(&app), 0.0, 20.0, 1.0)]);
        let mut s = Schedule::new();
        s.push(Segment::new(0.0, half0, vec![JobMapping::new(JobId(1), 0)]));
        s.push(Segment::new(
            half0,
            half0 + half1,
            vec![JobMapping::new(JobId(1), 1)],
        ));
        let platform = Platform::motivational_2l2b();
        s.validate(&jobs, &platform, 0.0).unwrap();
        let expected = 8.9 / 2.0 + 10.9 / 2.0;
        assert!((s.energy(&jobs) - expected).abs() < 1e-9);
    }
}
