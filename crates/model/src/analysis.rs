//! Schedule analysis: quantifying what adaptivity buys.
//!
//! The paper argues for mapping segments via energy alone; these helpers
//! expose the mechanics — how often jobs are reconfigured or suspended,
//! how well cores are utilized — which the ablation reports use to explain
//! *why* the adaptive schedules win.

use amrm_platform::Platform;
use serde::{Deserialize, Serialize};

use crate::{JobId, JobSet, Schedule};

/// Per-job behavioural counters extracted from a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobBehaviour {
    /// The job.
    pub job: JobId,
    /// Number of segments the job runs in.
    pub segments: usize,
    /// Times the job switches operating points between its consecutive
    /// running segments.
    pub reconfigurations: usize,
    /// Times the job is suspended (a gap between two running segments, or
    /// between schedule start and its first running segment after its
    /// arrival).
    pub suspensions: usize,
    /// Total time the job spends running.
    pub running_time: f64,
    /// Completion time, if the job finishes in this schedule.
    pub completion: Option<f64>,
}

/// Whole-schedule statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Per-job counters in job-set order.
    pub jobs: Vec<JobBehaviour>,
    /// Average number of busy cores over the schedule span.
    pub avg_busy_cores: f64,
    /// Peak number of busy cores in any segment.
    pub peak_busy_cores: u32,
    /// Core-utilization per resource type: busy core-seconds over
    /// available core-seconds within the schedule span.
    pub utilization: Vec<f64>,
    /// Total schedule span (last end − first start), 0 for empty.
    pub span: f64,
}

impl ScheduleStats {
    /// Total reconfigurations across all jobs.
    pub fn total_reconfigurations(&self) -> usize {
        self.jobs.iter().map(|j| j.reconfigurations).sum()
    }

    /// Total suspensions across all jobs.
    pub fn total_suspensions(&self) -> usize {
        self.jobs.iter().map(|j| j.suspensions).sum()
    }
}

/// Computes behavioural statistics of `schedule` for `jobs` on `platform`.
///
/// # Examples
///
/// In the Fig. 1(c) schedule σ1 is suspended once and never reconfigured:
///
/// ```
/// use amrm_model::{analyze_schedule, Application, Job, JobId, JobMapping, JobSet,
///                  OperatingPoint, Schedule, Segment};
/// use amrm_platform::{Platform, ResourceVec};
///
/// let app = Application::shared(
///     "λ1",
///     vec![OperatingPoint::new(ResourceVec::from_slice(&[2, 1]), 5.3, 8.9)],
/// );
/// let jobs = JobSet::new(vec![Job::new(JobId(1), app, 0.0, 9.0, 0.8113)]);
/// let mut s = Schedule::new();
/// s.push(Segment::new(1.0, 4.0, vec![]));
/// s.push(Segment::new(4.0, 8.3, vec![JobMapping::new(JobId(1), 0)]));
/// let stats = analyze_schedule(&s, &jobs, &Platform::motivational_2l2b());
/// assert_eq!(stats.jobs[0].suspensions, 1);
/// assert_eq!(stats.jobs[0].reconfigurations, 0);
/// ```
pub fn analyze_schedule(schedule: &Schedule, jobs: &JobSet, platform: &Platform) -> ScheduleStats {
    let m = platform.num_types();
    let span = match (schedule.start_time(), schedule.end_time()) {
        (Some(a), Some(b)) => b - a,
        _ => 0.0,
    };

    let mut per_job = Vec::with_capacity(jobs.len());
    for job in jobs.iter() {
        let mut segments = 0usize;
        let mut reconfigurations = 0usize;
        let mut suspensions = 0usize;
        let mut running_time = 0.0;
        let mut last_point: Option<usize> = None;
        let mut last_end: Option<f64> = None;
        for seg in schedule.segments() {
            let Some(mp) = seg.mapping_for(job.id()) else {
                continue;
            };
            segments += 1;
            running_time += seg.duration();
            if let Some(p) = last_point {
                if p != mp.point {
                    reconfigurations += 1;
                }
            }
            match last_end {
                Some(end) if seg.start() > end + amrm_platform::EPS => suspensions += 1,
                None => {
                    // Gap between the job becoming available and first run.
                    let avail = job.arrival().max(schedule.start_time().unwrap_or(0.0));
                    if seg.start() > avail + amrm_platform::EPS {
                        suspensions += 1;
                    }
                }
                _ => {}
            }
            last_point = Some(mp.point);
            last_end = Some(seg.end());
        }
        per_job.push(JobBehaviour {
            job: job.id(),
            segments,
            reconfigurations,
            suspensions,
            running_time,
            completion: schedule.completion_time(job.id()),
        });
    }

    let mut busy_core_seconds = vec![0.0f64; m];
    let mut peak = 0u32;
    let mut busy_integral = 0.0;
    for seg in schedule.segments() {
        let demand = seg.demand(jobs, m);
        peak = peak.max(demand.total());
        busy_integral += f64::from(demand.total()) * seg.duration();
        for k in 0..m {
            busy_core_seconds[k] += f64::from(demand[k]) * seg.duration();
        }
    }
    let utilization = (0..m)
        .map(|k| {
            if span > 0.0 {
                busy_core_seconds[k] / (f64::from(platform.counts()[k]) * span)
            } else {
                0.0
            }
        })
        .collect();

    ScheduleStats {
        jobs: per_job,
        avg_busy_cores: if span > 0.0 {
            busy_integral / span
        } else {
            0.0
        },
        peak_busy_cores: peak,
        utilization,
        span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Application, Job, JobMapping, OperatingPoint, Segment};
    use amrm_platform::ResourceVec;

    fn two_point_app() -> crate::AppRef {
        Application::shared(
            "app",
            vec![
                OperatingPoint::new(ResourceVec::from_slice(&[2, 1]), 5.3, 8.9),
                OperatingPoint::new(ResourceVec::from_slice(&[1, 1]), 8.1, 10.9),
            ],
        )
    }

    #[test]
    fn reconfiguration_is_counted() {
        let jobs = JobSet::new(vec![Job::new(JobId(1), two_point_app(), 0.0, 20.0, 1.0)]);
        let mut s = Schedule::new();
        s.push(Segment::new(0.0, 2.65, vec![JobMapping::new(JobId(1), 0)]));
        s.push(Segment::new(2.65, 6.7, vec![JobMapping::new(JobId(1), 1)]));
        let stats = analyze_schedule(&s, &jobs, &Platform::motivational_2l2b());
        assert_eq!(stats.jobs[0].reconfigurations, 1);
        assert_eq!(stats.jobs[0].segments, 2);
        assert_eq!(stats.jobs[0].suspensions, 0);
    }

    #[test]
    fn suspension_gap_is_counted() {
        let jobs = JobSet::new(vec![Job::new(JobId(1), two_point_app(), 0.0, 30.0, 1.0)]);
        let mut s = Schedule::new();
        s.push(Segment::new(0.0, 2.0, vec![JobMapping::new(JobId(1), 0)]));
        s.push(Segment::new(2.0, 5.0, vec![]));
        s.push(Segment::new(5.0, 8.0, vec![JobMapping::new(JobId(1), 0)]));
        let stats = analyze_schedule(&s, &jobs, &Platform::motivational_2l2b());
        assert_eq!(stats.jobs[0].suspensions, 1);
        assert_eq!(stats.jobs[0].reconfigurations, 0);
    }

    #[test]
    fn initial_delay_counts_as_suspension() {
        let jobs = JobSet::new(vec![Job::new(JobId(1), two_point_app(), 0.0, 30.0, 1.0)]);
        let mut s = Schedule::new();
        s.push(Segment::new(0.0, 3.0, vec![]));
        s.push(Segment::new(3.0, 8.3, vec![JobMapping::new(JobId(1), 0)]));
        let stats = analyze_schedule(&s, &jobs, &Platform::motivational_2l2b());
        assert_eq!(stats.jobs[0].suspensions, 1);
    }

    #[test]
    fn utilization_and_peaks() {
        let jobs = JobSet::new(vec![Job::new(JobId(1), two_point_app(), 0.0, 20.0, 1.0)]);
        let mut s = Schedule::new();
        // 2L1B busy for the whole span on a 2L2B platform.
        s.push(Segment::new(0.0, 5.3, vec![JobMapping::new(JobId(1), 0)]));
        let stats = analyze_schedule(&s, &jobs, &Platform::motivational_2l2b());
        assert_eq!(stats.peak_busy_cores, 3);
        assert!((stats.avg_busy_cores - 3.0).abs() < 1e-9);
        assert!((stats.utilization[0] - 1.0).abs() < 1e-9); // both little busy
        assert!((stats.utilization[1] - 0.5).abs() < 1e-9); // 1 of 2 big busy
        assert!((stats.span - 5.3).abs() < 1e-9);
    }

    #[test]
    fn empty_schedule_has_zero_stats() {
        let stats = analyze_schedule(
            &Schedule::new(),
            &JobSet::default(),
            &Platform::motivational_2l2b(),
        );
        assert_eq!(stats.total_reconfigurations(), 0);
        assert_eq!(stats.peak_busy_cores, 0);
        assert_eq!(stats.span, 0.0);
    }

    #[test]
    fn running_time_sums_segments() {
        let jobs = JobSet::new(vec![Job::new(JobId(1), two_point_app(), 0.0, 30.0, 1.0)]);
        let mut s = Schedule::new();
        s.push(Segment::new(0.0, 2.0, vec![JobMapping::new(JobId(1), 0)]));
        s.push(Segment::new(4.0, 7.3, vec![JobMapping::new(JobId(1), 0)]));
        let stats = analyze_schedule(&s, &jobs, &Platform::motivational_2l2b());
        assert!((stats.jobs[0].running_time - 5.3).abs() < 1e-9);
        assert!((stats.jobs[0].completion.unwrap() - 7.3).abs() < 1e-9);
    }
}
