//! ASCII Gantt rendering of schedules (cf. Figure 1 of the paper).

use std::collections::HashMap;

use amrm_platform::Platform;

use crate::{JobId, JobSet, Schedule};

/// Options controlling [`render_gantt`].
#[derive(Debug, Clone)]
pub struct GanttOptions {
    /// Total number of timeline characters.
    pub width: usize,
    /// Character drawn for an idle core.
    pub idle: char,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            width: 64,
            idle: '.',
        }
    }
}

/// Renders a schedule as a per-core ASCII Gantt chart.
///
/// Each core of the platform becomes one row (cluster order reversed so the
/// "big" cluster appears on top, as in Figure 1); each job is drawn with a
/// letter `A`, `B`, … in job-set order. Core lanes are kept stable across
/// consecutive segments where possible. A legend and a time axis are
/// appended.
///
/// This is a presentation aid: the concrete core indices are chosen greedily
/// and carry no semantic weight (the model only constrains per-type counts).
///
/// # Examples
///
/// ```
/// use amrm_model::{render_gantt, Application, GanttOptions, Job, JobId, JobMapping, JobSet,
///                  OperatingPoint, Schedule, Segment};
/// use amrm_platform::{Platform, ResourceVec};
///
/// let app = Application::shared(
///     "λ",
///     vec![OperatingPoint::new(ResourceVec::from_slice(&[2, 1]), 3.0, 5.73)],
/// );
/// let jobs = JobSet::new(vec![Job::new(JobId(1), app, 0.0, 5.0, 1.0)]);
/// let mut s = Schedule::new();
/// s.push(Segment::new(0.0, 3.0, vec![JobMapping::new(JobId(1), 0)]));
/// let chart = render_gantt(&s, &jobs, &Platform::motivational_2l2b(), &GanttOptions::default());
/// assert!(chart.contains("A"));
/// ```
pub fn render_gantt(
    schedule: &Schedule,
    jobs: &JobSet,
    platform: &Platform,
    options: &GanttOptions,
) -> String {
    let mut out = String::new();
    let (Some(t0), Some(t1)) = (schedule.start_time(), schedule.end_time()) else {
        return "(empty schedule)\n".to_string();
    };
    let span = (t1 - t0).max(1e-12);
    let width = options.width.max(8);

    // Job symbols in job-set order: A, B, C, …
    let symbols: HashMap<JobId, char> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (j.id(), char::from(b'A' + (i % 26) as u8)))
        .collect();

    // Assign concrete core lanes per segment, keeping lanes stable.
    // lanes[k] has platform.counts()[k] entries; each holds Option<JobId>.
    let m = platform.num_types();
    let mut per_segment_lanes: Vec<Vec<Vec<Option<JobId>>>> = Vec::new();
    let mut prev: Vec<Vec<Option<JobId>>> = (0..m)
        .map(|k| vec![None; platform.counts()[k] as usize])
        .collect();
    for seg in schedule.segments() {
        let mut lanes: Vec<Vec<Option<JobId>>> = (0..m)
            .map(|k| vec![None; platform.counts()[k] as usize])
            .collect();
        for k in 0..m {
            // First pass: keep previously used lanes for continuing jobs.
            for mp in seg.mappings() {
                let Some(job) = jobs.get(mp.job) else {
                    continue;
                };
                let mut need = job.point(mp.point).resources()[k] as usize;
                for (lane, slot) in lanes[k].iter_mut().enumerate() {
                    if need == 0 {
                        break;
                    }
                    if prev[k][lane] == Some(mp.job) && slot.is_none() {
                        *slot = Some(mp.job);
                        need -= 1;
                    }
                }
            }
            // Second pass: fill remaining demand with free lanes.
            for mp in seg.mappings() {
                let Some(job) = jobs.get(mp.job) else {
                    continue;
                };
                let total = job.point(mp.point).resources()[k] as usize;
                let have = lanes[k].iter().filter(|s| **s == Some(mp.job)).count();
                let mut need = total.saturating_sub(have);
                for slot in lanes[k].iter_mut() {
                    if need == 0 {
                        break;
                    }
                    if slot.is_none() {
                        *slot = Some(mp.job);
                        need -= 1;
                    }
                }
            }
        }
        prev = lanes.clone();
        per_segment_lanes.push(lanes);
    }

    // Draw rows: clusters in reverse order, lanes in descending index.
    for k in (0..m).rev() {
        let count = platform.counts()[k] as usize;
        for lane in (0..count).rev() {
            let label = format!("{}{}", platform.core_type(k).name(), lane + 1);
            out.push_str(&format!("{label:>4} |"));
            for col in 0..width {
                let t = t0 + (col as f64 + 0.5) / width as f64 * span;
                let ch = schedule
                    .segments()
                    .iter()
                    .position(|s| t >= s.start() && t < s.end())
                    .and_then(|si| per_segment_lanes[si][k][lane])
                    .and_then(|id| symbols.get(&id).copied())
                    .unwrap_or(options.idle);
                out.push(ch);
            }
            out.push_str("|\n");
        }
    }
    // Time axis.
    out.push_str(&format!("{:>4} +", ""));
    out.push_str(&"-".repeat(width));
    out.push_str("+\n");
    out.push_str(&format!(
        "{:>5}{:<width$.2}{:.2}\n",
        "",
        t0,
        t1,
        width = width - 3
    ));
    // Legend.
    for job in jobs.iter() {
        out.push_str(&format!(
            "  {} = {} ({}), deadline {:.2}\n",
            symbols[&job.id()],
            job.id(),
            job.app().name(),
            job.deadline()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Application, Job, JobMapping, OperatingPoint, Segment};
    use amrm_platform::ResourceVec;

    fn fig1c_setup() -> (Schedule, JobSet, Platform) {
        let l1 = Application::shared(
            "λ1",
            vec![OperatingPoint::new(
                ResourceVec::from_slice(&[2, 1]),
                5.3,
                8.9,
            )],
        );
        let l2 = Application::shared(
            "λ2",
            vec![OperatingPoint::new(
                ResourceVec::from_slice(&[2, 1]),
                3.0,
                5.73,
            )],
        );
        let rho1 = 1.0 - 1.0 / 5.3;
        let jobs = JobSet::new(vec![
            Job::new(JobId(1), l1, 0.0, 9.0, rho1),
            Job::new(JobId(2), l2, 1.0, 5.0, 1.0),
        ]);
        let mut s = Schedule::new();
        s.push(Segment::new(1.0, 4.0, vec![JobMapping::new(JobId(2), 0)]));
        s.push(Segment::new(
            4.0,
            4.0 + 5.3 * rho1,
            vec![JobMapping::new(JobId(1), 0)],
        ));
        (s, jobs, Platform::motivational_2l2b())
    }

    #[test]
    fn renders_all_core_rows_and_legend() {
        let (s, jobs, p) = fig1c_setup();
        let chart = render_gantt(&s, &jobs, &p, &GanttOptions::default());
        for row in ["B2", "B1", "L2", "L1"] {
            assert!(chart.contains(row), "missing row {row} in:\n{chart}");
        }
        assert!(chart.contains("A = σ1"));
        assert!(chart.contains("B = σ2"));
    }

    #[test]
    fn both_jobs_appear_in_timeline() {
        let (s, jobs, p) = fig1c_setup();
        let chart = render_gantt(&s, &jobs, &p, &GanttOptions::default());
        let body: String = chart.lines().take(4).collect();
        assert!(body.contains('A'));
        assert!(body.contains('B'));
    }

    #[test]
    fn empty_schedule_renders_placeholder() {
        let s = Schedule::new();
        let jobs = JobSet::default();
        let p = Platform::motivational_2l2b();
        assert!(render_gantt(&s, &jobs, &p, &GanttOptions::default()).contains("empty"));
    }

    #[test]
    fn width_is_respected() {
        let (s, jobs, p) = fig1c_setup();
        let opts = GanttOptions {
            width: 32,
            idle: ' ',
        };
        let chart = render_gantt(&s, &jobs, &p, &opts);
        let first = chart.lines().next().unwrap();
        assert_eq!(first.len(), 4 + 2 + 32 + 1); // label + " |" + timeline + "|"
    }
}
