//! Applications and their design-time characterization tables.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::{is_pareto_front, OperatingPoint};

/// A multi-threaded application characterized at design time by a set of
/// Pareto-optimal operating points (cf. Table II of the paper).
///
/// Applications are cheap to share: the runtime manager and all schedulers
/// hold them behind [`Arc`] (see [`AppRef`]).
///
/// # Examples
///
/// ```
/// use amrm_model::{Application, OperatingPoint};
/// use amrm_platform::ResourceVec;
///
/// let app = Application::new(
///     "toy",
///     vec![
///         OperatingPoint::new(ResourceVec::from_slice(&[1, 0]), 10.0, 2.0),
///         OperatingPoint::new(ResourceVec::from_slice(&[0, 1]), 5.0, 7.55),
///     ],
/// );
/// assert_eq!(app.num_points(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    name: String,
    points: Vec<OperatingPoint>,
}

/// Shared handle to an [`Application`].
pub type AppRef = Arc<Application>;

impl Application {
    /// Creates an application from a list of operating points.
    ///
    /// The points are stored in the given order; indices into this list are
    /// the configuration identifiers `j` used by job mappings.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn new(name: impl Into<String>, points: Vec<OperatingPoint>) -> Self {
        assert!(
            !points.is_empty(),
            "application needs at least one operating point"
        );
        Application {
            name: name.into(),
            points,
        }
    }

    /// Creates an application and wraps it in an [`Arc`] in one step.
    pub fn shared(name: impl Into<String>, points: Vec<OperatingPoint>) -> AppRef {
        Arc::new(Application::new(name, points))
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operating points in configuration-index order.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Number of operating points `Nλ`.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// The operating point with configuration index `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn point(&self, j: usize) -> &OperatingPoint {
        &self.points[j]
    }

    /// Returns `true` if the stored points form a Pareto front (the paper's
    /// precondition on tables handed to the RM).
    pub fn is_pareto_filtered(&self) -> bool {
        is_pareto_front(&self.points)
    }

    /// Configuration indices sorted by increasing full-execution energy.
    pub fn indices_by_energy(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.points.len()).collect();
        idx.sort_by(|&a, &b| self.points[a].energy().total_cmp(&self.points[b].energy()));
        idx
    }

    /// The configuration index of the fastest operating point.
    pub fn fastest_point(&self) -> usize {
        (0..self.points.len())
            .min_by(|&a, &b| self.points[a].time().total_cmp(&self.points[b].time()))
            .expect("non-empty by construction")
    }

    /// The minimum execution time over all points.
    pub fn min_time(&self) -> f64 {
        self.points[self.fastest_point()].time()
    }
}

impl fmt::Display for Application {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} points)", self.name, self.points.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_platform::ResourceVec;

    fn app() -> Application {
        Application::new(
            "λ2",
            vec![
                OperatingPoint::new(ResourceVec::from_slice(&[1, 0]), 10.0, 2.00),
                OperatingPoint::new(ResourceVec::from_slice(&[2, 0]), 7.0, 2.87),
                OperatingPoint::new(ResourceVec::from_slice(&[0, 1]), 5.0, 7.55),
                OperatingPoint::new(ResourceVec::from_slice(&[2, 1]), 3.0, 5.73),
            ],
        )
    }

    #[test]
    fn indices_by_energy_sorted() {
        let a = app();
        let idx = a.indices_by_energy();
        assert_eq!(idx, vec![0, 1, 3, 2]);
        let energies: Vec<f64> = idx.iter().map(|&j| a.point(j).energy()).collect();
        assert!(energies.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn fastest_point_has_min_time() {
        let a = app();
        assert_eq!(a.fastest_point(), 3);
        assert!((a.min_time() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pareto_precondition_detected() {
        let a = app();
        assert!(a.is_pareto_filtered());
        let bad = Application::new(
            "bad",
            vec![
                OperatingPoint::new(ResourceVec::from_slice(&[1]), 5.0, 1.0),
                OperatingPoint::new(ResourceVec::from_slice(&[1]), 6.0, 2.0),
            ],
        );
        assert!(!bad.is_pareto_filtered());
    }

    #[test]
    #[should_panic(expected = "at least one operating point")]
    fn empty_table_rejected() {
        let _ = Application::new("none", vec![]);
    }

    #[test]
    fn shared_returns_arc() {
        let a = Application::shared("x", app().points().to_vec());
        let b = Arc::clone(&a);
        assert_eq!(a.name(), b.name());
    }

    #[test]
    fn serde_roundtrip() {
        let a = app();
        let json = serde_json::to_string(&a).unwrap();
        let back: Application = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
