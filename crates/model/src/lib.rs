//! System model for adaptable multi-application mapping.
//!
//! This crate implements Section IV of *"Energy-efficient Runtime Resource
//! Management for Adaptable Multi-application Mapping"* (Khasanov &
//! Castrillon, DATE 2020):
//!
//! * [`OperatingPoint`] — a design-time configuration `c = ⟨θ, τ, ξ⟩`;
//! * [`pareto_filter`] — the design-time Pareto filtering the RM relies on;
//! * [`Application`] — an application `λ` with its point table;
//! * [`Job`]/[`JobSet`] — requests `σ = ⟨α, δ, λ, ρ⟩` visible to the RM;
//! * [`Segment`]/[`Schedule`] — the mapping-segment schedule `κ`,
//!   with the energy objective (2a) and validation of constraints
//!   (2b)–(2e);
//! * [`render_gantt`] — ASCII rendering in the style of Figure 1.
//!
//! # Examples
//!
//! ```
//! use amrm_model::{Application, Job, JobId, JobSet, OperatingPoint};
//! use amrm_platform::ResourceVec;
//!
//! let app = Application::shared(
//!     "λ2",
//!     vec![OperatingPoint::new(ResourceVec::from_slice(&[2, 1]), 3.0, 5.73)],
//! );
//! let jobs = JobSet::new(vec![Job::new(JobId(2), app, 1.0, 5.0, 1.0)]);
//! assert!(jobs.get(JobId(2)).unwrap().meets_deadline_with(0, 1.0));
//! ```

mod analysis;
mod application;
mod error;
mod gantt;
mod job;
mod pareto;
mod point;
mod schedule;

pub use crate::analysis::{analyze_schedule, JobBehaviour, ScheduleStats};
pub use crate::application::{AppRef, Application};
pub use crate::error::ScheduleError;
pub use crate::gantt::{render_gantt, GanttOptions};
pub use crate::job::{Job, JobId, JobSet};
pub use crate::pareto::{is_pareto_front, pareto_filter};
pub use crate::point::OperatingPoint;
pub use crate::schedule::{JobMapping, Schedule, Segment, PROGRESS_TOL};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Application>();
        assert_send_sync::<Job>();
        assert_send_sync::<JobSet>();
        assert_send_sync::<Schedule>();
        assert_send_sync::<ScheduleError>();
    }
}
