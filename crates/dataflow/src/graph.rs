//! Dataflow process networks.
//!
//! The paper's applications are KPN-style dataflow programs ("in which each
//! thread performs computations during the whole execution of the
//! application"). We model them as graphs of processes connected by FIFO
//! channels; one *iteration* fires every process once.

use serde::{Deserialize, Serialize};

/// Identifier of a process within one [`DataflowGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcessId(pub usize);

/// A dataflow process: a named computation with a per-iteration workload in
/// baseline cycles (cycles on a reference core with IPC factor 1.0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Process {
    name: String,
    work_cycles: f64,
}

impl Process {
    /// The process name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Baseline cycles consumed per firing.
    pub fn work_cycles(&self) -> f64 {
        self.work_cycles
    }
}

/// A FIFO channel between two processes carrying `bytes` per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// Producing process.
    pub src: ProcessId,
    /// Consuming process.
    pub dst: ProcessId,
    /// Bytes transferred per iteration.
    pub bytes: f64,
}

/// A dataflow application graph.
///
/// The graph must be acyclic (self-timed execution of one iteration follows
/// topological order; pipelining across iterations is handled by the
/// simulator).
///
/// # Examples
///
/// ```
/// use amrm_dataflow::DataflowGraph;
///
/// let mut g = DataflowGraph::new("pipeline");
/// let a = g.add_process("src", 1.0e9);
/// let b = g.add_process("sink", 2.0e9);
/// g.connect(a, b, 64.0 * 1024.0);
/// assert_eq!(g.num_processes(), 2);
/// assert!(g.topological_order().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataflowGraph {
    name: String,
    processes: Vec<Process>,
    channels: Vec<Channel>,
}

impl DataflowGraph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        DataflowGraph {
            name: name.into(),
            processes: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph (used for input-size variants).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a process with the given per-iteration workload.
    ///
    /// # Panics
    ///
    /// Panics if `work_cycles` is not strictly positive.
    pub fn add_process(&mut self, name: impl Into<String>, work_cycles: f64) -> ProcessId {
        assert!(work_cycles > 0.0, "process workload must be positive");
        self.processes.push(Process {
            name: name.into(),
            work_cycles,
        });
        ProcessId(self.processes.len() - 1)
    }

    /// Adds a channel carrying `bytes` per iteration from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist, on self-loops, or if
    /// `bytes` is negative.
    pub fn connect(&mut self, src: ProcessId, dst: ProcessId, bytes: f64) {
        assert!(src.0 < self.processes.len(), "unknown source process");
        assert!(dst.0 < self.processes.len(), "unknown destination process");
        assert!(src != dst, "self-loop channels are not allowed");
        assert!(bytes >= 0.0, "channel payload must be non-negative");
        self.channels.push(Channel { src, dst, bytes });
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// The processes, indexable by [`ProcessId`].
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// The channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Incoming channels of `p`.
    pub fn predecessors(&self, p: ProcessId) -> impl Iterator<Item = &Channel> {
        self.channels.iter().filter(move |c| c.dst == p)
    }

    /// Total baseline cycles of one iteration.
    pub fn total_work(&self) -> f64 {
        self.processes.iter().map(Process::work_cycles).sum()
    }

    /// A topological order of the processes, or `None` if the graph has a
    /// cycle.
    pub fn topological_order(&self) -> Option<Vec<ProcessId>> {
        let n = self.processes.len();
        let mut indegree = vec![0usize; n];
        for c in &self.channels {
            indegree[c.dst.0] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(ProcessId(i));
            for c in &self.channels {
                if c.src.0 == i {
                    indegree[c.dst.0] -= 1;
                    if indegree[c.dst.0] == 0 {
                        queue.push(c.dst.0);
                    }
                }
            }
        }
        (order.len() == n).then(|| {
            order.sort_by_key(|p| topo_rank(self, *p));
            order
        })
    }

    /// Returns a copy with all workloads and payloads scaled by `factor`
    /// (modelling a different input size).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn scaled(&self, factor: f64) -> DataflowGraph {
        assert!(factor > 0.0, "scale factor must be positive");
        DataflowGraph {
            name: self.name.clone(),
            processes: self
                .processes
                .iter()
                .map(|p| Process {
                    name: p.name.clone(),
                    work_cycles: p.work_cycles * factor,
                })
                .collect(),
            channels: self
                .channels
                .iter()
                .map(|c| Channel {
                    src: c.src,
                    dst: c.dst,
                    bytes: c.bytes * factor,
                })
                .collect(),
        }
    }
}

/// Longest-path rank used to produce a stable topological order.
fn topo_rank(g: &DataflowGraph, p: ProcessId) -> usize {
    fn rank(g: &DataflowGraph, p: ProcessId, memo: &mut [Option<usize>]) -> usize {
        if let Some(r) = memo[p.0] {
            return r;
        }
        let r = g
            .predecessors(p)
            .map(|c| rank(g, c.src, memo) + 1)
            .max()
            .unwrap_or(0);
        memo[p.0] = Some(r);
        r
    }
    let mut memo = vec![None; g.num_processes()];
    rank(g, p, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DataflowGraph {
        let mut g = DataflowGraph::new("diamond");
        let a = g.add_process("a", 1.0e9);
        let b = g.add_process("b", 2.0e9);
        let c = g.add_process("c", 2.0e9);
        let d = g.add_process("d", 1.0e9);
        g.connect(a, b, 1024.0);
        g.connect(a, c, 1024.0);
        g.connect(b, d, 512.0);
        g.connect(c, d, 512.0);
        g
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order().unwrap();
        let pos = |p: ProcessId| order.iter().position(|&q| q == p).unwrap();
        for c in g.channels() {
            assert!(pos(c.src) < pos(c.dst), "{:?} before {:?}", c.src, c.dst);
        }
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = DataflowGraph::new("cyclic");
        let a = g.add_process("a", 1.0e9);
        let b = g.add_process("b", 1.0e9);
        g.connect(a, b, 1.0);
        g.connect(b, a, 1.0);
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn scaled_multiplies_work_and_bytes() {
        let g = diamond().scaled(2.0);
        assert!((g.total_work() - 12.0e9).abs() < 1.0);
        assert!((g.channels()[0].bytes - 2048.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut g = DataflowGraph::new("bad");
        let a = g.add_process("a", 1.0e9);
        g.connect(a, a, 1.0);
    }

    #[test]
    #[should_panic(expected = "workload must be positive")]
    fn zero_work_rejected() {
        let mut g = DataflowGraph::new("bad");
        g.add_process("a", 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown destination")]
    fn dangling_edge_rejected() {
        let mut g = DataflowGraph::new("bad");
        let a = g.add_process("a", 1.0e9);
        g.connect(a, ProcessId(7), 1.0);
    }

    #[test]
    fn predecessors_lists_incoming_edges() {
        let g = diamond();
        let preds: Vec<_> = g.predecessors(ProcessId(3)).map(|c| c.src).collect();
        assert_eq!(preds.len(), 2);
        assert!(preds.contains(&ProcessId(1)) && preds.contains(&ProcessId(2)));
    }
}
