//! Dataflow application substrate: the design-time side of the paper.
//!
//! The paper characterizes real dataflow applications by exhaustively
//! benchmarking them on an Odroid XU4. That hardware loop is replaced here
//! by a simulation substrate:
//!
//! * [`DataflowGraph`] — KPN-style process networks;
//! * [`simulate`] — self-timed, list-scheduled execution on a core
//!   allocation with an active/idle energy model;
//! * [`place`] — LPT process placement;
//! * [`characterize`] — allocation sweep + Pareto filter producing the
//!   operating-point tables (`⟨θ, τ, ξ⟩`) the runtime manager consumes;
//! * [`apps`] — the paper's three benchmark applications (speaker
//!   recognition, audio filter, pedestrian recognition) with matching
//!   process counts and topology.
//!
//! # Examples
//!
//! ```
//! use amrm_dataflow::{apps, characterize, CharacterizeConfig};
//! use amrm_platform::Platform;
//!
//! let app = characterize(
//!     &apps::pedestrian_recognition(),
//!     &Platform::odroid_xu4(),
//!     &CharacterizeConfig::default(),
//! );
//! assert!(app.is_pareto_filtered());
//! ```

pub mod apps;
mod characterize;
mod dvfs;
mod graph;
mod simulate;

pub use crate::characterize::{all_allocations, characterize, CharacterizeConfig};
pub use crate::dvfs::{characterize_dvfs, frequency_variants, odroid_xu4_dvfs};
pub use crate::graph::{Channel, DataflowGraph, Process, ProcessId};
pub use crate::simulate::{
    expand_cores, place, simulate, simulate_with_placement, SimConfig, SimResult,
};
