//! DVFS-aware characterization (extension beyond the paper).
//!
//! The paper pins cluster frequencies (1.5/1.8 GHz) and cites frequency
//! selection as orthogonal related work. The platform model already
//! carries alternative [`FrequencyLevel`]s; this module sweeps them during
//! characterization, producing richer Pareto fronts in which slow/frugal
//! points come from down-clocked clusters rather than only from smaller
//! allocations.

use amrm_model::{pareto_filter, AppRef, Application, OperatingPoint};
use amrm_platform::{CoreType, FrequencyLevel, Platform, PlatformBuilder};

use crate::{all_allocations, simulate, CharacterizeConfig, DataflowGraph};

/// An Odroid-XU4-like platform with three DVFS levels per cluster.
///
/// Power scales roughly with `f·V²`; the level tables below use the
/// published big.LITTLE shape (power grows super-linearly with frequency).
pub fn odroid_xu4_dvfs() -> Platform {
    let little = CoreType::new("A7", 1.5e9, 1.0, 0.45, 0.045)
        .with_dvfs_level(FrequencyLevel::new(1.0e9, 0.22, 0.030))
        .with_dvfs_level(FrequencyLevel::new(0.6e9, 0.10, 0.020));
    let big = CoreType::new("A15", 1.8e9, 1.4, 1.60, 0.16)
        .with_dvfs_level(FrequencyLevel::new(1.2e9, 0.72, 0.10))
        .with_dvfs_level(FrequencyLevel::new(0.8e9, 0.33, 0.06));
    PlatformBuilder::new("odroid-xu4-dvfs")
        .cluster(little, 4)
        .cluster(big, 2)
        .cluster(CoreType::new("A15", 1.8e9, 1.4, 1.60, 0.16), 2)
        .build()
}

/// Enumerates per-cluster frequency assignments of `platform` (the pinned
/// level plus every registered DVFS level, independently per cluster) and
/// returns one re-pinned platform per combination.
pub fn frequency_variants(platform: &Platform) -> Vec<Platform> {
    let mut variants: Vec<Vec<CoreType>> = vec![Vec::new()];
    for t in platform.core_types() {
        let mut levels = vec![t.level().clone()];
        levels.extend(t.dvfs_levels().iter().cloned());
        let mut next = Vec::with_capacity(variants.len() * levels.len());
        for prefix in &variants {
            for level in &levels {
                let mut row = prefix.clone();
                row.push(t.at_level(level.clone()));
                next.push(row);
            }
        }
        variants = next;
    }
    variants
        .into_iter()
        .map(|types| {
            Platform::new(
                platform.name().to_string(),
                types,
                platform.counts().clone(),
            )
        })
        .collect()
}

/// Characterizes `graph` over allocations × per-cluster frequency levels.
///
/// The returned table uses the *same* resource arity as `platform`: a
/// point records how many cores of each cluster it occupies; the frequency
/// chosen at characterization time is folded into its time/energy. (The
/// runtime manager remains frequency-oblivious, exactly as in the paper
/// where tables came from fixed-frequency measurements.)
///
/// # Examples
///
/// ```
/// use amrm_dataflow::{apps, characterize, characterize_dvfs, odroid_xu4_dvfs, CharacterizeConfig};
///
/// let platform = odroid_xu4_dvfs();
/// let fixed = characterize(&apps::pedestrian_recognition(), &platform, &CharacterizeConfig::default());
/// let dvfs = characterize_dvfs(&apps::pedestrian_recognition(), &platform, &CharacterizeConfig::default());
/// assert!(dvfs.num_points() >= fixed.num_points());
/// ```
pub fn characterize_dvfs(
    graph: &DataflowGraph,
    platform: &Platform,
    config: &CharacterizeConfig,
) -> AppRef {
    let mut points = Vec::new();
    for variant in frequency_variants(platform) {
        for alloc in all_allocations(&variant) {
            if !config.include_oversized && alloc.total() as usize > graph.num_processes() {
                continue;
            }
            let r = simulate(graph, &variant, &alloc, &config.sim);
            points.push(OperatingPoint::new(alloc, r.makespan, r.energy));
        }
    }
    Application::shared(graph.name(), pareto_filter(points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    #[test]
    fn variant_count_is_product_of_levels() {
        let platform = odroid_xu4_dvfs();
        // Clusters: 3 levels × 3 levels × 1 level = 9 variants.
        assert_eq!(frequency_variants(&platform).len(), 9);
        let fixed = Platform::odroid_xu4();
        assert_eq!(frequency_variants(&fixed).len(), 1);
    }

    #[test]
    fn variants_preserve_counts_and_arity() {
        let platform = odroid_xu4_dvfs();
        for v in frequency_variants(&platform) {
            assert_eq!(v.counts(), platform.counts());
            assert_eq!(v.num_types(), platform.num_types());
        }
    }

    #[test]
    fn dvfs_front_is_a_superset_quality_wise() {
        let platform = odroid_xu4_dvfs();
        let cfg = CharacterizeConfig::default();
        let app = apps::pedestrian_recognition();
        let fixed = crate::characterize(&app, &platform, &cfg);
        let dvfs = characterize_dvfs(&app, &platform, &cfg);
        assert!(dvfs.is_pareto_filtered());
        // Down-clocking opens strictly more frugal operating points.
        let min_fixed = fixed
            .points()
            .iter()
            .map(|p| p.energy())
            .fold(f64::INFINITY, f64::min);
        let min_dvfs = dvfs
            .points()
            .iter()
            .map(|p| p.energy())
            .fold(f64::INFINITY, f64::min);
        assert!(min_dvfs <= min_fixed + 1e-9);
        assert!(dvfs.num_points() >= fixed.num_points());
    }

    #[test]
    fn dvfs_tables_remain_usable_by_the_scheduler_stack() {
        // Resource arity must match the platform so the RM can use them.
        let platform = odroid_xu4_dvfs();
        let app = characterize_dvfs(
            &apps::audio_filter(),
            &platform,
            &CharacterizeConfig::default(),
        );
        for p in app.points() {
            assert_eq!(p.resources().num_types(), platform.num_types());
            assert!(platform.can_fit(p.resources()));
        }
    }
}
