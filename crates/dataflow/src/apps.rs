//! The three benchmark applications of the paper's evaluation.
//!
//! The paper uses "an algorithm of speaker recognition with 8 processes, an
//! audio filter — a stereo frequency filter with 8 processes — and an
//! algorithm of pedestrian recognition with 6 processes, provided by
//! Silexica". The originals are proprietary; the graphs below reproduce
//! their published structure (process counts, pipeline/fork-join topology)
//! with per-process workloads tuned so that single-little-core execution
//! times and big/little energy ratios land in the range implied by
//! Table II.

use amrm_model::AppRef;
use amrm_platform::Platform;

use crate::{characterize, CharacterizeConfig, DataflowGraph};

/// Speaker recognition, 8 processes: an MFCC/GMM pipeline
/// (cf. Bouraoui et al., PARMA-DITAM'19).
pub fn speaker_recognition() -> DataflowGraph {
    let mut g = DataflowGraph::new("speaker_recognition");
    let src = g.add_process("audio_src", 0.3e8);
    let pre = g.add_process("preemphasis", 0.6e8);
    let frame = g.add_process("framing", 0.7e8);
    let fft = g.add_process("fft", 2.2e8);
    let mel = g.add_process("mel_filterbank", 1.2e8);
    let dct = g.add_process("dct_mfcc", 1.0e8);
    let gmm = g.add_process("gmm_scoring", 2.0e8);
    let dec = g.add_process("decision", 0.4e8);
    let frame_bytes = 64.0 * 1024.0;
    g.connect(src, pre, frame_bytes);
    g.connect(pre, frame, frame_bytes);
    g.connect(frame, fft, frame_bytes);
    g.connect(fft, mel, frame_bytes / 2.0);
    g.connect(mel, dct, 16.0 * 1024.0);
    g.connect(dct, gmm, 8.0 * 1024.0);
    g.connect(gmm, dec, 1024.0);
    g
}

/// Audio filter, 8 processes: a stereo split into two parallel 3-stage
/// biquad chains merged back (cf. the Tetris benchmark set).
pub fn audio_filter() -> DataflowGraph {
    let mut g = DataflowGraph::new("audio_filter");
    let split = g.add_process("split", 0.3e8);
    let l1 = g.add_process("left_stage1", 0.8e8);
    let l2 = g.add_process("left_stage2", 0.8e8);
    let l3 = g.add_process("left_stage3", 0.8e8);
    let r1 = g.add_process("right_stage1", 0.8e8);
    let r2 = g.add_process("right_stage2", 0.8e8);
    let r3 = g.add_process("right_stage3", 0.8e8);
    let merge = g.add_process("merge", 0.5e8);
    let buf = 48.0 * 1024.0;
    g.connect(split, l1, buf);
    g.connect(l1, l2, buf);
    g.connect(l2, l3, buf);
    g.connect(split, r1, buf);
    g.connect(r1, r2, buf);
    g.connect(r2, r3, buf);
    g.connect(l3, merge, buf);
    g.connect(r3, merge, buf);
    g
}

/// Pedestrian recognition, 6 processes: a HOG/SVM detection pipeline.
pub fn pedestrian_recognition() -> DataflowGraph {
    let mut g = DataflowGraph::new("pedestrian_recognition");
    let cap = g.add_process("capture", 0.4e8);
    let resize = g.add_process("resize", 0.5e8);
    let grad = g.add_process("gradients", 0.9e8);
    let hog = g.add_process("hog_descriptor", 1.3e8);
    let svm = g.add_process("svm_classify", 0.8e8);
    let nms = g.add_process("non_max_suppression", 0.3e8);
    let img = 512.0 * 1024.0;
    g.connect(cap, resize, img);
    g.connect(resize, grad, img / 2.0);
    g.connect(grad, hog, img / 4.0);
    g.connect(hog, svm, 64.0 * 1024.0);
    g.connect(svm, nms, 8.0 * 1024.0);
    g
}

/// The three applications in paper order.
pub fn all_graphs() -> Vec<DataflowGraph> {
    vec![
        speaker_recognition(),
        audio_filter(),
        pedestrian_recognition(),
    ]
}

/// Input-size scale factors used by the benchmark suite, mirroring the
/// paper's "input data of different sizes".
pub const INPUT_SCALES: [(&str, f64); 3] = [("S", 0.6), ("M", 1.0), ("L", 1.6)];

/// Characterizes every application at every input size on `platform`,
/// returning one Pareto-filtered [`Application`](amrm_model::Application)
/// per (app, input-size) pair — 9 variants in total, named e.g.
/// `"audio_filter#L"`.
pub fn benchmark_suite(platform: &Platform) -> Vec<AppRef> {
    let config = CharacterizeConfig::default();
    let mut out = Vec::new();
    for graph in all_graphs() {
        for (tag, scale) in INPUT_SCALES {
            let mut variant = graph.scaled(scale);
            variant.set_name(format!("{}#{}", graph.name(), tag));
            out.push(characterize(&variant, platform, &config));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_platform::ResourceVec;

    #[test]
    fn process_counts_match_the_paper() {
        assert_eq!(speaker_recognition().num_processes(), 8);
        assert_eq!(audio_filter().num_processes(), 8);
        assert_eq!(pedestrian_recognition().num_processes(), 6);
    }

    #[test]
    fn all_graphs_are_acyclic() {
        for g in all_graphs() {
            assert!(g.topological_order().is_some(), "{} has a cycle", g.name());
        }
    }

    #[test]
    fn single_little_core_times_are_in_table_ii_range() {
        // Table II's full-execution times are 2–17 s; our graphs at default
        // iterations must land in the same order of magnitude.
        let platform = Platform::odroid_xu4();
        for g in all_graphs() {
            let r = crate::simulate(
                &g,
                &platform,
                &ResourceVec::from_slice(&[1, 0]),
                &crate::SimConfig::default(),
            );
            assert!(
                r.makespan > 4.0 && r.makespan < 30.0,
                "{}: {} s",
                g.name(),
                r.makespan
            );
        }
    }

    #[test]
    fn big_little_speed_ratio_is_realistic() {
        // Table II implies big ≈ 1.5–2× faster than little.
        let platform = Platform::odroid_xu4();
        for g in all_graphs() {
            let little = crate::simulate(
                &g,
                &platform,
                &ResourceVec::from_slice(&[1, 0]),
                &crate::SimConfig::default(),
            );
            let big = crate::simulate(
                &g,
                &platform,
                &ResourceVec::from_slice(&[0, 1]),
                &crate::SimConfig::default(),
            );
            let ratio = little.makespan / big.makespan;
            assert!(ratio > 1.3 && ratio < 2.5, "{}: ratio {ratio}", g.name());
        }
    }

    #[test]
    fn benchmark_suite_has_nine_variants_with_distinct_names() {
        let platform = Platform::odroid_xu4();
        let suite = benchmark_suite(&platform);
        assert_eq!(suite.len(), 9);
        let mut names: Vec<&str> = suite.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
        for app in &suite {
            assert!(app.is_pareto_filtered());
            assert!(app.num_points() >= 3, "{} too small", app.name());
        }
    }

    #[test]
    fn suite_point_counts_are_in_paper_ballpark() {
        // The paper reports 28–36 Pareto configurations per application
        // aggregated over input sizes; per variant that is ~9–12.
        let platform = Platform::odroid_xu4();
        let suite = benchmark_suite(&platform);
        let total: usize = suite.iter().map(|a| a.num_points()).sum();
        assert!(
            (27..=150).contains(&total),
            "total Pareto points {total} out of plausible range"
        );
    }
}
