//! Self-timed execution of a dataflow graph on an allocated set of cores.
//!
//! This is the design-time benchmarking substrate that replaces the paper's
//! physical Odroid XU4 measurements: a discrete-event, list-scheduled
//! simulation producing execution time and energy for a given core
//! allocation.

use amrm_platform::{Platform, ResourceVec};

use crate::{DataflowGraph, ProcessId};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Graph iterations executed (the "input size" in firings).
    pub iterations: usize,
    /// Inter-core channel bandwidth in bytes/second.
    pub channel_bandwidth: f64,
    /// Fixed per-transfer latency between distinct cores, in seconds.
    pub channel_latency: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            iterations: 32,
            channel_bandwidth: 2.0e9,
            channel_latency: 5.0e-6,
        }
    }
}

/// Result of simulating one allocation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// End-to-end execution time in seconds.
    pub makespan: f64,
    /// Busy time per allocated core, in seconds.
    pub busy: Vec<f64>,
    /// Energy consumed by the allocated cores (active + idle), in joules.
    pub energy: f64,
    /// Core-type index of each allocated core.
    pub core_types: Vec<usize>,
    /// The process-to-core placement that was simulated.
    pub placement: Vec<usize>,
}

/// Places processes onto the allocated cores with a longest-processing-time
/// greedy: heaviest process first, each onto the core that finishes it
/// earliest given current load and core speed.
pub fn place(graph: &DataflowGraph, platform: &Platform, allocation: &ResourceVec) -> Vec<usize> {
    let cores = expand_cores(platform, allocation);
    assert!(
        !cores.is_empty(),
        "allocation must contain at least one core"
    );
    let rates: Vec<f64> = cores
        .iter()
        .map(|&k| platform.core_type(k).effective_rate_hz())
        .collect();

    let mut order: Vec<usize> = (0..graph.num_processes()).collect();
    order.sort_by(|&a, &b| {
        graph.processes()[b]
            .work_cycles()
            .total_cmp(&graph.processes()[a].work_cycles())
    });

    let mut load = vec![0.0f64; cores.len()];
    let mut placement = vec![0usize; graph.num_processes()];
    for p in order {
        let work = graph.processes()[p].work_cycles();
        let best = (0..cores.len())
            .min_by(|&a, &b| (load[a] + work / rates[a]).total_cmp(&(load[b] + work / rates[b])))
            .expect("non-empty core list");
        placement[p] = best;
        load[best] += work / rates[best];
    }
    placement
}

/// Expands an allocation vector into a list of core-type indices, one per
/// allocated core.
pub fn expand_cores(platform: &Platform, allocation: &ResourceVec) -> Vec<usize> {
    assert_eq!(
        allocation.num_types(),
        platform.num_types(),
        "allocation arity must match platform"
    );
    assert!(
        allocation.fits_within(platform.counts()),
        "allocation exceeds platform resources"
    );
    let mut cores = Vec::new();
    for (k, n) in allocation.iter().enumerate() {
        for _ in 0..n {
            cores.push(k);
        }
    }
    cores
}

/// Simulates `config.iterations` iterations of `graph` on `allocation`.
///
/// Execution is self-timed: a firing starts once its predecessors' firings
/// of the same iteration have finished (plus channel delay when crossing
/// cores), its own previous firing has finished, and its core is free.
/// Consecutive iterations pipeline naturally across cores.
///
/// # Panics
///
/// Panics if the graph is cyclic or the allocation is empty/oversized.
pub fn simulate(
    graph: &DataflowGraph,
    platform: &Platform,
    allocation: &ResourceVec,
    config: &SimConfig,
) -> SimResult {
    let topo = graph
        .topological_order()
        .expect("dataflow graph must be acyclic");
    let placement = place(graph, platform, allocation);
    simulate_with_placement(graph, platform, allocation, &placement, &topo, config)
}

/// Simulates with an explicit process-to-core placement (exposed for
/// placement-policy experiments).
pub fn simulate_with_placement(
    graph: &DataflowGraph,
    platform: &Platform,
    allocation: &ResourceVec,
    placement: &[usize],
    topo: &[ProcessId],
    config: &SimConfig,
) -> SimResult {
    assert!(config.iterations > 0, "at least one iteration required");
    let cores = expand_cores(platform, allocation);
    let rates: Vec<f64> = cores
        .iter()
        .map(|&k| platform.core_type(k).effective_rate_hz())
        .collect();

    let n = graph.num_processes();
    let mut core_free = vec![0.0f64; cores.len()];
    let mut busy = vec![0.0f64; cores.len()];
    let mut finish_prev = vec![0.0f64; n]; // finish of each process's previous firing
    let mut finish_cur = vec![0.0f64; n];

    let mut makespan: f64 = 0.0;
    for _iter in 0..config.iterations {
        for &p in topo {
            let core = placement[p.0];
            let mut ready = finish_prev[p.0].max(core_free[core]);
            for ch in graph.predecessors(p) {
                let mut arrival = finish_cur[ch.src.0];
                if placement[ch.src.0] != core {
                    arrival += config.channel_latency + ch.bytes / config.channel_bandwidth;
                }
                ready = ready.max(arrival);
            }
            let exec = graph.processes()[p.0].work_cycles() / rates[core];
            let end = ready + exec;
            finish_cur[p.0] = end;
            core_free[core] = end;
            busy[core] += exec;
            makespan = makespan.max(end);
        }
        finish_prev.copy_from_slice(&finish_cur);
    }

    let mut energy = 0.0;
    for (c, &k) in cores.iter().enumerate() {
        let t = platform.core_type(k);
        energy += t.active_power_w() * busy[c] + t.idle_power_w() * (makespan - busy[c]);
    }

    SimResult {
        makespan,
        busy,
        energy,
        core_types: cores,
        placement: placement.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(stages: usize, work: f64) -> DataflowGraph {
        let mut g = DataflowGraph::new("chain");
        let mut prev = None;
        for i in 0..stages {
            let p = g.add_process(format!("s{i}"), work);
            if let Some(q) = prev {
                g.connect(q, p, 4096.0);
            }
            prev = Some(p);
        }
        g
    }

    #[test]
    fn single_core_makespan_is_serial_work() {
        let g = chain(4, 1.5e9);
        let platform = Platform::odroid_xu4();
        let cfg = SimConfig {
            iterations: 10,
            ..SimConfig::default()
        };
        let r = simulate(&g, &platform, &ResourceVec::from_slice(&[1, 0]), &cfg);
        // 4 × 1.5e9 cycles @ 1.5 GHz = 4 s per iteration, 10 iterations.
        assert!((r.makespan - 40.0).abs() < 1e-6);
        assert!((r.busy[0] - 40.0).abs() < 1e-6);
    }

    #[test]
    fn pipeline_speeds_up_with_more_cores() {
        let g = chain(4, 1.5e9);
        let platform = Platform::odroid_xu4();
        let cfg = SimConfig {
            iterations: 16,
            ..SimConfig::default()
        };
        let one = simulate(&g, &platform, &ResourceVec::from_slice(&[1, 0]), &cfg);
        let four = simulate(&g, &platform, &ResourceVec::from_slice(&[4, 0]), &cfg);
        // A 4-stage pipeline on 4 cores approaches 4× throughput.
        assert!(four.makespan < one.makespan / 2.5);
    }

    #[test]
    fn big_core_is_faster_and_hungrier() {
        let g = chain(2, 2.0e9);
        let platform = Platform::odroid_xu4();
        let cfg = SimConfig::default();
        let little = simulate(&g, &platform, &ResourceVec::from_slice(&[1, 0]), &cfg);
        let big = simulate(&g, &platform, &ResourceVec::from_slice(&[0, 1]), &cfg);
        assert!(big.makespan < little.makespan);
        assert!(big.energy > little.energy);
    }

    #[test]
    fn energy_accounts_idle_cores() {
        // Two cores, but a serial chain keeps one mostly idle: energy must
        // exceed the single-core energy at equal makespan contributions.
        let g = chain(3, 1.0e9);
        let platform = Platform::odroid_xu4();
        let cfg = SimConfig {
            iterations: 8,
            ..SimConfig::default()
        };
        let one = simulate(&g, &platform, &ResourceVec::from_slice(&[1, 0]), &cfg);
        let two = simulate(&g, &platform, &ResourceVec::from_slice(&[2, 0]), &cfg);
        let active_energy_one = one.busy[0] * platform.core_type(0).active_power_w();
        assert!(two.energy > active_energy_one * 0.99 - 1e-9 || two.energy > one.energy * 0.5);
    }

    #[test]
    fn communication_penalty_applies_across_cores() {
        let mut g = DataflowGraph::new("comm");
        let a = g.add_process("a", 1.0e9);
        let b = g.add_process("b", 1.0e9);
        g.connect(a, b, 2.0e9); // heavy payload: 1 s at 2 GB/s
        let platform = Platform::odroid_xu4();
        let cfg = SimConfig {
            iterations: 1,
            ..SimConfig::default()
        };
        let local = simulate(&g, &platform, &ResourceVec::from_slice(&[1, 0]), &cfg);
        let split = simulate(&g, &platform, &ResourceVec::from_slice(&[2, 0]), &cfg);
        // Local: 2/1.5 s serial; split pays ~1 s of transfer.
        assert!(split.makespan > local.makespan);
    }

    #[test]
    fn placement_balances_load() {
        let mut g = DataflowGraph::new("par");
        for i in 0..4 {
            g.add_process(format!("p{i}"), 1.0e9);
        }
        let platform = Platform::odroid_xu4();
        let placement = place(&g, &platform, &ResourceVec::from_slice(&[2, 0]));
        let on0 = placement.iter().filter(|&&c| c == 0).count();
        assert_eq!(on0, 2, "LPT must split 4 equal processes 2/2");
    }

    #[test]
    #[should_panic(expected = "allocation exceeds platform")]
    fn oversized_allocation_rejected() {
        let g = chain(2, 1.0e9);
        let platform = Platform::odroid_xu4();
        simulate(
            &g,
            &platform,
            &ResourceVec::from_slice(&[5, 0]),
            &SimConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_allocation_rejected() {
        let g = chain(2, 1.0e9);
        let platform = Platform::odroid_xu4();
        simulate(
            &g,
            &platform,
            &ResourceVec::from_slice(&[0, 0]),
            &SimConfig::default(),
        );
    }
}
