//! Design-time characterization: from a dataflow graph to the
//! Pareto-filtered operating-point table the runtime manager consumes.
//!
//! This replaces the paper's exhaustive on-board benchmarking ("we
//! exhaustively benchmarked these applications with input data of different
//! sizes on the Hardkernel Odroid XU4"): every core allocation is simulated
//! and the resulting ⟨θ, τ, ξ⟩ triples are Pareto-filtered.

use amrm_model::{pareto_filter, AppRef, Application, OperatingPoint};
use amrm_platform::{Platform, ResourceVec};

use crate::{simulate, DataflowGraph, SimConfig};

/// Characterization options.
#[derive(Debug, Clone, Copy, Default)]
pub struct CharacterizeConfig {
    /// Simulation parameters per allocation.
    pub sim: SimConfig,
    /// Also sweep allocations with more cores than processes (these are
    /// always Pareto-dominated; off by default).
    pub include_oversized: bool,
}

/// Enumerates every non-empty allocation `(n1, …, nm) ≤ Θ`.
pub fn all_allocations(platform: &Platform) -> Vec<ResourceVec> {
    let mut out = Vec::new();
    let counts = platform.counts();
    let m = platform.num_types();
    let mut current = vec![0u32; m];
    loop {
        if current.iter().any(|&c| c > 0) {
            out.push(ResourceVec::from_slice(&current));
        }
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == m {
                return out;
            }
            if current[k] < counts[k] {
                current[k] += 1;
                break;
            }
            current[k] = 0;
            k += 1;
        }
    }
}

/// Simulates every allocation of `platform` for `graph` and returns the
/// Pareto-filtered operating points as an [`Application`].
///
/// # Examples
///
/// ```
/// use amrm_dataflow::{apps, characterize, CharacterizeConfig};
/// use amrm_platform::Platform;
///
/// let platform = Platform::odroid_xu4();
/// let app = characterize(
///     &apps::audio_filter(),
///     &platform,
///     &CharacterizeConfig::default(),
/// );
/// assert!(app.num_points() >= 4);
/// assert!(app.is_pareto_filtered());
/// ```
pub fn characterize(
    graph: &DataflowGraph,
    platform: &Platform,
    config: &CharacterizeConfig,
) -> AppRef {
    let mut points = Vec::new();
    for alloc in all_allocations(platform) {
        if !config.include_oversized && alloc.total() as usize > graph.num_processes() {
            continue;
        }
        let r = simulate(graph, platform, &alloc, &config.sim);
        points.push(OperatingPoint::new(alloc, r.makespan, r.energy));
    }
    Application::shared(graph.name(), pareto_filter(points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    #[test]
    fn allocation_enumeration_counts() {
        let platform = Platform::odroid_xu4();
        // (4+1)·(4+1) − 1 = 24 non-empty allocations.
        assert_eq!(all_allocations(&platform).len(), 24);
        let homo = Platform::homogeneous(3);
        assert_eq!(all_allocations(&homo).len(), 3);
    }

    #[test]
    fn characterized_table_is_pareto_front() {
        let platform = Platform::odroid_xu4();
        let app = characterize(
            &apps::pedestrian_recognition(),
            &platform,
            &CharacterizeConfig::default(),
        );
        assert!(app.is_pareto_filtered());
        assert!(app.num_points() >= 3, "expected several trade-off points");
    }

    #[test]
    fn front_contains_both_frugal_and_fast_points() {
        let platform = Platform::odroid_xu4();
        let app = characterize(
            &apps::audio_filter(),
            &platform,
            &CharacterizeConfig::default(),
        );
        let min_energy = app
            .points()
            .iter()
            .min_by(|a, b| a.energy().total_cmp(&b.energy()))
            .unwrap();
        let min_time = app
            .points()
            .iter()
            .min_by(|a, b| a.time().total_cmp(&b.time()))
            .unwrap();
        // The frugal point is slower than the fast point and vice versa.
        assert!(min_energy.time() > min_time.time());
        assert!(min_time.energy() > min_energy.energy());
    }

    #[test]
    fn oversized_allocations_do_not_change_front() {
        let platform = Platform::odroid_xu4();
        let base = characterize(
            &apps::pedestrian_recognition(),
            &platform,
            &CharacterizeConfig::default(),
        );
        let with_oversized = characterize(
            &apps::pedestrian_recognition(),
            &platform,
            &CharacterizeConfig {
                include_oversized: true,
                ..CharacterizeConfig::default()
            },
        );
        // Oversized allocations only add dominated points (same or fewer
        // survive; the front itself is unchanged in size here).
        assert_eq!(base.num_points(), with_oversized.num_points());
    }

    #[test]
    fn larger_input_scales_time_roughly_linearly() {
        let platform = Platform::odroid_xu4();
        let small = characterize(
            &apps::audio_filter(),
            &platform,
            &CharacterizeConfig::default(),
        );
        let big_graph = apps::audio_filter().scaled(2.0);
        let big = characterize(&big_graph, &platform, &CharacterizeConfig::default());
        let t_small = small.min_time();
        let t_big = big.min_time();
        assert!(t_big > 1.5 * t_small && t_big < 3.0 * t_small);
    }
}
