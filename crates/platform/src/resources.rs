//! Resource demand and capacity vectors.
//!
//! The paper models a heterogeneous platform with `m` *resource types*
//! (core clusters) and a core-count vector `Θ = (Θ1, …, Θm)`. Operating
//! points demand an integral number of cores per type (a [`ResourceVec`]),
//! while the MMKP containers `J` of Algorithm 1 hold *processing time* per
//! type, a real-valued [`CapacityVec`].

use std::fmt;
use std::ops::{Add, AddAssign, Index, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An integral per-resource-type core demand or availability vector.
///
/// Component `k` counts cores of type `k`. Comparisons are component-wise:
/// [`ResourceVec::fits_within`] implements the `≤` of constraint (2b) in the
/// paper.
///
/// # Examples
///
/// ```
/// use amrm_platform::ResourceVec;
///
/// let demand = ResourceVec::from_slice(&[2, 1]);
/// let avail = ResourceVec::from_slice(&[2, 2]);
/// assert!(demand.fits_within(&avail));
/// assert!(!avail.fits_within(&demand));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ResourceVec(Vec<u32>);

impl ResourceVec {
    /// Creates a vector of `m` zero components.
    pub fn zeros(m: usize) -> Self {
        ResourceVec(vec![0; m])
    }

    /// Creates a vector from explicit per-type counts.
    pub fn from_slice(counts: &[u32]) -> Self {
        ResourceVec(counts.to_vec())
    }

    /// Number of resource types `m`.
    pub fn num_types(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if every component is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&c| c == 0)
    }

    /// Total number of cores across all types.
    pub fn total(&self) -> u32 {
        self.0.iter().sum()
    }

    /// Component-wise `self ≤ other`.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn fits_within(&self, other: &ResourceVec) -> bool {
        assert_eq!(self.0.len(), other.0.len(), "resource type count mismatch");
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Component-wise saturating subtraction.
    pub fn saturating_sub(&self, other: &ResourceVec) -> ResourceVec {
        assert_eq!(self.0.len(), other.0.len(), "resource type count mismatch");
        ResourceVec(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        )
    }

    /// Scales every component by a (non-negative) duration, producing the
    /// processing-time weight `θ · t` used by the knapsack formulation.
    pub fn scale(&self, t: f64) -> CapacityVec {
        CapacityVec(self.0.iter().map(|&c| f64::from(c) * t).collect())
    }

    /// Iterates over the per-type counts.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().copied()
    }

    /// The counts as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }
}

impl Index<usize> for ResourceVec {
    type Output = u32;

    fn index(&self, k: usize) -> &u32 {
        &self.0[k]
    }
}

impl Add for &ResourceVec {
    type Output = ResourceVec;

    fn add(self, rhs: &ResourceVec) -> ResourceVec {
        assert_eq!(self.0.len(), rhs.0.len(), "resource type count mismatch");
        ResourceVec(self.0.iter().zip(&rhs.0).map(|(a, b)| a + b).collect())
    }
}

impl AddAssign<&ResourceVec> for ResourceVec {
    fn add_assign(&mut self, rhs: &ResourceVec) {
        assert_eq!(self.0.len(), rhs.0.len(), "resource type count mismatch");
        for (a, b) in self.0.iter_mut().zip(&rhs.0) {
            *a += b;
        }
    }
}

impl Sub for &ResourceVec {
    type Output = ResourceVec;

    /// Component-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if any component would underflow.
    fn sub(self, rhs: &ResourceVec) -> ResourceVec {
        assert_eq!(self.0.len(), rhs.0.len(), "resource type count mismatch");
        ResourceVec(
            self.0
                .iter()
                .zip(&rhs.0)
                .map(|(a, b)| a.checked_sub(*b).expect("resource underflow"))
                .collect(),
        )
    }
}

impl FromIterator<u32> for ResourceVec {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        ResourceVec(iter.into_iter().collect())
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// A real-valued per-resource-type capacity, measured in core-seconds.
///
/// This is the container vector `J` of Algorithm 1: each component holds the
/// remaining processing time available on one core type within the analysis
/// horizon.
///
/// # Examples
///
/// ```
/// use amrm_platform::{CapacityVec, ResourceVec};
///
/// // 2 little + 2 big cores over an 8 s horizon.
/// let mut j = ResourceVec::from_slice(&[2, 2]).scale(8.0);
/// let demand = ResourceVec::from_slice(&[2, 1]).scale(4.3);
/// assert!(demand.fits_within(&j));
/// j.consume(&demand);
/// assert!((j[0] - 7.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CapacityVec(Vec<f64>);

impl CapacityVec {
    /// Creates a capacity of `m` zero components.
    pub fn zeros(m: usize) -> Self {
        CapacityVec(vec![0.0; m])
    }

    /// Creates a capacity from explicit per-type core-seconds.
    pub fn from_slice(values: &[f64]) -> Self {
        CapacityVec(values.to_vec())
    }

    /// Number of resource types `m`.
    pub fn num_types(&self) -> usize {
        self.0.len()
    }

    /// Component-wise `self ≤ other` with a small tolerance.
    pub fn fits_within(&self, other: &CapacityVec) -> bool {
        assert_eq!(self.0.len(), other.0.len(), "resource type count mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .all(|(a, b)| *a <= *b + crate::EPS)
    }

    /// Subtracts `other` component-wise, clamping at zero to absorb
    /// floating-point jitter.
    pub fn consume(&mut self, other: &CapacityVec) {
        assert_eq!(self.0.len(), other.0.len(), "resource type count mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a - *b).max(0.0);
        }
    }

    /// Iterates over the per-type core-seconds.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.0.iter().copied()
    }

    /// The values as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }
}

impl Index<usize> for CapacityVec {
    type Output = f64;

    fn index(&self, k: usize) -> &f64 {
        &self.0[k]
    }
}

impl SubAssign<&CapacityVec> for CapacityVec {
    fn sub_assign(&mut self, rhs: &CapacityVec) {
        self.consume(rhs);
    }
}

impl FromIterator<f64> for CapacityVec {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        CapacityVec(iter.into_iter().collect())
    }
}

impl fmt::Display for CapacityVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.3}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_zero() {
        let v = ResourceVec::zeros(3);
        assert!(v.is_zero());
        assert_eq!(v.total(), 0);
        assert_eq!(v.num_types(), 3);
    }

    #[test]
    fn fits_within_componentwise() {
        let a = ResourceVec::from_slice(&[1, 2]);
        let b = ResourceVec::from_slice(&[2, 2]);
        assert!(a.fits_within(&b));
        assert!(!b.fits_within(&a));
        assert!(a.fits_within(&a));
    }

    #[test]
    fn incomparable_vectors_do_not_fit_either_way() {
        let a = ResourceVec::from_slice(&[2, 0]);
        let b = ResourceVec::from_slice(&[0, 2]);
        assert!(!a.fits_within(&b));
        assert!(!b.fits_within(&a));
    }

    #[test]
    fn add_and_sub_roundtrip() {
        let a = ResourceVec::from_slice(&[1, 2]);
        let b = ResourceVec::from_slice(&[3, 1]);
        let sum = &a + &b;
        assert_eq!(sum, ResourceVec::from_slice(&[4, 3]));
        assert_eq!(&sum - &b, a);
    }

    #[test]
    #[should_panic(expected = "resource underflow")]
    fn sub_underflow_panics() {
        let a = ResourceVec::from_slice(&[1, 0]);
        let b = ResourceVec::from_slice(&[0, 1]);
        let _ = &a - &b;
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_lengths_panic() {
        let a = ResourceVec::from_slice(&[1]);
        let b = ResourceVec::from_slice(&[1, 2]);
        let _ = a.fits_within(&b);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = ResourceVec::from_slice(&[1, 3]);
        let b = ResourceVec::from_slice(&[2, 1]);
        assert_eq!(a.saturating_sub(&b), ResourceVec::from_slice(&[0, 2]));
    }

    #[test]
    fn scale_produces_core_seconds() {
        let v = ResourceVec::from_slice(&[2, 1]).scale(3.0);
        assert_eq!(v.as_slice(), &[6.0, 3.0]);
    }

    #[test]
    fn capacity_consume_clamps_at_zero() {
        let mut j = CapacityVec::from_slice(&[1.0, 5.0]);
        j.consume(&CapacityVec::from_slice(&[2.0, 1.0]));
        assert_eq!(j.as_slice(), &[0.0, 4.0]);
    }

    #[test]
    fn capacity_fits_with_tolerance() {
        let a = CapacityVec::from_slice(&[1.0 + 1e-12]);
        let b = CapacityVec::from_slice(&[1.0]);
        assert!(a.fits_within(&b));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = ResourceVec::zeros(2);
        a += &ResourceVec::from_slice(&[1, 2]);
        a += &ResourceVec::from_slice(&[2, 0]);
        assert_eq!(a, ResourceVec::from_slice(&[3, 2]));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ResourceVec::from_slice(&[2, 1]).to_string(), "(2, 1)");
    }

    #[test]
    fn collects_from_iterators() {
        let r: ResourceVec = [1u32, 2].into_iter().collect();
        assert_eq!(r, ResourceVec::from_slice(&[1, 2]));
        let c: CapacityVec = [1.0f64, 2.0].into_iter().collect();
        assert_eq!(c, CapacityVec::from_slice(&[1.0, 2.0]));
    }
}
