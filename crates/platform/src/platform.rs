//! Heterogeneous platform descriptions.

use serde::{Deserialize, Serialize};

use crate::{CoreType, ResourceVec};

/// A heterogeneous multi-core platform: an ordered list of core types and a
/// core-count vector `Θ` over those types.
///
/// The ordering of core types defines the component order of every
/// [`ResourceVec`] used against this platform. By convention, presets list
/// the *little* (low-power) cluster first.
///
/// # Examples
///
/// ```
/// use amrm_platform::Platform;
///
/// let odroid = Platform::odroid_xu4();
/// assert_eq!(odroid.num_types(), 2);
/// assert_eq!(odroid.counts().as_slice(), &[4, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    name: String,
    core_types: Vec<CoreType>,
    counts: ResourceVec,
}

impl Platform {
    /// Creates a platform from core types and their counts.
    ///
    /// # Panics
    ///
    /// Panics if `core_types` is empty, if the lengths differ, or if any
    /// count is zero (empty clusters are not representable in the paper's
    /// model — drop the type instead).
    pub fn new(name: impl Into<String>, core_types: Vec<CoreType>, counts: ResourceVec) -> Self {
        assert!(
            !core_types.is_empty(),
            "platform needs at least one core type"
        );
        assert_eq!(
            core_types.len(),
            counts.num_types(),
            "one count per core type required"
        );
        assert!(
            counts.iter().all(|c| c > 0),
            "every cluster must have at least one core"
        );
        Platform {
            name: name.into(),
            core_types,
            counts,
        }
    }

    /// The Hardkernel Odroid XU4 used in the paper's evaluation: an Exynos
    /// 5422 with four Cortex-A7 cores pinned at 1.5 GHz and four Cortex-A15
    /// cores pinned at 1.8 GHz.
    ///
    /// Power parameters are calibrated so that per-core active power matches
    /// what Table II of the paper implies (~0.47 W per busy little core,
    /// ~1.66 W per busy big core).
    pub fn odroid_xu4() -> Self {
        Platform::new(
            "odroid-xu4",
            vec![
                CoreType::new("A7", 1.5e9, 1.0, 0.45, 0.045),
                CoreType::new("A15", 1.8e9, 1.4, 1.60, 0.16),
            ],
            ResourceVec::from_slice(&[4, 4]),
        )
    }

    /// The 2-little + 2-big device of the paper's motivational example
    /// (Section III, Tables I–II, Figure 1).
    pub fn motivational_2l2b() -> Self {
        Platform::new(
            "example-2L2B",
            vec![
                CoreType::new("L", 1.5e9, 1.0, 0.45, 0.045),
                CoreType::new("B", 1.8e9, 1.4, 1.60, 0.16),
            ],
            ResourceVec::from_slice(&[2, 2]),
        )
    }

    /// A homogeneous platform with `n` identical cores — the degenerate
    /// single-resource-type case (m = 1) under which MMKP-MDF reduces to the
    /// single-threaded formulation of Niknafs et al.
    pub fn homogeneous(n: u32) -> Self {
        assert!(n > 0, "platform needs at least one core");
        Platform::new(
            format!("homogeneous-{n}"),
            vec![CoreType::new("C", 2.0e9, 1.0, 1.0, 0.1)],
            ResourceVec::from_slice(&[n]),
        )
    }

    /// The platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of resource types `m`.
    pub fn num_types(&self) -> usize {
        self.core_types.len()
    }

    /// The core-count vector `Θ`.
    pub fn counts(&self) -> &ResourceVec {
        &self.counts
    }

    /// Total number of cores.
    pub fn total_cores(&self) -> u32 {
        self.counts.total()
    }

    /// The core type of cluster `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.num_types()`.
    pub fn core_type(&self, k: usize) -> &CoreType {
        &self.core_types[k]
    }

    /// All core types in cluster order.
    pub fn core_types(&self) -> &[CoreType] {
        &self.core_types
    }

    /// Returns `true` if `demand` can be satisfied by this platform at all.
    pub fn can_fit(&self, demand: &ResourceVec) -> bool {
        demand.fits_within(&self.counts)
    }

    /// Idle power of the whole chip (every core idle), in watts.
    pub fn idle_power_w(&self) -> f64 {
        self.core_types
            .iter()
            .zip(self.counts.iter())
            .map(|(t, n)| t.idle_power_w() * f64::from(n))
            .sum()
    }
}

/// Incremental builder for custom [`Platform`]s.
///
/// # Examples
///
/// ```
/// use amrm_platform::{CoreType, PlatformBuilder};
///
/// let platform = PlatformBuilder::new("my-soc")
///     .cluster(CoreType::new("eff", 1.2e9, 1.0, 0.3, 0.03), 6)
///     .cluster(CoreType::new("perf", 2.4e9, 1.5, 2.0, 0.2), 2)
///     .build();
/// assert_eq!(platform.total_cores(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    name: String,
    core_types: Vec<CoreType>,
    counts: Vec<u32>,
}

impl PlatformBuilder {
    /// Starts a builder for a platform with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        PlatformBuilder {
            name: name.into(),
            core_types: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Appends a cluster of `count` cores of the given type.
    pub fn cluster(mut self, core_type: CoreType, count: u32) -> Self {
        self.core_types.push(core_type);
        self.counts.push(count);
        self
    }

    /// Builds the platform.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Platform::new`].
    pub fn build(self) -> Platform {
        Platform::new(
            self.name,
            self.core_types,
            ResourceVec::from_slice(&self.counts),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odroid_preset_matches_paper_setup() {
        let p = Platform::odroid_xu4();
        assert_eq!(p.num_types(), 2);
        assert_eq!(p.total_cores(), 8);
        assert_eq!(p.core_type(0).name(), "A7");
        assert!((p.core_type(0).frequency_hz() - 1.5e9).abs() < 1.0);
        assert!((p.core_type(1).frequency_hz() - 1.8e9).abs() < 1.0);
        // Big cores must be both faster and more power hungry.
        assert!(p.core_type(1).effective_rate_hz() > p.core_type(0).effective_rate_hz());
        assert!(p.core_type(1).active_power_w() > p.core_type(0).active_power_w());
    }

    #[test]
    fn motivational_platform_is_2l2b() {
        let p = Platform::motivational_2l2b();
        assert_eq!(p.counts().as_slice(), &[2, 2]);
    }

    #[test]
    fn can_fit_checks_against_counts() {
        let p = Platform::motivational_2l2b();
        assert!(p.can_fit(&ResourceVec::from_slice(&[2, 2])));
        assert!(!p.can_fit(&ResourceVec::from_slice(&[3, 0])));
    }

    #[test]
    fn builder_assembles_clusters_in_order() {
        let p = PlatformBuilder::new("soc")
            .cluster(CoreType::new("a", 1.0e9, 1.0, 0.2, 0.02), 2)
            .cluster(CoreType::new("b", 2.0e9, 1.2, 1.0, 0.1), 4)
            .build();
        assert_eq!(p.num_types(), 2);
        assert_eq!(p.counts().as_slice(), &[2, 4]);
        assert_eq!(p.core_type(1).name(), "b");
    }

    #[test]
    #[should_panic(expected = "at least one core type")]
    fn empty_platform_rejected() {
        let _ = Platform::new("none", vec![], ResourceVec::zeros(0));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_count_cluster_rejected() {
        let _ = Platform::new(
            "bad",
            vec![CoreType::new("a", 1.0e9, 1.0, 0.2, 0.02)],
            ResourceVec::from_slice(&[0]),
        );
    }

    #[test]
    fn homogeneous_has_single_type() {
        let p = Platform::homogeneous(16);
        assert_eq!(p.num_types(), 1);
        assert_eq!(p.total_cores(), 16);
    }

    #[test]
    fn idle_power_sums_all_cores() {
        let p = Platform::motivational_2l2b();
        let expected = 2.0 * 0.045 + 2.0 * 0.16;
        assert!((p.idle_power_w() - expected).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Platform::odroid_xu4();
        let json = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
