//! Heterogeneous platform models for runtime resource management.
//!
//! This crate provides the platform side of the system model in
//! *"Energy-efficient Runtime Resource Management for Adaptable
//! Multi-application Mapping"* (Khasanov & Castrillon, DATE 2020): a platform
//! is a set of `m` core types with a core-count vector `Θ`, and resource
//! demands/capacities are `m`-dimensional vectors.
//!
//! # Examples
//!
//! ```
//! use amrm_platform::{Platform, ResourceVec};
//!
//! let platform = Platform::odroid_xu4();
//! let demand = ResourceVec::from_slice(&[2, 1]); // 2 little + 1 big core
//! assert!(platform.can_fit(&demand));
//! ```

mod core_type;
mod platform;
mod resources;

pub use crate::core_type::{CoreType, FrequencyLevel};
pub use crate::platform::{Platform, PlatformBuilder};
pub use crate::resources::{CapacityVec, ResourceVec};

/// Tolerance used for floating-point time/capacity comparisons throughout
/// the workspace.
pub const EPS: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eps_is_small() {
        let eps = EPS;
        assert!(eps < 1e-6);
    }

    #[test]
    fn types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Platform>();
        assert_send_sync::<ResourceVec>();
        assert_send_sync::<CapacityVec>();
        assert_send_sync::<CoreType>();
    }
}
