//! Processor core types and their power/performance parameters.

use serde::{Deserialize, Serialize};

/// A voltage/frequency operating level of a core type.
///
/// The paper pins the Odroid XU4 clusters at fixed frequencies (1.5 GHz
/// little, 1.8 GHz big); DVFS levels are provided as an extension hook for
/// characterization sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyLevel {
    /// Clock frequency in Hz.
    pub frequency_hz: f64,
    /// Active (fully-loaded) power draw of one core at this level, in watts.
    pub active_power_w: f64,
    /// Idle power draw of one core at this level, in watts.
    pub idle_power_w: f64,
}

impl FrequencyLevel {
    /// Creates a frequency level.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_hz` is not strictly positive or if either power
    /// value is negative.
    pub fn new(frequency_hz: f64, active_power_w: f64, idle_power_w: f64) -> Self {
        assert!(frequency_hz > 0.0, "frequency must be positive");
        assert!(active_power_w >= 0.0, "active power must be non-negative");
        assert!(idle_power_w >= 0.0, "idle power must be non-negative");
        FrequencyLevel {
            frequency_hz,
            active_power_w,
            idle_power_w,
        }
    }
}

/// A processor core type (one heterogeneous cluster kind).
///
/// Performance is modelled as `frequency × ipc_factor`: the effective rate at
/// which a core retires work units (cycles normalized to the little core's
/// ISA efficiency). Power is split into active and idle components, which is
/// what makes the energy/latency trade-off of big.LITTLE visible to the
/// scheduler.
///
/// # Examples
///
/// ```
/// use amrm_platform::CoreType;
///
/// let big = CoreType::new("A15", 1.8e9, 1.4, 1.65, 0.15);
/// assert!(big.effective_rate_hz() > 1.8e9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreType {
    name: String,
    level: FrequencyLevel,
    ipc_factor: f64,
    dvfs_levels: Vec<FrequencyLevel>,
}

impl CoreType {
    /// Creates a core type pinned at one frequency level.
    ///
    /// `ipc_factor` scales throughput relative to a baseline core at the
    /// same clock (e.g. an out-of-order A15 retires ~1.4× the work of an
    /// in-order A7 per cycle).
    ///
    /// # Panics
    ///
    /// Panics if `ipc_factor` is not strictly positive, or on the conditions
    /// of [`FrequencyLevel::new`].
    pub fn new(
        name: impl Into<String>,
        frequency_hz: f64,
        ipc_factor: f64,
        active_power_w: f64,
        idle_power_w: f64,
    ) -> Self {
        assert!(ipc_factor > 0.0, "ipc factor must be positive");
        CoreType {
            name: name.into(),
            level: FrequencyLevel::new(frequency_hz, active_power_w, idle_power_w),
            ipc_factor,
            dvfs_levels: Vec::new(),
        }
    }

    /// Adds an alternative DVFS level (extension beyond the paper).
    pub fn with_dvfs_level(mut self, level: FrequencyLevel) -> Self {
        self.dvfs_levels.push(level);
        self
    }

    /// The human-readable cluster name (e.g. `"A7"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pinned operating frequency in Hz.
    pub fn frequency_hz(&self) -> f64 {
        self.level.frequency_hz
    }

    /// Active power of one busy core, in watts.
    pub fn active_power_w(&self) -> f64 {
        self.level.active_power_w
    }

    /// Idle power of one allocated-but-idle core, in watts.
    pub fn idle_power_w(&self) -> f64 {
        self.level.idle_power_w
    }

    /// Instructions-per-cycle scaling factor relative to the baseline core.
    pub fn ipc_factor(&self) -> f64 {
        self.ipc_factor
    }

    /// Effective work rate in baseline-cycles per second.
    pub fn effective_rate_hz(&self) -> f64 {
        self.level.frequency_hz * self.ipc_factor
    }

    /// The currently pinned frequency level.
    pub fn level(&self) -> &FrequencyLevel {
        &self.level
    }

    /// Alternative DVFS levels registered via [`CoreType::with_dvfs_level`].
    pub fn dvfs_levels(&self) -> &[FrequencyLevel] {
        &self.dvfs_levels
    }

    /// Returns a copy of this core type re-pinned at the given DVFS level.
    pub fn at_level(&self, level: FrequencyLevel) -> CoreType {
        CoreType {
            name: self.name.clone(),
            level,
            ipc_factor: self.ipc_factor,
            dvfs_levels: self.dvfs_levels.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_rate_combines_frequency_and_ipc() {
        let t = CoreType::new("A15", 2.0e9, 1.5, 1.0, 0.1);
        assert!((t.effective_rate_hz() - 3.0e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_rejected() {
        let _ = CoreType::new("bad", 0.0, 1.0, 1.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "ipc factor must be positive")]
    fn zero_ipc_rejected() {
        let _ = CoreType::new("bad", 1.0e9, 0.0, 1.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "active power must be non-negative")]
    fn negative_power_rejected() {
        let _ = FrequencyLevel::new(1.0e9, -1.0, 0.0);
    }

    #[test]
    fn dvfs_levels_accumulate_and_repin() {
        let lo = FrequencyLevel::new(0.6e9, 0.2, 0.02);
        let t = CoreType::new("A7", 1.5e9, 1.0, 0.45, 0.05).with_dvfs_level(lo.clone());
        assert_eq!(t.dvfs_levels().len(), 1);
        let slow = t.at_level(lo);
        assert!((slow.frequency_hz() - 0.6e9).abs() < 1.0);
        assert_eq!(slow.name(), "A7");
    }
}
