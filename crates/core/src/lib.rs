//! Energy-efficient runtime resource management with adaptive mapping
//! segments — the core contribution of Khasanov & Castrillon, DATE 2020.
//!
//! The crate provides:
//!
//! * [`Scheduler`] — the algorithm abstraction shared with the baselines in
//!   `amrm-baselines`; every activation receives a [`SchedulingContext`]
//!   (clock, read-only telemetry snapshot, deterministic [`SearchBudget`]);
//! * [`SchedulerRegistry`] — a named, ordered set of scheduler factories;
//!   the extension point through which suites, sweeps and the repro binary
//!   enumerate algorithms without hard-coded indices;
//! * [`MmkpMdf`] — the paper's fast MMKP heuristic with
//!   Maximum-Difference-First job selection (Algorithm 1);
//! * [`schedule_jobs`] — the EDF segment packer (Algorithm 2), exposed for
//!   reuse and testing;
//! * [`ExecutionEngine`] — indexed progress/energy accounting over an
//!   adaptive schedule, shared by the manager and the simulators;
//! * [`RuntimeManager`] — an online RM that admits requests (one at a
//!   time or in atomic batches), executes adaptive schedules, meters
//!   energy and re-activates the scheduler;
//! * [`AdmissionPolicy`] — the batched-admission *trait* consulted by the
//!   `amrm-sim` event kernel: fixed disciplines ([`Immediate`],
//!   [`BatchK`], [`WindowTau`]) plus telemetry-driven adaptive ones
//!   ([`AdaptiveBatch`], [`SlackAware`]);
//! * [`RoutingPolicy`] — the federation routing *trait* consulted by the
//!   `amrm-sim` dispatcher when N managers run side by side behind one
//!   arrival stream: [`RoundRobin`], [`JoinShortestQueue`],
//!   [`EnergyAware`], [`HashAffinity`].
//!
//! # Examples
//!
//! ```
//! use amrm_core::{MmkpMdf, RuntimeManager};
//! use amrm_workload::scenarios;
//!
//! // Scenario S2: a fixed mapper must reject σ2, the adaptive RM accepts.
//! let mut rm = RuntimeManager::new(scenarios::platform(), MmkpMdf::new());
//! assert!(rm.submit(scenarios::lambda1(), 9.0).is_accepted());
//! rm.advance_to(1.0);
//! assert!(rm.submit(scenarios::lambda2(), 4.0).is_accepted());
//! rm.run_to_completion();
//! assert_eq!(rm.stats().deadline_misses, 0);
//! ```

mod admission;
mod context;
mod engine;
pub mod fanout;
mod manager;
mod mdf;
pub mod routing;
mod schedule_jobs;
mod scheduler;
mod variants;

pub use crate::admission::{
    AdaptiveBatch, AdmissionDirective, AdmissionPolicy, BatchK, Immediate, SlackAware,
    TelemetrySnapshot, WindowTau,
};
pub use crate::context::{SchedulingContext, SearchBudget, TraceSink};
pub use crate::engine::{EngineJob, ExecutionEngine};
pub use crate::manager::{Admission, DecisionReason, ReactivationPolicy, RmStats, RuntimeManager};
pub use crate::mdf::MmkpMdf;
pub use crate::routing::{
    EnergyAware, HashAffinity, JoinShortestQueue, RoundRobin, RouteRequest, RoutingPolicy,
    ShardView,
};
pub use crate::schedule_jobs::schedule_jobs;
pub use crate::scheduler::{Scheduler, SchedulerFactory, SchedulerRegistry};
pub use crate::variants::{JobOrderPolicy, MmkpVariant};

#[doc(hidden)]
pub use crate::engine::LinearScanEngine;
