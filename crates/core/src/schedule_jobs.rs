//! SCHEDULEJOBS — Algorithm 2 of the paper.
//!
//! Given one chosen configuration per job, this routine constructs a
//! feasible segmented schedule (or reports failure). Jobs are placed in EDF
//! order: each job first fills already-constructed segments (skipping those
//! whose resources are exhausted — that is how *suspensions* arise), a
//! segment is *split* when the job completes inside it, and any remaining
//! work is appended as new segments at the tail.

use std::collections::HashMap;

use amrm_model::{JobId, JobMapping, JobSet, Schedule, Segment};
use amrm_platform::{Platform, EPS};

/// Remaining-ratio threshold below which a job counts as finished while
/// packing. Far below [`amrm_model::PROGRESS_TOL`], so packed schedules
/// always validate.
const RHO_EPS: f64 = 1e-12;

/// Builds a feasible schedule for the jobs that have an assigned
/// configuration in `configs` (Algorithm 2).
///
/// Jobs of `jobs` without an entry in `configs` are ignored — Algorithm 1
/// calls this with a growing partial assignment.
///
/// Returns `None` if some job misses its deadline under this assignment
/// (line 23 of the paper's listing).
///
/// # Examples
///
/// Packing the two motivational jobs with both on their `2L1B` points
/// yields the adaptive schedule of Fig. 1(c): σ2 runs `[1, 4)`, σ1 is
/// suspended and resumes on `[4, 8.3)`.
///
/// ```
/// use std::collections::HashMap;
/// use amrm_core::schedule_jobs;
/// use amrm_model::JobId;
/// use amrm_workload::scenarios;
///
/// let jobs = scenarios::s1_jobs_at_t1();
/// let configs = HashMap::from([(JobId(1), 6), (JobId(2), 6)]); // both 2L1B
/// let schedule = schedule_jobs(&jobs, &configs, &scenarios::platform(), 1.0).unwrap();
/// assert_eq!(schedule.num_segments(), 2);
/// assert!((schedule.segments()[0].end() - 4.0).abs() < 1e-9);
/// ```
pub fn schedule_jobs(
    jobs: &JobSet,
    configs: &HashMap<JobId, usize>,
    platform: &Platform,
    now: f64,
) -> Option<Schedule> {
    let m = platform.num_types();
    let mut schedule = Schedule::new();
    // te: end of the last appended segment (line 1).
    let mut te = now;

    for id in jobs.ids_by_deadline() {
        let Some(&point_idx) = configs.get(&id) else {
            continue;
        };
        let job = jobs.get(id).expect("id comes from the job set");
        let point = job.point(point_idx);
        let mut rho = job.remaining();
        // tf: completion time of this job (for the deadline check, line 23).
        let mut tf = now;

        // Lines 5–18: fill existing segments in time order.
        let mut si = 0;
        while si < schedule.num_segments() && rho > RHO_EPS {
            let seg = &schedule.segments()[si];
            let used = seg.demand(jobs, m);
            if !(point.resources() + &used).fits_within(platform.counts()) {
                si += 1;
                continue; // suspended during this segment (line 7)
            }
            let r = point.time() * rho; // remaining runtime (line 8)
            let dur = seg.duration();
            if r >= dur - EPS {
                // Runs for the whole segment (lines 10–11).
                schedule.add_mapping_to(si, JobMapping::new(id, point_idx));
                rho = (rho - dur / point.time()).max(0.0);
                if rho <= RHO_EPS {
                    rho = 0.0;
                    tf = schedule.segments()[si].end(); // line 18
                }
            } else {
                // Completes mid-segment: split it (lines 13–17).
                let at = seg.start() + r;
                if at > seg.start() {
                    schedule.split_segment(si, at);
                    schedule.add_mapping_to(si, JobMapping::new(id, point_idx));
                    rho = 0.0;
                    tf = schedule.segments()[si].end();
                } else {
                    // At large clock values a remainder barely above
                    // RHO_EPS yields a runtime below the float resolution
                    // of `start` — the job is numerically complete here.
                    rho = 0.0;
                    tf = seg.start();
                }
            }
            si += 1;
        }

        // Lines 19–22: leftover work goes into a fresh tail segment.
        if rho > RHO_EPS {
            let r = point.time() * rho;
            // Guard the same float-resolution edge as the split above: a
            // vanishing remainder must not create an empty segment.
            if te + r > te {
                let seg = Segment::new(te, te + r, vec![JobMapping::new(id, point_idx)]);
                schedule.push(seg);
                te += r;
            }
            tf = te;
        }
        // Keep te at the schedule tail even when the job fit entirely into
        // existing segments created by earlier (EDF-earlier) jobs.
        if let Some(end) = schedule.end_time() {
            te = te.max(end);
        }

        // Line 23: firm deadline check.
        if tf > job.deadline() + EPS {
            return None;
        }
    }
    Some(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amrm_model::{Application, Job, OperatingPoint};
    use amrm_platform::ResourceVec;
    use amrm_workload::scenarios;

    fn cfg(pairs: &[(u64, usize)]) -> HashMap<JobId, usize> {
        pairs.iter().map(|&(id, j)| (JobId(id), j)).collect()
    }

    #[test]
    fn reproduces_fig1c_packing() {
        let jobs = scenarios::s1_jobs_at_t1();
        // Index 6 is the 2L1B row in both Table II fixtures.
        let schedule =
            schedule_jobs(&jobs, &cfg(&[(1, 6), (2, 6)]), &scenarios::platform(), 1.0).unwrap();
        schedule
            .validate(&jobs, &scenarios::platform(), 1.0)
            .unwrap();
        assert_eq!(schedule.num_segments(), 2);
        // σ2 (EDF-first) on [1, 4); σ1 suspended, then [4, 4 + 5.3·ρ1).
        let s0 = &schedule.segments()[0];
        assert!((s0.start() - 1.0).abs() < 1e-9 && (s0.end() - 4.0).abs() < 1e-9);
        assert!(s0.contains_job(JobId(2)) && !s0.contains_job(JobId(1)));
        let s1 = &schedule.segments()[1];
        let rho1 = 1.0 - 1.0 / 5.3;
        assert!((s1.end() - (4.0 + 5.3 * rho1)).abs() < 1e-9);
        assert!(s1.contains_job(JobId(1)) && !s1.contains_job(JobId(2)));
        // Energy of the remaining work: 5.73 + 8.9·ρ1 ≈ 12.951 J.
        assert!((schedule.energy(&jobs) - (5.73 + 8.9 * rho1)).abs() < 1e-9);
    }

    #[test]
    fn parallel_jobs_share_a_segment_when_resources_allow() {
        let jobs = scenarios::s1_jobs_at_t1();
        // σ1 on 1L1B (idx 4), σ2 on 1L1B (idx 4): 2L2B total — fits 2L2B.
        let schedule =
            schedule_jobs(&jobs, &cfg(&[(1, 4), (2, 4)]), &scenarios::platform(), 1.0).unwrap();
        schedule
            .validate(&jobs, &scenarios::platform(), 1.0)
            .unwrap();
        // σ2 finishes at 4.5; σ1 runs in parallel and continues till 7.57.
        assert!((schedule.completion_time(JobId(2)).unwrap() - 4.5).abs() < 1e-9);
        let rho1 = 1.0 - 1.0 / 5.3;
        assert!((schedule.completion_time(JobId(1)).unwrap() - (1.0 + 8.1 * rho1)).abs() < 1e-9);
        // First segment hosts both jobs (σ1 is split off when σ2 finishes).
        assert!(schedule.segments()[0].contains_job(JobId(1)));
        assert!(schedule.segments()[0].contains_job(JobId(2)));
    }

    #[test]
    fn deadline_violation_returns_none() {
        let jobs = scenarios::s2_jobs_at_t1();
        // σ2 on 1L1B takes 3.5 s from t = 1 → misses deadline 4.
        assert!(schedule_jobs(&jobs, &cfg(&[(2, 4)]), &scenarios::platform(), 1.0).is_none());
    }

    #[test]
    fn jobs_without_config_are_ignored() {
        let jobs = scenarios::s1_jobs_at_t1();
        let schedule = schedule_jobs(&jobs, &cfg(&[(2, 6)]), &scenarios::platform(), 1.0).unwrap();
        assert!(schedule.completion_time(JobId(1)).is_none());
        assert!(schedule.completion_time(JobId(2)).is_some());
    }

    #[test]
    fn empty_config_map_gives_empty_schedule() {
        let jobs = scenarios::s1_jobs_at_t1();
        let schedule = schedule_jobs(&jobs, &cfg(&[]), &scenarios::platform(), 1.0).unwrap();
        assert!(schedule.is_empty());
    }

    #[test]
    fn split_happens_when_later_job_finishes_first() {
        // EDF-first job is long; the second job finishes mid-segment and
        // forces a split of the first job's segment.
        let app = Application::shared(
            "a",
            vec![
                OperatingPoint::new(ResourceVec::from_slice(&[1, 0]), 10.0, 5.0),
                OperatingPoint::new(ResourceVec::from_slice(&[1, 0]), 4.0, 4.0),
            ],
        );
        let jobs = JobSet::new(vec![
            Job::new(JobId(1), app.clone(), 0.0, 10.0, 1.0),
            Job::new(JobId(2), app, 0.0, 20.0, 1.0),
        ]);
        let platform = amrm_platform::Platform::motivational_2l2b();
        let schedule = schedule_jobs(&jobs, &cfg(&[(1, 0), (2, 1)]), &platform, 0.0).unwrap();
        schedule.validate(&jobs, &platform, 0.0).unwrap();
        // Job 2 (deadline 20) is packed second, finishes at 4 → split at 4.
        assert_eq!(schedule.num_segments(), 2);
        assert!((schedule.segments()[0].end() - 4.0).abs() < 1e-9);
        assert!(schedule.segments()[0].contains_job(JobId(2)));
        assert!(schedule.segments()[1].contains_job(JobId(1)));
        assert!(!schedule.segments()[1].contains_job(JobId(2)));
    }

    #[test]
    fn zero_length_tail_is_not_created() {
        // A job that exactly fills existing segments must not append an
        // empty segment.
        let app = Application::shared(
            "a",
            vec![OperatingPoint::new(
                ResourceVec::from_slice(&[1, 0]),
                4.0,
                4.0,
            )],
        );
        let jobs = JobSet::new(vec![
            Job::new(JobId(1), app.clone(), 0.0, 10.0, 1.0),
            Job::new(JobId(2), app, 0.0, 20.0, 1.0),
        ]);
        let platform = amrm_platform::Platform::motivational_2l2b();
        let schedule = schedule_jobs(&jobs, &cfg(&[(1, 0), (2, 0)]), &platform, 0.0).unwrap();
        assert_eq!(schedule.num_segments(), 1);
        assert!((schedule.segments()[0].duration() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn earlier_deadline_job_goes_first_even_if_listed_later() {
        let jobs = scenarios::s1_jobs_at_t1(); // σ2 deadline 5 < σ1 deadline 9
        let schedule =
            schedule_jobs(&jobs, &cfg(&[(1, 6), (2, 6)]), &scenarios::platform(), 1.0).unwrap();
        // σ2 occupies the first segment despite σ1 being listed first.
        assert!(schedule.segments()[0].contains_job(JobId(2)));
    }
}
