//! Request routing across a federation of runtime managers: *which* shard
//! an arriving request is dispatched to.
//!
//! One runtime manager owns one platform; scaling past a single manager's
//! throughput means running N managers side by side behind a dispatcher.
//! A [`RoutingPolicy`] is the third pluggable axis next to schedulers and
//! admission policies: the dispatcher calls
//! [`route`](RoutingPolicy::route) once per arriving request with a
//! read-only [`ShardView`] per shard (queue depth, in-flight jobs, EWMA
//! utilization, energy per job — the same telemetry signals E-Mapper
//! routes on at the OS level) and the policy picks a shard index.
//!
//! Everything a policy can observe is simulated time and state, so
//! routing decisions stay deterministic per stream seed — the federation
//! kernel routes serially between parallel shard-advance epochs, and the
//! views it hands over are refreshed at deterministic sim-time barriers.
//!
//! Like [`AdmissionPolicy`](crate::AdmissionPolicy), implementations are
//! labelled ([`label`](RoutingPolicy::label)) and validated
//! ([`validate`](RoutingPolicy::validate)); the `repro shard` grid and the
//! perf baseline key rows by the label.

/// The routed view of one arriving request.
///
/// Borrowed fields only — the routing tier lives below the workload crate,
/// so it sees the request's identity (application name), its timing, and
/// nothing else.
#[derive(Debug, Clone, Copy)]
pub struct RouteRequest<'a> {
    /// Name of the requested application (the [`HashAffinity`] key).
    pub app: &'a str,
    /// Absolute arrival time, simulated seconds.
    pub arrival: f64,
    /// Absolute deadline, simulated seconds.
    pub deadline: f64,
}

/// A read-only snapshot of one shard's load at a routing barrier.
///
/// Refreshed by the dispatcher at every routing epoch; `queue_depth` is
/// additionally bumped in-epoch as requests are assigned, so
/// feedback-driven policies ([`JoinShortestQueue`], [`EnergyAware`]) see
/// their own routing decisions immediately instead of dog-piling one
/// shard within an epoch.
#[derive(Debug, Clone)]
pub struct ShardView {
    /// Index of the shard this view describes.
    pub shard: usize,
    /// Requests waiting in the shard's admission queue, plus requests
    /// already routed to it in the current epoch.
    pub queue_depth: usize,
    /// Jobs admitted and not yet completed on the shard.
    pub running_jobs: usize,
    /// The shard's EWMA platform utilization in `[0, 1]`.
    pub utilization: f64,
    /// The shard's metered energy per admitted job, joules.
    pub energy_per_job: f64,
    /// The shard's rolling acceptance rate.
    pub rolling_acceptance: f64,
    /// The shard's EWMA arrival rate, requests per simulated second.
    pub arrival_rate: f64,
    /// The shard's local clock (simulated seconds).
    pub now: f64,
}

impl ShardView {
    /// An idle view of shard `shard` at t = 0 (no queue, no history).
    pub fn idle(shard: usize) -> Self {
        ShardView {
            shard,
            queue_depth: 0,
            running_jobs: 0,
            utilization: 0.0,
            energy_per_job: 0.0,
            rolling_acceptance: 1.0,
            arrival_rate: 0.0,
            now: 0.0,
        }
    }
}

/// A dispatcher routing policy: picks the shard an arriving request is
/// federated to.
///
/// # Implementing a custom policy
///
/// ```
/// use amrm_core::routing::{RouteRequest, RoutingPolicy, ShardView};
///
/// /// Sends tight-deadline requests to shard 0, the rest round-robin.
/// struct SlackSplit {
///     next: usize,
/// }
///
/// impl RoutingPolicy for SlackSplit {
///     fn route(&mut self, req: &RouteRequest<'_>, shards: &[ShardView]) -> usize {
///         if req.deadline - req.arrival < 1.0 || shards.len() == 1 {
///             return 0;
///         }
///         self.next = self.next % (shards.len() - 1) + 1;
///         self.next
///     }
///     fn label(&self) -> String {
///         "SlackSplit".to_string()
///     }
/// }
/// ```
pub trait RoutingPolicy {
    /// Picks the shard for `req`. `shards` is non-empty and indexed by
    /// shard; the returned index must be `< shards.len()`.
    fn route(&mut self, req: &RouteRequest<'_>, shards: &[ShardView]) -> usize;

    /// A short stable label (`"RoundRobin"`, `"JSQ"`) — the key used by
    /// shard reports and the perf baseline. Distinct policy
    /// configurations should never share a label.
    fn label(&self) -> String;

    /// Checks the policy's configuration invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }

    /// Whether the policy reads the shard views at all. Feedback-free
    /// policies ([`RoundRobin`], [`HashAffinity`]) let the dispatcher
    /// skip per-request view refreshes and use coarse routing epochs
    /// without affecting where anything lands.
    fn needs_feedback(&self) -> bool {
        true
    }
}

impl<P: RoutingPolicy + ?Sized> RoutingPolicy for Box<P> {
    fn route(&mut self, req: &RouteRequest<'_>, shards: &[ShardView]) -> usize {
        (**self).route(req, shards)
    }

    fn label(&self) -> String {
        (**self).label()
    }

    fn validate(&self) -> Result<(), String> {
        (**self).validate()
    }

    fn needs_feedback(&self) -> bool {
        (**self).needs_feedback()
    }
}

/// Cycles through the shards in order, ignoring load. The baseline every
/// feedback-driven policy is measured against, and the policy under which
/// a 1-shard federation must be bit-identical to a plain simulation.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A fresh cycler starting at shard 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl RoutingPolicy for RoundRobin {
    fn route(&mut self, _req: &RouteRequest<'_>, shards: &[ShardView]) -> usize {
        let pick = self.next % shards.len();
        self.next = (self.next + 1) % shards.len();
        pick
    }

    fn label(&self) -> String {
        "RoundRobin".to_string()
    }

    fn needs_feedback(&self) -> bool {
        false
    }
}

/// Joins the shortest queue: routes to the shard with the fewest waiting
/// plus running requests, breaking ties toward the lowest index.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinShortestQueue;

impl JoinShortestQueue {
    /// The classic JSQ policy.
    pub fn new() -> Self {
        JoinShortestQueue
    }
}

impl RoutingPolicy for JoinShortestQueue {
    fn route(&mut self, _req: &RouteRequest<'_>, shards: &[ShardView]) -> usize {
        shards
            .iter()
            .map(|s| s.queue_depth + s.running_jobs)
            .enumerate()
            .min_by_key(|&(_, load)| load)
            .map(|(i, _)| i)
            .expect("dispatcher hands at least one shard view")
    }

    fn label(&self) -> String {
        "JSQ".to_string()
    }
}

/// Routes to the shard whose telemetry shows the lowest EWMA utilization,
/// breaking utilization ties by lower metered energy per job, then lower
/// index — the E-Mapper discipline lifted to the federation tier: spare
/// (and cheap) capacity attracts work.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyAware;

impl EnergyAware {
    /// The telemetry-driven energy/utilization router.
    pub fn new() -> Self {
        EnergyAware
    }
}

impl RoutingPolicy for EnergyAware {
    fn route(&mut self, _req: &RouteRequest<'_>, shards: &[ShardView]) -> usize {
        shards
            .iter()
            .enumerate()
            .min_by(|(ia, a), (ib, b)| {
                a.utilization
                    .total_cmp(&b.utilization)
                    .then(a.energy_per_job.total_cmp(&b.energy_per_job))
                    .then(ia.cmp(ib))
            })
            .map(|(i, _)| i)
            .expect("dispatcher hands at least one shard view")
    }

    fn label(&self) -> String {
        "EnergyAware".to_string()
    }
}

/// Sticks every request of one application to one shard, by hashing the
/// application name. Keeps per-app history (and any per-app scheduler
/// state) on a single manager at the cost of ignoring load.
///
/// Uses FNV-1a over the app-name bytes — a fixed, portable hash, so
/// placements are stable across platforms and Rust versions (unlike
/// `DefaultHasher`, whose algorithm is explicitly unspecified).
#[derive(Debug, Clone, Copy, Default)]
pub struct HashAffinity;

impl HashAffinity {
    /// The per-app sticky router.
    pub fn new() -> Self {
        HashAffinity
    }

    /// FNV-1a over `bytes` (64-bit offset basis / prime).
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

impl RoutingPolicy for HashAffinity {
    fn route(&mut self, req: &RouteRequest<'_>, shards: &[ShardView]) -> usize {
        (Self::fnv1a(req.app.as_bytes()) % shards.len() as u64) as usize
    }

    fn label(&self) -> String {
        "HashAffinity".to_string()
    }

    fn needs_feedback(&self) -> bool {
        false
    }
}

/// All built-in routing policies, in report order. The `repro shard` grid
/// sweeps exactly this set.
pub fn standard_policies() -> Vec<Box<dyn RoutingPolicy + Send>> {
    vec![
        Box::new(RoundRobin::new()),
        Box::new(JoinShortestQueue::new()),
        Box::new(EnergyAware::new()),
        Box::new(HashAffinity::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req<'a>(app: &'a str) -> RouteRequest<'a> {
        RouteRequest {
            app,
            arrival: 1.0,
            deadline: 3.0,
        }
    }

    fn views(n: usize) -> Vec<ShardView> {
        (0..n).map(ShardView::idle).collect()
    }

    #[test]
    fn standard_policy_labels_are_stable_and_distinct() {
        let policies = standard_policies();
        let labels: Vec<String> = policies.iter().map(|p| p.label()).collect();
        assert_eq!(labels, ["RoundRobin", "JSQ", "EnergyAware", "HashAffinity"]);
        for p in &policies {
            p.validate().expect("built-in policies validate");
        }
    }

    #[test]
    fn round_robin_cycles_in_order() {
        let mut rr = RoundRobin::new();
        let v = views(3);
        let picks: Vec<usize> = (0..7).map(|_| rr.route(&req("a"), &v)).collect();
        assert_eq!(picks, [0, 1, 2, 0, 1, 2, 0]);
        assert!(!rr.needs_feedback());
    }

    #[test]
    fn jsq_picks_least_loaded_counting_running_jobs() {
        let mut jsq = JoinShortestQueue::new();
        let mut v = views(3);
        v[0].queue_depth = 2;
        v[1].queue_depth = 1;
        v[1].running_jobs = 2;
        v[2].queue_depth = 2;
        v[2].running_jobs = 0;
        // Loads are [2, 3, 2]: the tie breaks toward the lowest index.
        assert_eq!(jsq.route(&req("a"), &v), 0);
        v[0].running_jobs = 1;
        assert_eq!(jsq.route(&req("a"), &v), 2);
        assert!(jsq.needs_feedback());
    }

    #[test]
    fn energy_aware_orders_by_utilization_then_energy() {
        let mut ea = EnergyAware::new();
        let mut v = views(3);
        v[0].utilization = 0.8;
        v[1].utilization = 0.2;
        v[2].utilization = 0.5;
        assert_eq!(ea.route(&req("a"), &v), 1);
        v[1].utilization = 0.5;
        v[1].energy_per_job = 4.0;
        v[2].energy_per_job = 2.0;
        // Utilization tie between shards 1 and 2 → cheaper energy wins.
        assert_eq!(ea.route(&req("a"), &v), 2);
    }

    #[test]
    fn hash_affinity_is_sticky_and_spreads_apps() {
        let mut ha = HashAffinity::new();
        let v = views(4);
        let a = ha.route(&req("audio-filter"), &v);
        for _ in 0..5 {
            assert_eq!(ha.route(&req("audio-filter"), &v), a);
        }
        // Pinned FNV-1a placements: stickiness across runs and platforms
        // is the whole point, so a silent hash change must fail loudly.
        let apps = ["audio-filter", "fft", "matmul", "sobel"];
        let placed: Vec<usize> = apps.iter().map(|n| ha.route(&req(n), &v)).collect();
        let expected: Vec<usize> = apps
            .iter()
            .map(|n| (HashAffinity::fnv1a(n.as_bytes()) % 4) as usize)
            .collect();
        assert_eq!(placed, expected);
        assert!(!ha.needs_feedback());
    }

    #[test]
    fn boxed_policies_delegate() {
        let mut boxed: Box<dyn RoutingPolicy> = Box::new(RoundRobin::new());
        let v = views(2);
        assert_eq!(boxed.route(&req("a"), &v), 0);
        assert_eq!(boxed.route(&req("a"), &v), 1);
        assert_eq!(boxed.label(), "RoundRobin");
        assert!(boxed.validate().is_ok());
        assert!(!boxed.needs_feedback());
    }

    #[test]
    fn single_shard_routes_to_zero_under_every_policy() {
        let v = views(1);
        for mut p in standard_policies() {
            for app in ["a", "b", "c"] {
                assert_eq!(p.route(&req(app), &v), 0, "{}", p.label());
            }
        }
    }
}
