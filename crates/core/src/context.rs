//! The scheduling context: everything a scheduler may observe at an
//! activation beyond the job set and the platform.
//!
//! The paper's runtime manager hands its scheduling algorithm only the
//! unfinished jobs and the clock. Hybrid design-time/run-time work
//! (Weichslgartner et al.; E-Mapper) argues the runtime selector needs
//! more: the *observed load* (to pick the right algorithm for the regime)
//! and a *decision budget* (so an exhaustive reference can run online in
//! anytime mode). [`SchedulingContext`] carries exactly those three
//! things — the activation instant, a read-only
//! [`TelemetrySnapshot`] of the online series, and a deterministic
//! [`SearchBudget`]:
//!
//! * stateless heuristics ignore the context beyond
//!   [`now`](SchedulingContext::now) and behave exactly as before;
//! * search-based schedulers (EX-MEM) bound their exploration by the
//!   budget and degrade to the best schedule found so far;
//! * meta-schedulers (the `META` registry entry in `amrm-baselines`)
//!   switch algorithms by the observed regime.
//!
//! The budget counts *search work units* — state expansions and
//! enumeration steps — never wall-clock time, so a budgeted run is
//! reproducible bit for bit per stream seed on any machine.
//!
//! # Examples
//!
//! ```
//! use amrm_core::{MmkpMdf, Scheduler, SchedulingContext, SearchBudget};
//! use amrm_workload::scenarios;
//!
//! let jobs = scenarios::s1_jobs_at_t1();
//! let ctx = SchedulingContext::at(1.0).with_budget(SearchBudget::nodes(10_000));
//! let schedule = MmkpMdf::new()
//!     .schedule(&jobs, &scenarios::platform(), &ctx)
//!     .expect("feasible");
//! assert!(schedule.validate(&jobs, &scenarios::platform(), 1.0).is_ok());
//! ```

pub use amrm_metrics::TelemetrySnapshot;
pub use amrm_metrics::TraceSink;

/// A deterministic bound on the search effort one scheduler activation may
/// spend.
///
/// The budget is counted in *work units* (search-tree state expansions and
/// per-job enumeration steps), not wall-clock time: two runs with the same
/// seed and the same budget do exactly the same work and return exactly
/// the same schedule. [`SearchBudget::unbounded`] (the default) disables
/// the bound — a search-based scheduler then behaves exactly like its
/// pre-budget self.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchBudget {
    limit: Option<u64>,
    rank_cap: Option<usize>,
}

impl SearchBudget {
    /// The default online budget in work units, sized so a budgeted EX-MEM
    /// activation over a burst of ~15 concurrent jobs completes in
    /// milliseconds while small activations (a handful of jobs) are still
    /// solved exactly.
    pub const ONLINE_WORK_UNITS: u64 = 50_000;

    /// The default online candidate-ranking cap: at each search node only
    /// the `ONLINE_RANK_CAP` cheapest first-segment candidates (by
    /// admissible energy lower bound) survive full recursive evaluation.
    /// Fitted by `repro tune` (the `exmem` family): the winner must both
    /// score on acceptance *and* honor the exact-path contract — at
    /// least a 2× drop in budget truncations against the uncapped
    /// reference, since truncated activations cannot memoize `Exact`
    /// proofs and an over-wide cap silently defeats the warm-start
    /// cache. A finite cap taints results the same way budget truncation
    /// does, so memoization stays sound. (Fitted at seed 2020 on the
    /// quick tune streams: 16 lifted mean acceptance 0.467 → 0.500 over
    /// the initial hand-picked 24 while staying inside the truncation
    /// contract; the committed `TUNE_baseline.json` is the post-adoption
    /// re-run.)
    pub const ONLINE_RANK_CAP: usize = 16;

    /// No bound: search-based schedulers run to proven optimality.
    pub const fn unbounded() -> Self {
        SearchBudget {
            limit: None,
            rank_cap: None,
        }
    }

    /// A bound of `limit` work units per activation (no ranking cap).
    pub const fn nodes(limit: u64) -> Self {
        SearchBudget {
            limit: Some(limit),
            rank_cap: None,
        }
    }

    /// The standard online budget
    /// ([`ONLINE_WORK_UNITS`](SearchBudget::ONLINE_WORK_UNITS) units,
    /// [`ONLINE_RANK_CAP`](SearchBudget::ONLINE_RANK_CAP) ranked
    /// candidates per node) used by the admission grid and the load
    /// sweeps, where every scheduler — including the exhaustive
    /// reference — must decide in bounded time.
    pub const fn online() -> Self {
        SearchBudget::nodes(Self::ONLINE_WORK_UNITS).with_rank_cap(Self::ONLINE_RANK_CAP)
    }

    /// Adds a per-node candidate-ranking cap: the search scores every
    /// first-segment candidate with a cheap admissible lower bound, ranks
    /// them, and recurses into at most `cap` of them. `usize::MAX` is
    /// equivalent to no cap (the exhaustive enumeration).
    #[must_use]
    pub const fn with_rank_cap(mut self, cap: usize) -> Self {
        self.rank_cap = if cap == usize::MAX { None } else { Some(cap) };
        self
    }

    /// The work-unit limit, or `None` when unbounded.
    pub fn node_limit(&self) -> Option<u64> {
        self.limit
    }

    /// The candidate-ranking cap, or `None` when uncapped.
    pub fn rank_cap(&self) -> Option<usize> {
        self.rank_cap
    }

    /// Returns `true` when no limit is set.
    pub fn is_unbounded(&self) -> bool {
        self.limit.is_none()
    }

    /// Returns `true` once `work` units exhaust this budget.
    pub fn is_exhausted_by(&self, work: u64) -> bool {
        self.limit.is_some_and(|limit| work >= limit)
    }

    /// The tighter of two budgets, component-wise (a scheduler's own caps
    /// composed with the context's).
    pub fn tightest(self, other: SearchBudget) -> SearchBudget {
        let limit = match (self.limit, other.limit) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let rank_cap = match (self.rank_cap, other.rank_cap) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        SearchBudget { limit, rank_cap }
    }
}

impl std::fmt::Display for SearchBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.limit {
            Some(limit) => write!(f, "SearchBudget({limit}")?,
            None => write!(f, "SearchBudget(∞")?,
        }
        if let Some(cap) = self.rank_cap {
            write!(f, ", rank≤{cap}")?;
        }
        write!(f, ")")
    }
}

/// The read-only context handed to [`Scheduler::schedule`]
/// (crate::Scheduler::schedule) at every activation.
///
/// Constructed by the [`RuntimeManager`](crate::RuntimeManager) from its
/// clock, the last telemetry snapshot it observed (fed by the `amrm-sim`
/// event kernel via
/// [`observe_telemetry`](crate::RuntimeManager::observe_telemetry)) and
/// its configured [`SearchBudget`]. Standalone callers — the suite
/// runner, tests, benches — use [`SchedulingContext::at`], which carries
/// an idle snapshot and an unbounded budget and therefore reproduces the
/// pre-context call `schedule(jobs, platform, now)` exactly.
#[derive(Debug, Clone)]
pub struct SchedulingContext {
    /// The activation instant (simulated seconds) — the `now` of the
    /// pre-context trait signature.
    pub now: f64,
    /// Read-only view of the online telemetry series at the most recent
    /// admission decision point (an idle default outside the sim kernel).
    /// Everything in it is simulated time and state, so context-aware
    /// schedulers stay deterministic per stream seed.
    pub telemetry: TelemetrySnapshot,
    /// The search budget for this activation
    /// ([`unbounded`](SearchBudget::unbounded) by default).
    pub budget: SearchBudget,
    /// Decision-journal handle: schedulers emit structured decision
    /// events (regime switches, memo traffic, truncations) through it.
    /// Disabled by default — a single branch — and **sim-time payloads
    /// only**, so journaling never perturbs per-seed determinism.
    pub trace: TraceSink,
}

impl SchedulingContext {
    /// A context at time `now` with an idle telemetry snapshot, an
    /// unbounded budget and no trace sink — the drop-in equivalent of
    /// the pre-context `schedule(jobs, platform, now)` call.
    pub fn at(now: f64) -> Self {
        SchedulingContext {
            now,
            telemetry: TelemetrySnapshot::default(),
            budget: SearchBudget::unbounded(),
            trace: TraceSink::disabled(),
        }
    }

    /// Replaces the telemetry snapshot.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetrySnapshot) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the search budget.
    #[must_use]
    pub fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the trace sink.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_budget_never_exhausts() {
        let b = SearchBudget::unbounded();
        assert!(b.is_unbounded());
        assert_eq!(b.node_limit(), None);
        assert!(!b.is_exhausted_by(u64::MAX));
        assert_eq!(SearchBudget::default(), b);
    }

    #[test]
    fn bounded_budget_exhausts_at_limit() {
        let b = SearchBudget::nodes(10);
        assert!(!b.is_unbounded());
        assert!(!b.is_exhausted_by(9));
        assert!(b.is_exhausted_by(10));
        assert!(b.is_exhausted_by(11));
    }

    #[test]
    fn tightest_composes_caps() {
        let a = SearchBudget::nodes(10);
        let b = SearchBudget::nodes(20);
        let inf = SearchBudget::unbounded();
        assert_eq!(a.tightest(b), a);
        assert_eq!(b.tightest(a), a);
        assert_eq!(a.tightest(inf), a);
        assert_eq!(inf.tightest(a), a);
        assert_eq!(inf.tightest(inf), inf);
    }

    #[test]
    fn online_budget_is_bounded() {
        assert_eq!(
            SearchBudget::online().node_limit(),
            Some(SearchBudget::ONLINE_WORK_UNITS)
        );
        assert_eq!(
            SearchBudget::online().rank_cap(),
            Some(SearchBudget::ONLINE_RANK_CAP)
        );
    }

    #[test]
    fn max_rank_cap_is_uncapped() {
        let b = SearchBudget::nodes(10).with_rank_cap(usize::MAX);
        assert_eq!(b.rank_cap(), None);
        assert_eq!(b, SearchBudget::nodes(10));
    }

    #[test]
    fn tightest_composes_rank_caps() {
        let a = SearchBudget::nodes(10).with_rank_cap(8);
        let b = SearchBudget::nodes(20).with_rank_cap(4);
        let plain = SearchBudget::nodes(5);
        assert_eq!(a.tightest(b), SearchBudget::nodes(10).with_rank_cap(4));
        assert_eq!(a.tightest(plain), SearchBudget::nodes(5).with_rank_cap(8));
        assert_eq!(plain.tightest(a), SearchBudget::nodes(5).with_rank_cap(8));
        assert_eq!(
            SearchBudget::unbounded().tightest(a),
            SearchBudget::nodes(10).with_rank_cap(8)
        );
    }

    #[test]
    fn context_at_is_the_pre_context_call() {
        let ctx = SchedulingContext::at(2.5);
        assert_eq!(ctx.now, 2.5);
        assert!(ctx.budget.is_unbounded());
        assert_eq!(ctx.telemetry.arrival_rate, 0.0);
        assert_eq!(ctx.telemetry.queue_depth, 0);
    }

    #[test]
    fn builders_replace_fields() {
        let snap = TelemetrySnapshot {
            arrival_rate: 2.0,
            ..TelemetrySnapshot::default()
        };
        let ctx = SchedulingContext::at(1.0)
            .with_telemetry(snap)
            .with_budget(SearchBudget::nodes(5));
        assert_eq!(ctx.telemetry.arrival_rate, 2.0);
        assert_eq!(ctx.budget.node_limit(), Some(5));
    }

    #[test]
    fn budget_displays_limit() {
        assert_eq!(SearchBudget::nodes(7).to_string(), "SearchBudget(7)");
        assert_eq!(SearchBudget::unbounded().to_string(), "SearchBudget(∞)");
        assert_eq!(
            SearchBudget::nodes(7).with_rank_cap(3).to_string(),
            "SearchBudget(7, rank≤3)"
        );
    }
}
